//! Offline stand-in for [`rayon`](https://crates.io/crates/rayon): an
//! order-preserving data-parallelism layer over `std::thread::scope`.
//!
//! The build environment has no network access, so relgraph vendors the
//! API subset its hot paths use — `par_iter().map(..).collect()`,
//! `par_iter().for_each(..)`, `par_chunks_mut(..).enumerate().for_each(..)`
//! and `join` — with the same semantics rayon guarantees for them:
//!
//! * **Order preservation.** `collect()` returns results in input order,
//!   regardless of thread count or scheduling.
//! * **Determinism.** Work is split into contiguous chunks; each item is
//!   processed exactly once by exactly one thread. Outputs are therefore
//!   bit-identical to a serial run whenever the per-item function is a
//!   pure function of its item.
//!
//! Differences from upstream: chunking is static (no work stealing), and
//! threads are scoped per call instead of pooled. The thread count honors
//! `RAYON_NUM_THREADS` (read per call, so tests can flip it at runtime),
//! defaulting to `std::thread::available_parallelism`. Single-threaded
//! configurations and small inputs run inline with zero spawn overhead —
//! if the real rayon ever becomes available, swapping the path dependency
//! back to the registry crate requires no source changes.

use std::ops::Range;

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSliceMut,
    };
}

/// Number of worker threads: `RAYON_NUM_THREADS` when set to a positive
/// integer, otherwise the machine's available parallelism.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n > 0 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Run `a` and `b`, in parallel when worker threads are available.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        (a(), b())
    } else {
        std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            (ra, hb.join().expect("parallel task panicked"))
        })
    }
}

/// Split `0..len` into at most `threads` contiguous ranges of near-equal
/// size and run `work` on each, returning per-range results in order.
fn run_ranges<R: Send>(
    len: usize,
    min_len: usize,
    work: impl Fn(Range<usize>) -> R + Sync,
) -> Vec<R> {
    let threads = current_num_threads().min(len / min_len.max(1)).max(1);
    if threads <= 1 || len == 0 {
        return if len == 0 {
            Vec::new()
        } else {
            vec![work(0..len)]
        };
    }
    let chunk = len.div_ceil(threads);
    let bounds: Vec<Range<usize>> = (0..threads)
        .map(|t| (t * chunk).min(len)..((t + 1) * chunk).min(len))
        .collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = bounds
            .into_iter()
            .filter(|r| !r.is_empty())
            .map(|r| s.spawn(|| work(r)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel task panicked"))
            .collect()
    })
}

/// Eager, order-preserving parallel iterator over borrowed items.
pub struct ParIter<'a, T> {
    items: &'a [T],
    min_len: usize,
}

/// `par_iter()` on slices and `Vec`s.
pub trait IntoParallelRefIterator<'a> {
    /// Item type yielded by reference.
    type Item: Sync + 'a;

    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter {
            items: self,
            min_len: 1,
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter {
            items: self,
            min_len: 1,
        }
    }
}

/// `into_par_iter()` on index ranges.
pub trait IntoParallelIterator {
    /// Owned item type.
    type Item: Send;
    /// Concrete iterator type.
    type Iter;

    /// Consuming parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange {
            range: self,
            min_len: 1,
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;

    fn into_par_iter(self) -> ParVec<T> {
        ParVec {
            items: self,
            min_len: 1,
        }
    }
}

/// Owning parallel iterator over a `Vec`.
pub struct ParVec<T> {
    items: Vec<T>,
    min_len: usize,
}

impl<T: Send> ParVec<T> {
    /// Split into at most `current_num_threads` contiguous owned batches.
    fn batches(self) -> Vec<Vec<T>> {
        let len = self.items.len();
        let threads = current_num_threads().min(len / self.min_len.max(1)).max(1);
        if threads <= 1 {
            return if len == 0 {
                Vec::new()
            } else {
                vec![self.items]
            };
        }
        let chunk = len.div_ceil(threads);
        let mut batches = Vec::with_capacity(threads);
        let mut rest = self.items;
        while !rest.is_empty() {
            let tail = rest.split_off(chunk.min(rest.len()));
            batches.push(rest);
            rest = tail;
        }
        batches
    }
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;

    fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min.max(1);
        self
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let batches = self.batches();
        if batches.len() <= 1 {
            for batch in batches {
                batch.into_iter().for_each(&f);
            }
            return;
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = batches
                .into_iter()
                .map(|batch| {
                    let f = &f;
                    s.spawn(move || batch.into_iter().for_each(f))
                })
                .collect();
            for h in handles {
                h.join().expect("parallel task panicked");
            }
        });
    }
}

impl<T, R, F> ParMap<ParVec<T>, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Collect mapped results in input order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        let batches = self.inner.batches();
        let f = &self.f;
        if batches.len() <= 1 {
            let chunks = batches
                .into_iter()
                .map(|b| b.into_iter().map(f).collect::<Vec<R>>())
                .collect();
            return C::from_chunks(chunks);
        }
        let chunks = std::thread::scope(|s| {
            let handles: Vec<_> = batches
                .into_iter()
                .map(|batch| s.spawn(move || batch.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel task panicked"))
                .collect()
        });
        C::from_chunks(chunks)
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct ParRange {
    range: Range<usize>,
    min_len: usize,
}

/// Operations shared by the parallel iterators.
pub trait ParallelIterator: Sized {
    /// Item type.
    type Item;

    /// Hint: never split below `min` items per thread.
    fn with_min_len(self, min: usize) -> Self;

    /// Map each item.
    fn map<R, F>(self, f: F) -> ParMap<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        ParMap { inner: self, f }
    }

    /// Consume items for their side effects.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync;
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min.max(1);
        self
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        run_ranges(self.items.len(), self.min_len, |r| {
            for item in &self.items[r] {
                f(item);
            }
        });
    }
}

impl ParallelIterator for ParRange {
    type Item = usize;

    fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min.max(1);
        self
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let base = self.range.start;
        run_ranges(self.range.len(), self.min_len, |r| {
            for i in r {
                f(base + i);
            }
        });
    }
}

/// Collection types buildable from a parallel mapping.
pub trait FromParallelIterator<T> {
    /// Assemble from ordered per-chunk outputs.
    fn from_chunks(chunks: Vec<Vec<T>>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_chunks(chunks: Vec<Vec<T>>) -> Self {
        let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for c in chunks {
            out.extend(c);
        }
        out
    }
}

/// See [`ParallelIterator::map`].
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<'a, T, R, F> ParMap<ParIter<'a, T>, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Collect mapped results in input order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        let items = self.inner.items;
        let f = &self.f;
        let chunks = run_ranges(items.len(), self.inner.min_len, |r| {
            items[r].iter().map(f).collect::<Vec<R>>()
        });
        C::from_chunks(chunks)
    }
}

impl<R, F> ParMap<ParRange, F>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    /// Collect mapped results in input order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        let base = self.inner.range.start;
        let f = &self.f;
        let chunks = run_ranges(self.inner.range.len(), self.inner.min_len, |r| {
            r.map(|i| f(base + i)).collect::<Vec<R>>()
        });
        C::from_chunks(chunks)
    }
}

/// `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(
            chunk_size > 0,
            "par_chunks_mut requires a positive chunk size"
        );
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// See [`ParallelSliceMut::par_chunks_mut`].
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair each chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            chunks: self.chunks,
        }
    }

    /// Run `f` on every chunk.
    pub fn for_each(self, f: impl Fn(&mut [T]) + Sync) {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated mutable-chunk iterator.
pub struct ParChunksMutEnumerate<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<T: Send> ParChunksMutEnumerate<'_, T> {
    /// Run `f` on every `(index, chunk)` pair.
    pub fn for_each(self, f: impl Fn((usize, &mut [T])) + Sync) {
        let threads = current_num_threads().min(self.chunks.len()).max(1);
        if threads <= 1 {
            for (i, chunk) in self.chunks.into_iter().enumerate() {
                f((i, chunk));
            }
            return;
        }
        let n = self.chunks.len();
        let per = n.div_ceil(threads);
        let mut batches: Vec<(usize, Vec<&mut [T]>)> = Vec::with_capacity(threads);
        let mut rest = self.chunks;
        let mut start = 0;
        while !rest.is_empty() {
            let tail = rest.split_off(per.min(rest.len()));
            batches.push((start, rest));
            start += per;
            rest = tail;
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = batches
                .into_iter()
                .map(|(base, chunk_batch)| {
                    let f = &f;
                    s.spawn(move || {
                        for (off, chunk) in chunk_batch.into_iter().enumerate() {
                            f((base + off, chunk));
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("parallel task panicked");
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let old = std::env::var("RAYON_NUM_THREADS").ok();
        std::env::set_var("RAYON_NUM_THREADS", n.to_string());
        let r = f();
        match old {
            Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
            None => std::env::remove_var("RAYON_NUM_THREADS"),
        }
        r
    }

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let out: Vec<usize> =
                with_threads(threads, || items.par_iter().map(|&x| x * 2).collect());
            assert_eq!(
                out,
                (0..1000).map(|x| x * 2).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn range_collect_matches_serial() {
        for threads in [1, 4] {
            let out: Vec<usize> = with_threads(threads, || {
                (10..50).into_par_iter().map(|i| i * i).collect()
            });
            assert_eq!(out, (10..50).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn for_each_visits_every_item_once() {
        let count = AtomicUsize::new(0);
        let items: Vec<usize> = (0..777).collect();
        with_threads(4, || {
            items.par_iter().for_each(|_| {
                count.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert_eq!(count.load(Ordering::Relaxed), 777);
    }

    #[test]
    fn chunks_mut_writes_disjoint_rows() {
        let mut data = vec![0u32; 12 * 5];
        with_threads(3, || {
            data.par_chunks_mut(5).enumerate().for_each(|(row, chunk)| {
                for (i, x) in chunk.iter_mut().enumerate() {
                    *x = (row * 10 + i) as u32;
                }
            })
        });
        for row in 0..12 {
            for i in 0..5 {
                assert_eq!(data[row * 5 + i], (row * 10 + i) as u32);
            }
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        empty.par_iter().for_each(|_| panic!("no items"));
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = with_threads(2, || super::join(|| 1 + 1, || "x".repeat(3)));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }
}
