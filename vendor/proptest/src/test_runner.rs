//! Runner configuration, RNG and failure type.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// The RNG handed to strategies. Wraps the vendored [`StdRng`].
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic RNG for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Why a test case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed assertion / explicit rejection.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}
