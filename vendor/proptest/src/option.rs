//! `Option` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy producing `Some(inner)` most of the time and `None` for the
/// rest (upstream's default Some-weight is 4:1; mirrored here).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_bool(0.8) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
