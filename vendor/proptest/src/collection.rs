//! Collection strategies (`vec`, `hash_set`).

use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::Hash;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Lengths accepted by [`vec()`] / [`hash_set`]: an exact `usize` or a range.
pub trait SizeRange {
    /// Draw a length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for std::ops::Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy producing `Vec`s of `element` values with a length from `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

/// See [`vec()`].
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy producing `HashSet`s with a size drawn from `size` (best
/// effort: duplicates are retried a bounded number of times).
pub fn hash_set<S, R>(element: S, size: R) -> HashSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Hash + Eq + Debug,
    R: SizeRange,
{
    HashSetStrategy { element, size }
}

/// See [`hash_set`].
pub struct HashSetStrategy<S, R> {
    element: S,
    size: R,
}

impl<S, R> Strategy for HashSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Hash + Eq + Debug,
    R: SizeRange,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let n = self.size.pick(rng);
        let mut out = HashSet::with_capacity(n);
        let mut attempts = 0usize;
        while out.len() < n && attempts < n.saturating_mul(20) + 100 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}
