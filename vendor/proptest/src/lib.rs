//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing the API subset relgraph's property tests use.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs (all
//!   strategies produce `Debug` values) but is not minimized.
//! * **No persistence.** `*.proptest-regressions` files are ignored.
//! * **Deterministic seeding.** Case `i` of test `t` derives its RNG from
//!   `fnv64(t) ^ i`, so failures reproduce across runs without a seed file.
//!
//! Supported surface: range strategies over the primitive numeric types,
//! tuple strategies (arity ≤ 6), `Just`, `any::<bool|i64|u64|...>()`,
//! regex-literal string strategies (character classes with `{m,n}`
//! repetition), `prop_map` / `prop_flat_map` / `prop_filter` / `boxed`,
//! `prop_oneof!`, `proptest::collection::{vec, hash_set}`,
//! `proptest::option::of`, the `proptest!` macro with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, and the
//! `prop_assert!` family.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface mirroring `proptest::prelude`.
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// FNV-1a hash used to derive per-test RNG seeds from the test name.
pub fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Assert a condition inside a `proptest!` body; on failure the case (with
/// its generated inputs) is reported and the test fails.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert!(a == b)` with a diff-style message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            lhs,
            rhs,
            format!($($fmt)*)
        );
    }};
}

/// `prop_assert!(a != b)` with a diff-style message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            lhs
        );
    }};
}

/// Choose uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests. Mirrors `proptest::proptest!` for the
/// `fn name(binding in strategy, ...) { body }` form, with an optional
/// leading `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let base = $crate::fnv64(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::new(base ^ (case as u64));
                let mut inputs = ::std::string::String::new();
                let outcome = {
                    $(
                        let value =
                            $crate::strategy::Strategy::generate(&$strat, &mut rng);
                        inputs.push_str(&format!(
                            "  {} = {:?}\n",
                            stringify!($pat),
                            value
                        ));
                        let $pat = value;
                    )+
                    let run = ::std::panic::AssertUnwindSafe(move ||
                        -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    });
                    ::std::panic::catch_unwind(run)
                };
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => panic!(
                        "proptest case {case}/{} failed: {e}\ninputs:\n{inputs}",
                        config.cases
                    ),
                    Err(panic) => {
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<non-string panic>".to_string());
                        panic!(
                            "proptest case {case}/{} panicked: {msg}\ninputs:\n{inputs}",
                            config.cases
                        )
                    }
                }
            }
        }
    )*};
}
