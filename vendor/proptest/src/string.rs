//! Regex-literal string strategies.
//!
//! Upstream proptest lets a `&str` literal act as a strategy generating
//! strings matching the regex. This shim supports the subset relgraph's
//! tests use: concatenations of atoms, where an atom is a character class
//! (`[a-z0-9_]`, ranges and literal members, including space and
//! punctuation as in `[ -~]`) or a literal character, optionally followed
//! by a `{n}` / `{m,n}` repetition.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

#[derive(Debug, Clone)]
struct Atom {
    /// Candidate characters (expanded from the class or a single literal).
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let members = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"));
            let inner = &chars[i + 1..i + close];
            i += close + 1;
            expand_class(inner, pattern)
        } else {
            let c = chars[i];
            assert!(
                !"()|*+?.\\^$".contains(c),
                "unsupported regex construct {c:?} in pattern {pattern:?}"
            );
            i += 1;
            vec![c]
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"));
            let body: String = chars[i + 1..i + close].iter().collect();
            i += close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse().expect("repetition lower bound"),
                    hi.parse().expect("repetition upper bound"),
                ),
                None => {
                    let n = body.parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(Atom {
            chars: members,
            min,
            max,
        });
    }
    atoms
}

fn expand_class(inner: &[char], pattern: &str) -> Vec<char> {
    assert!(
        inner.first() != Some(&'^'),
        "negated classes are unsupported in pattern {pattern:?}"
    );
    let mut out = Vec::new();
    let mut i = 0;
    while i < inner.len() {
        if i + 2 < inner.len() && inner[i + 1] == '-' {
            let (lo, hi) = (inner[i] as u32, inner[i + 2] as u32);
            assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
            for c in lo..=hi {
                out.push(char::from_u32(c).expect("valid class char"));
            }
            i += 3;
        } else {
            out.push(inner[i]);
            i += 1;
        }
    }
    assert!(
        !out.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    out
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = rng.gen_range(atom.min..=atom.max);
            for _ in 0..n {
                out.push(atom.chars[rng.gen_range(0..atom.chars.len())]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn generates_matching_strings() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9_]{0,10}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 11);
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
        for _ in 0..200 {
            let s = Strategy::generate(&"[ -~]{0,20}", &mut rng);
            assert!(s.len() <= 20);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
        let exact = Strategy::generate(&"[a-c]{3}", &mut rng);
        assert_eq!(exact.len(), 3);
    }
}
