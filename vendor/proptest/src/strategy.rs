//! Value-generation strategies and combinators.

use std::fmt::Debug;
use std::sync::Arc;

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// deterministic function of the test RNG.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Reject values failing `pred` (regenerating, bounded attempts).
    fn prop_filter<R, F>(self, reason: R, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Erase the concrete strategy type (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Type-erased, cloneable strategy handle.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Debug + Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Build from the (non-empty) list of arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

/// Marker trait backing [`any`].
pub trait Arbitrary: Debug + Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix extremes in (upstream biases toward edge cases too).
                match rng.gen_range(0..16u32) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy generating arbitrary values of `T` (`any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
