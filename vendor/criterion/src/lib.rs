//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, implementing the API subset relgraph's benches use:
//! `Criterion::{benchmark_group, bench_function}`, groups with
//! `sample_size` / `bench_with_input` / `finish`, `BenchmarkId`, `Bencher::
//! iter`, `black_box` and the `criterion_group!` / `criterion_main!`
//! macros. Reports median wall-clock time per iteration on stdout; there
//! is no statistical regression analysis.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `f` repeatedly; the median sample is reported.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up and per-sample iteration-count calibration.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample =
            (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters_per_sample);
        }
    }

    /// Measure `routine` on a fresh value from `setup` per iteration; the
    /// setup cost is excluded from the timing.
    pub fn iter_with_setup<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
    ) {
        // Warm-up (also keeps `routine` from being measured cold).
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

fn run_one(label: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    println!("bench: {label:<48} median {:>12.3?}", b.median());
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.name);
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Run a plain benchmark in this group.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.sample_size, f);
        self
    }

    /// Finish the group (formatting no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, 20, f);
        self
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
