//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! small, dependency-free implementation of exactly the API subset relgraph
//! uses: [`Rng::gen_range`] over integer/float ranges, [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic for a given seed, which is all the seeded
//! tests and data generators rely on (no test asserts the exact stream of
//! the upstream `StdRng`).

pub mod rngs;
pub mod seq;

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-width byte array upstream; mirrored here).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64: well-distributed expansion of a 64-bit seed.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (`hi` inclusive when `inclusive`).
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = if inclusive {
                    (hi as i128 - lo as i128 + 1) as u128
                } else {
                    (hi as i128 - lo as i128) as u128
                };
                assert!(span > 0, "cannot sample from an empty range");
                // Modulo draw; the bias is < 2^-64 for every span relgraph
                // uses, far below what any property test can observe.
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo <= hi, "cannot sample from an empty range");
                // 53 significant bits, uniform in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                (lo as f64 + (hi as f64 - lo as f64) * unit) as $t
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi, true)
    }
}

/// The user-facing generator interface.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1]"
        );
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-2.5..=2.5f64);
            assert!((-2.5..=2.5).contains(&w));
            let x = rng.gen_range(1..=3i64);
            assert!((1..=3).contains(&x));
        }
        // Full coverage of a small inclusive range.
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(rng.gen_range(1..=3i64) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
