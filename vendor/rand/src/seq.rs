//! Slice helpers (`shuffle`, `choose`).

use crate::Rng;

/// Random slice operations.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` when empty.
    fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}
