//! Concrete generators.

use crate::{Rng, SeedableRng};

/// Drop-in stand-in for `rand::rngs::StdRng`: xoshiro256++ (Blackman &
/// Vigna), a fast all-purpose generator with a 2^256-1 period. Not the
/// upstream ChaCha12 stream — relgraph only relies on *seeded determinism*,
/// never on the exact upstream byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                1,
            ];
        }
        StdRng { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
