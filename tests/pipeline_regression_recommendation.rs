//! End-to-end regression and recommendation pipelines.

use std::collections::HashSet;

use relgraph::pq::{execute, ExecConfig, PredictionValue, TaskType};
use relgraph::prelude::*;

fn small_db(seed: u64) -> Database {
    generate_ecommerce(&EcommerceConfig {
        customers: 80,
        products: 25,
        seed,
        ..Default::default()
    })
    .expect("generate")
}

fn fast_cfg() -> ExecConfig {
    ExecConfig {
        epochs: 5,
        hidden_dim: 16,
        fanouts: vec![5, 5],
        max_predictions: Some(25),
        gbdt_rounds: 40,
        ..Default::default()
    }
}

#[test]
fn regression_models_beat_the_mean() {
    let db = small_db(11);
    let q = "PREDICT COUNT(orders.*, 0, 30) FOR EACH customers.customer_id";
    let trivial = execute(&db, &format!("{q} USING model = trivial"), &fast_cfg()).unwrap();
    let t_mae = trivial.metric("mae").unwrap();
    for model in ["gnn", "gbdt", "linreg"] {
        let out = execute(
            &db,
            &format!("{q} USING model = {model}, epochs = 10"),
            &fast_cfg(),
        )
        .unwrap_or_else(|e| panic!("{model}: {e}"));
        assert_eq!(out.task, TaskType::Regression);
        let mae = out.metric("mae").unwrap();
        // At this tiny scale (80 customers) a ~60-feature ridge model can
        // legitimately overfit past the mean; bound the damage instead.
        assert!(
            mae < t_mae * 1.25,
            "{model} MAE {mae} should not be far worse than mean {t_mae}"
        );
        assert!(mae.is_finite() && mae >= 0.0);
    }
}

#[test]
fn regression_predictions_live_on_label_scale() {
    let db = small_db(12);
    let q = "PREDICT SUM(orders.amount, 0, 30) FOR EACH customers.customer_id USING model = gnn";
    let out = execute(&db, q, &fast_cfg()).unwrap();
    let scores: Vec<f64> = out
        .predictions
        .iter()
        .map(|p| match p.value {
            PredictionValue::Score(s) => s,
            _ => unreachable!(),
        })
        .collect();
    assert!(!scores.is_empty());
    // Spend predictions should be plausible magnitudes, not standardized.
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(max > 1.0, "predictions look standardized: max {max}");
}

#[test]
fn recommendation_returns_valid_product_keys() {
    let db = small_db(13);
    let q = "PREDICT LIST_DISTINCT(orders.product_id, 0, 60) FOR EACH customers.customer_id \
             USING model = gnn, k = 5, epochs = 5";
    let out = execute(&db, q, &fast_cfg()).unwrap();
    assert_eq!(out.task, TaskType::Recommendation);
    let products = db.table("products").unwrap();
    for p in &out.predictions {
        match &p.value {
            PredictionValue::Items(items) => {
                assert!(items.len() <= 5);
                let distinct: HashSet<String> = items.iter().map(ToString::to_string).collect();
                assert_eq!(distinct.len(), items.len(), "duplicate recommendations");
                for item in items {
                    assert!(
                        products.row_by_key(item).is_some(),
                        "recommended unknown product {item}"
                    );
                }
            }
            _ => panic!("recommendation must produce item lists"),
        }
    }
}

#[test]
fn heuristic_recommenders_report_all_ranking_metrics() {
    let db = small_db(14);
    let q = "PREDICT LIST_DISTINCT(orders.product_id, 0, 60) FOR EACH customers.customer_id";
    for model in ["popularity", "covisit"] {
        let out = execute(&db, &format!("{q} USING model = {model}"), &fast_cfg()).unwrap();
        for metric in ["map@10", "recall@10", "ndcg@10"] {
            let v = out
                .metric(metric)
                .unwrap_or_else(|| panic!("{model} missing {metric}"));
            assert!((0.0..=1.0).contains(&v), "{model} {metric} = {v}");
        }
    }
}

#[test]
fn two_hop_query_on_clinic_runs_end_to_end() {
    let db = generate_clinic(&ClinicConfig {
        patients: 70,
        seed: 5,
        ..Default::default()
    })
    .expect("clinic");
    let q = "PREDICT COUNT(prescriptions.*, 0, 90) FOR EACH patients.patient_id \
             USING model = gnn, epochs = 4";
    let out = execute(&db, q, &fast_cfg()).unwrap();
    assert_eq!(out.task, TaskType::Regression);
    assert!(out.metric("mae").is_some());
    assert!(out.explain.contains("prescriptions"));
    assert!(out.explain.contains("visits"));
}

#[test]
fn forum_dataset_runs_end_to_end() {
    let db = generate_forum(&ForumConfig {
        users: 70,
        seed: 6,
        ..Default::default()
    })
    .expect("forum");
    let q = "PREDICT COUNT(posts.*, 0, 30) > 1 FOR EACH users.user_id USING model = gbdt";
    let out = execute(&db, q, &fast_cfg()).unwrap();
    assert_eq!(out.task, TaskType::Classification);
    assert!(out.metric("accuracy").is_some());
}
