//! Reduced-precision serving equivalence under random ingest schedules.
//!
//! One model is fitted once in `f64` (training never runs in reduced
//! precision) and then served through every numeric mode the engine
//! supports — `f64`, `f32` (weights narrowed once, tape-free SIMD
//! inference) and `q8` (`f32` compute over an 8-bit quantized embedding
//! tier) — at 1 shard (the plain [`ServeEngine`]) and 4 shards
//! ([`ShardedEngine`]). After any random schedule of in-span row batches
//! interleaved with warming reads, three properties must hold for every
//! deployable entity:
//!
//! 1. **Within-mode determinism, warm ≡ cold, any shard count.** A warm
//!    engine in mode *m* is bit-identical to a cold no-cache run of mode
//!    *m* on a scratch-compiled graph of the final database — including
//!    `q8`, where the cold reference routes fresh embeddings through the
//!    same quantization codec (`canonicalize`) a warm hit would have
//!    passed through. Shard routing is never visible in the bits.
//! 2. **Cross-mode tolerance.** Reduced-precision predictions stay within
//!    the `DESIGN.md` §15 tolerance of the `f64` reference: `1e-3` for
//!    `f32`, `5e-2` for `q8` (the codec's per-element error is ≤ half a
//!    quantization step, and the head contracts it through a sigmoid).
//! 3. **Decision stability.** Whenever the `f64` prediction is not inside
//!    the mode's tolerance band around the 0.5 decision boundary, the
//!    reduced-precision mode makes the same class decision.
//!
//! Tolerances here and in `DESIGN.md` §15 are one spec: a change to
//! either must update both.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Mutex, OnceLock};

use proptest::prelude::*;
use relgraph::datagen::{generate_ecommerce, EcommerceConfig};
use relgraph::db2graph::{build_graph, ConvertOptions};
use relgraph::gnn::{
    predict_nodes, predict_nodes_f32, InferModel32, NoCache, NoCache32, Precision,
};
use relgraph::pq::ExecConfig;
use relgraph::serve::{QuantizedEmbeddingCache, ServeConfig, ServeEngine, ShardedEngine};
use relgraph::store::{IngestPolicy, Row, RowBatch, Value};

const QUERY: &str = "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id";
const CUSTOMERS: i64 = 50;
const PRODUCTS: i64 = 12;

/// `DESIGN.md` §15 tolerance for `f32` serving vs the `f64` reference.
const TOL_F32: f64 = 1e-3;
/// `DESIGN.md` §15 tolerance for `q8` serving vs the `f64` reference.
const TOL_Q8: f64 = 5e-2;

const MODES: [Precision; 3] = [Precision::F64, Precision::F32, Precision::Q8];

fn tolerance(mode: Precision) -> f64 {
    match mode {
        Precision::F64 => 0.0,
        Precision::F32 => TOL_F32,
        Precision::Q8 => TOL_Q8,
    }
}

/// The one fitted model every mode serves (training is the expensive
/// part, and sharing it is the point: all modes down-convert from the
/// same `f64` weights).
fn engine() -> &'static Mutex<ServeEngine> {
    static ENGINE: OnceLock<Mutex<ServeEngine>> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let db = generate_ecommerce(&EcommerceConfig {
            customers: CUSTOMERS as usize,
            products: PRODUCTS as usize,
            seed: 23,
            ..Default::default()
        })
        .unwrap();
        let exec = ExecConfig {
            epochs: 2,
            hidden_dim: 8,
            fanouts: vec![4, 4],
            ..Default::default()
        };
        Mutex::new(ServeEngine::fit(db, QUERY, &exec, ServeConfig::default()).unwrap())
    })
}

/// Primary keys must stay unique across batches *and* proptest cases.
static NEXT_ORDER_ID: AtomicI64 = AtomicI64::new(7_000_000);

/// One order row: customer selector, product selector, quantity, amount,
/// and a 0..1000 fraction placing its timestamp inside the current span.
type OrderSpec = (usize, usize, i64, f64, u32);
/// One schedule step: rows to ingest, then entity selectors to re-read
/// (warming traffic interleaved with writes).
type BatchSpec = (Vec<OrderSpec>, Vec<usize>);

fn schedule_strategy() -> impl Strategy<Value = Vec<BatchSpec>> {
    let order = (0usize..64, 0usize..64, 1i64..5, 1.0f64..100.0, 0u32..1000);
    let step = (
        proptest::collection::vec(order, 1..6),
        proptest::collection::vec(0usize..64, 0..8),
    );
    proptest::collection::vec(step, 1..4)
}

proptest! {
    // Each case assembles six engines (3 modes × {1 shard, 4 shards}),
    // replays the schedule into all of them, then pays a scratch graph
    // compile plus three cold no-cache passes — deliberately few cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn every_precision_mode_survives_random_ingest(schedule in schedule_strategy()) {
        // Borrow the shared fitted state; every engine below gets its own
        // database clone, so the six stay byte-identical through replay.
        let (db, query, model, node_type, metrics) = {
            let eng = engine().lock().unwrap_or_else(|e| e.into_inner());
            (
                eng.db().clone(),
                eng.query().clone(),
                eng.model_handle(),
                eng.node_type(),
                eng.metrics_owned(),
            )
        };
        let cfg = |precision| ServeConfig { precision, ..ServeConfig::default() };
        let mut singles: Vec<ServeEngine> = MODES
            .iter()
            .map(|&m| {
                ServeEngine::from_fitted(
                    db.clone(),
                    query.clone(),
                    model.clone(),
                    node_type,
                    metrics.clone(),
                    cfg(m),
                )
                .unwrap()
            })
            .collect();
        let sharded: Vec<ShardedEngine> = MODES
            .iter()
            .map(|&m| {
                ShardedEngine::from_fitted(
                    db.clone(),
                    query.clone(),
                    model.clone(),
                    node_type,
                    metrics.clone(),
                    cfg(m),
                    4,
                )
                .unwrap()
            })
            .collect();
        let rows = singles[0].deploy_entities().unwrap();

        // Warm every tier before the writes start biting.
        for eng in singles.iter_mut() {
            let _ = eng.predict_batch(&rows);
        }
        for eng in &sharded {
            let _ = eng.predict_batch_rows(&rows);
        }

        for (orders, probes) in &schedule {
            let (lo, hi) = singles[0].db().time_span().unwrap();
            // Materialize each step's rows ONCE — ids are drawn from the
            // shared counter a single time and replayed into every engine.
            let materialized: Vec<Row> = orders
                .iter()
                .map(|&(c, p, qty, amount, frac)| {
                    // In [lo + span/4, lo + 3·span/4]: strictly before
                    // `hi`, so the deploy anchor never advances and only
                    // precise invalidation may run.
                    let t = lo + (hi - lo) / 4 + (hi - lo) / 2 * frac as i64 / 1000;
                    Row::new()
                        .push(NEXT_ORDER_ID.fetch_add(1, Ordering::Relaxed))
                        .push(c as i64 % CUSTOMERS)
                        .push(p as i64 % PRODUCTS)
                        .push(qty)
                        .push(amount)
                        .push("web")
                        .push(Value::Timestamp(t))
                })
                .collect();
            let mk_batch = || {
                let mut batch = RowBatch::new();
                for row in &materialized {
                    batch.push("orders", row.clone());
                }
                batch
            };
            for eng in singles.iter_mut() {
                let outcome = eng.ingest(mk_batch(), &IngestPolicy::coerce_all()).unwrap();
                prop_assert_eq!(outcome.report.accepted, materialized.len());
                prop_assert!(!outcome.flushed && !outcome.rebuilt);
            }
            for eng in &sharded {
                let outcome = eng.ingest(mk_batch(), &IngestPolicy::coerce_all()).unwrap();
                prop_assert_eq!(outcome.report.accepted, materialized.len());
                prop_assert!(!outcome.flushed && !outcome.rebuilt);
            }
            let probe_rows: Vec<usize> = probes.iter().map(|&s| rows[s % rows.len()]).collect();
            if !probe_rows.is_empty() {
                for eng in singles.iter_mut() {
                    let _ = eng.predict_batch(&probe_rows);
                }
                for eng in &sharded {
                    let _ = eng.predict_batch_rows(&probe_rows);
                }
            }
        }

        // Cold oracles on the settled state: scratch-compiled graph, no
        // warm cache. The q8 oracle runs with a FRESH quantized store so
        // fresh embeddings pass through the same codec grid warm serving
        // quantized them onto.
        let anchor = singles[0].anchor();
        let (scratch, _) = build_graph(singles[0].db(), &ConvertOptions::default()).unwrap();
        let cold_f64 = predict_nodes(&model, &scratch, node_type, &rows, anchor, &mut NoCache);
        let m32 = InferModel32::from_model(&model);
        let cold_f32 =
            predict_nodes_f32(&m32, &scratch, node_type, &rows, anchor, &mut NoCache32);
        let cold_q8 = {
            let mut fresh = QuantizedEmbeddingCache::new(ServeConfig::default().embedding_cache);
            predict_nodes_f32(&m32, &scratch, node_type, &rows, anchor, &mut fresh)
        };
        let cold = [&cold_f64, &cold_f32, &cold_q8];

        for (mi, &mode) in MODES.iter().enumerate() {
            let warm_single = singles[mi].predict_batch(&rows);
            let warm_sharded = sharded[mi].predict_batch_rows(&rows);
            let tol = tolerance(mode);
            for (i, (&c, (ws, wh))) in cold[mi]
                .iter()
                .zip(warm_single.iter().zip(&warm_sharded))
                .enumerate()
            {
                // 1. Warm ≡ cold, bit for bit, at 1 and 4 shards.
                prop_assert_eq!(
                    ws.to_bits(),
                    c.to_bits(),
                    "[{}] row {}: warm 1-shard {} != cold {}",
                    mode, rows[i], ws, c
                );
                prop_assert_eq!(
                    wh.to_bits(),
                    c.to_bits(),
                    "[{}] row {}: warm 4-shard {} != cold {}",
                    mode, rows[i], wh, c
                );
                // 2. Within the §15 tolerance of the f64 reference.
                let reference = cold_f64[i];
                prop_assert!(
                    (c - reference).abs() <= tol,
                    "[{}] row {}: |{} - {}| = {:e} exceeds the §15 tolerance {:e}",
                    mode, rows[i], c, reference, (c - reference).abs(), tol
                );
                // 3. Same class decision outside the boundary band.
                if (reference - 0.5).abs() > tol {
                    prop_assert_eq!(
                        c > 0.5,
                        reference > 0.5,
                        "[{}] row {}: decision flipped ({} vs f64 {})",
                        mode, rows[i], c, reference
                    );
                }
            }
        }
    }
}
