//! Observability integration tests: the instrumentation layer must see
//! every pipeline stage, and must never change what the pipeline computes.
//!
//! The obs registry is process-global, so every test takes `OBS_LOCK` and
//! resets the registry when done.

use std::sync::Mutex;

use relgraph::obs;
use relgraph::pq::{execute, ExecConfig, PredictionValue};
use relgraph::prelude::*;

static OBS_LOCK: Mutex<()> = Mutex::new(());

const QUERY: &str = "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id \
                     USING model = gnn";

fn small_db(seed: u64) -> Database {
    generate_ecommerce(&EcommerceConfig {
        customers: 70,
        products: 20,
        seed,
        ..Default::default()
    })
    .expect("generate")
}

fn fast_cfg() -> ExecConfig {
    ExecConfig {
        epochs: 3,
        hidden_dim: 12,
        fanouts: vec![4, 4],
        max_predictions: Some(10),
        ..Default::default()
    }
}

/// Fingerprint an outcome bit-exactly (scores via `to_bits`).
fn fingerprint(outcome: &QueryOutcome) -> Vec<(String, u64)> {
    outcome
        .predictions
        .iter()
        .map(|p| {
            let bits = match &p.value {
                PredictionValue::Score(s) => s.to_bits(),
                other => panic!("expected scores, got {other:?}"),
            };
            (format!("{:?}", p.entity_key), bits)
        })
        .collect()
}

#[test]
fn memory_sink_sees_the_full_stage_sequence() {
    let _guard = OBS_LOCK.lock().unwrap();
    let sink = obs::MemorySink::install();

    let db = small_db(11);
    let outcome = execute(&db, QUERY, &fast_cfg()).expect("execute");
    assert!(outcome.metric("accuracy").is_some());
    obs::emit_run_report("test", &[("suite", "observability")]);

    let roots = sink.roots();
    assert_eq!(roots.len(), 1, "one root span per query execution");
    let root = &roots[0];
    assert_eq!(root.name, "pq.execute");

    // Every pipeline stage must appear somewhere under the root, in spirit
    // of the paper's query → train-table → train → eval compilation.
    for stage in [
        "pq.parse",
        "pq.analyze",
        "pq.traintable",
        "pq.run_task",
        "db2graph.build_graph",
        "gnn.train",
        "graph.sample",
        "gnn.predict",
        "pq.eval",
    ] {
        assert!(
            root.find(stage).is_some(),
            "stage `{stage}` missing from span tree {:?}",
            root.names()
        );
    }

    // Stage nesting: parse/analyze/traintable/run_task are direct children
    // of the root; training and evaluation happen inside the task runner.
    let child_names: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
    for direct in ["pq.parse", "pq.analyze", "pq.traintable", "pq.run_task"] {
        assert!(
            child_names.contains(&direct),
            "`{direct}` should be a direct child of pq.execute, got {child_names:?}"
        );
    }
    let run_task = root.find("pq.run_task").unwrap();
    assert!(run_task.find("gnn.train").is_some());
    assert!(run_task.find("pq.eval").is_some());
    // Rayon-side sampling time is attributed to training via the counter
    // delta, so the synthetic span must nest under gnn.train.
    assert!(run_task
        .find("gnn.train")
        .unwrap()
        .find("graph.sample")
        .is_some());

    // Durations are sane: children fit inside the root's wall time.
    for child in &root.children {
        assert!(
            child.duration_ms <= root.duration_ms + 1.0,
            "child {} ({} ms) exceeds root ({} ms)",
            child.name,
            child.duration_ms,
            root.duration_ms
        );
    }

    // The run report snapshots the headline counters and metrics.
    let reports = sink.reports();
    assert_eq!(reports.len(), 1);
    let report = &reports[0];
    assert_eq!(report.name, "test");
    let counter = |name: &str| {
        report
            .counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    };
    assert!(counter("pq.traintable.anchors").is_some());
    assert!(counter("graph.sample.seeds").is_some());
    assert!(counter("tensor.matmul.calls").is_some());
    assert!(counter("gnn.train.epochs").unwrap_or(0) >= 1);
    assert!(report.gauges.iter().any(|(k, _)| k.starts_with("metric.")));
    assert!(report.series.iter().any(|(k, _)| k == "gnn.train_loss"));

    obs::reset();
    obs::disable();
}

#[test]
fn observation_never_changes_predictions() {
    let _guard = OBS_LOCK.lock().unwrap();
    obs::disable();

    let db = small_db(12);
    let plain = execute(&db, QUERY, &fast_cfg()).expect("obs-off run");

    let sink = obs::MemorySink::install();
    let observed = execute(&db, QUERY, &fast_cfg()).expect("obs-on run");
    assert!(
        !sink.span_names().is_empty(),
        "sink must actually have observed the second run"
    );
    obs::reset();
    obs::disable();

    assert_eq!(
        fingerprint(&plain),
        fingerprint(&observed),
        "instrumentation must be observe-only: bit-identical predictions"
    );
    for name in ["accuracy", "auroc"] {
        assert_eq!(
            plain.metric(name).map(f64::to_bits),
            observed.metric(name).map(f64::to_bits),
            "metric {name} must not change under observation"
        );
    }
}
