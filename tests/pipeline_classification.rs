//! End-to-end pipeline tests: database generation → predictive query →
//! trained model → metrics, across every classification model family.

use relgraph::pq::{execute, ExecConfig, ModelChoice, PredictionValue, TaskType};
use relgraph::prelude::*;

fn small_db(seed: u64) -> Database {
    generate_ecommerce(&EcommerceConfig {
        customers: 80,
        products: 25,
        seed,
        ..Default::default()
    })
    .expect("generate")
}

fn fast_cfg() -> ExecConfig {
    ExecConfig {
        epochs: 5,
        hidden_dim: 16,
        fanouts: vec![5, 5],
        max_predictions: Some(25),
        gbdt_rounds: 40,
        ..Default::default()
    }
}

const QUERY: &str = "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id";

#[test]
fn every_model_beats_nothing_and_stays_bounded() {
    let db = small_db(1);
    for model in ["gnn", "gbdt", "logreg", "trivial"] {
        let out = execute(&db, &format!("{QUERY} USING model = {model}"), &fast_cfg())
            .unwrap_or_else(|e| panic!("{model}: {e}"));
        assert_eq!(out.task, TaskType::Classification);
        let acc = out.metric("accuracy").expect("accuracy");
        assert!((0.0..=1.0).contains(&acc), "{model} accuracy {acc}");
        if let Some(auc) = out.metric("auroc") {
            assert!((0.0..=1.0).contains(&auc), "{model} auroc {auc}");
        }
        for p in &out.predictions {
            match p.value {
                PredictionValue::Score(s) => {
                    assert!((0.0..=1.0).contains(&s), "{model} probability {s}")
                }
                _ => panic!("classification must produce scores"),
            }
        }
    }
}

#[test]
fn learned_models_beat_the_prior() {
    let db = small_db(2);
    let trivial = execute(&db, &format!("{QUERY} USING model = trivial"), &fast_cfg()).unwrap();
    let gnn = execute(
        &db,
        &format!("{QUERY} USING model = gnn, epochs = 12"),
        &fast_cfg(),
    )
    .unwrap();
    let t = trivial.metric("logloss").unwrap();
    let g = gnn.metric("logloss").unwrap();
    assert!(g < t, "GNN logloss {g} should beat prior {t}");
    assert!(
        gnn.metric("auroc").unwrap() > 0.6,
        "GNN should be informative"
    );
}

#[test]
fn execution_is_deterministic_given_seed() {
    let db = small_db(3);
    let run = || {
        execute(
            &db,
            &format!("{QUERY} USING model = gnn, seed = 5"),
            &fast_cfg(),
        )
        .unwrap()
        .predictions
        .iter()
        .map(|p| match p.value {
            PredictionValue::Score(s) => s,
            _ => unreachable!(),
        })
        .collect::<Vec<f64>>()
    };
    assert_eq!(
        run(),
        run(),
        "same seed must reproduce identical predictions"
    );
}

#[test]
fn summary_and_explain_are_informative() {
    let db = small_db(4);
    let out = execute(&db, &format!("{QUERY} USING model = trivial"), &fast_cfg()).unwrap();
    let s = out.summary();
    assert!(s.contains("classification") && s.contains("trivial"));
    assert!(out.explain.contains("Join path"));
    assert!(out.explain.contains("Anchors"));
    assert_eq!(out.model, ModelChoice::Trivial);
    assert!(out.train_size > 0 && out.test_size > 0);
}

#[test]
fn using_overrides_change_behavior() {
    let db = small_db(5);
    let one = execute(
        &db,
        &format!("{QUERY} USING model = gnn, hops = 1, epochs = 2"),
        &fast_cfg(),
    )
    .unwrap();
    let zero = execute(
        &db,
        &format!("{QUERY} USING model = gnn, hops = 0, epochs = 2"),
        &fast_cfg(),
    )
    .unwrap();
    // Both run; they are different models over the same data.
    assert!(one.metric("accuracy").is_some());
    assert!(zero.metric("accuracy").is_some());
}
