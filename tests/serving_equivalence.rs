//! Serving-cache equivalence under random ingest schedules: a warm
//! [`ServeEngine`] — whose two cache tiers are invalidated *precisely*
//! (dirty nodes + k-hop closure) rather than flushed — must, after any
//! sequence of row batches interleaved with warming reads, return
//! predictions bit-identical to a cold run: the same fitted model applied
//! to a scratch-compiled graph of the final database with no cache at all.
//!
//! Training is expensive, so one engine is fitted once and shared across
//! proptest cases; the database (and the engine's maintained graph) keep
//! growing case over case, which only makes the property stronger — every
//! case re-proves equivalence against a scratch rebuild of the *current*
//! state. Batch timestamps are drawn strictly inside the existing time
//! span so the deploy anchor never advances: the engine must survive on
//! precise invalidation alone (flushing would hide eviction bugs).
//!
//! The final battery extends the property to the sharded tier's shared
//! L2 embedding cache under true concurrency: with the per-shard L1
//! slices starved, readers race the writer across every publish and must
//! only ever observe predictions bitwise-equal to some published epoch —
//! in `f64`, `f32`, and `q8` — before settling exactly on the last one.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use proptest::prelude::*;
use relgraph::datagen::{generate_ecommerce, EcommerceConfig};
use relgraph::db2graph::{build_graph, ConvertOptions};
use relgraph::gnn::{
    predict_nodes, predict_nodes_f32, InferModel32, NoCache, NoCache32, Precision,
};
use relgraph::pq::ExecConfig;
use relgraph::serve::{QuantizedEmbeddingCache, ServeConfig, ServeEngine, ShardedEngine};
use relgraph::store::{Database, IngestPolicy, Row, RowBatch, Value};

const QUERY: &str = "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id";
const CUSTOMERS: i64 = 50;
const PRODUCTS: i64 = 12;

fn engine() -> &'static Mutex<ServeEngine> {
    static ENGINE: OnceLock<Mutex<ServeEngine>> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let db = generate_ecommerce(&EcommerceConfig {
            customers: CUSTOMERS as usize,
            products: PRODUCTS as usize,
            seed: 23,
            ..Default::default()
        })
        .unwrap();
        let exec = ExecConfig {
            epochs: 2,
            hidden_dim: 8,
            fanouts: vec![4, 4],
            ..Default::default()
        };
        Mutex::new(ServeEngine::fit(db, QUERY, &exec, ServeConfig::default()).unwrap())
    })
}

/// Primary keys must stay unique across batches *and* proptest cases.
static NEXT_ORDER_ID: AtomicI64 = AtomicI64::new(5_000_000);

/// One order row: customer selector, product selector, quantity, amount,
/// and a 0..1000 fraction placing its timestamp inside the current span.
type OrderSpec = (usize, usize, i64, f64, u32);
/// One schedule step: rows to ingest, then entity selectors to re-read
/// (warming traffic interleaved with writes).
type BatchSpec = (Vec<OrderSpec>, Vec<usize>);

fn schedule_strategy() -> impl Strategy<Value = Vec<BatchSpec>> {
    let order = (0usize..64, 0usize..64, 1i64..5, 1.0f64..100.0, 0u32..1000);
    let step = (
        proptest::collection::vec(order, 1..6),
        proptest::collection::vec(0usize..64, 0..8),
    );
    proptest::collection::vec(step, 1..4)
}

proptest! {
    // Each case pays for a scratch graph compile plus a no-cache inference
    // pass over every entity, so the case count is deliberately modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn warm_cache_equals_cold_rebuild_after_random_ingest(schedule in schedule_strategy()) {
        let mut eng = engine().lock().unwrap_or_else(|e| e.into_inner());
        let rows = eng.deploy_entities().unwrap();

        // Fill both tiers so the schedule's invalidations have cached
        // state to bite on.
        let _ = eng.predict_batch(&rows);

        for (orders, probes) in &schedule {
            let (lo, hi) = eng.db().time_span().unwrap();
            let mut batch = RowBatch::new();
            for &(c, p, qty, amount, frac) in orders {
                // In [lo + span/4, lo + 3·span/4]: strictly before `hi`,
                // so the deploy anchor must not move.
                let t = lo + (hi - lo) / 4 + (hi - lo) / 2 * frac as i64 / 1000;
                batch.push(
                    "orders",
                    Row::new()
                        .push(NEXT_ORDER_ID.fetch_add(1, Ordering::Relaxed))
                        // Datagen ids are 0-based: 0..customers, 0..products.
                        .push(c as i64 % CUSTOMERS)
                        .push(p as i64 % PRODUCTS)
                        .push(qty)
                        .push(amount)
                        .push("web")
                        .push(Value::Timestamp(t)),
                );
            }
            let n = batch.len();
            let outcome = eng.ingest(batch, &IngestPolicy::coerce_all()).unwrap();
            prop_assert_eq!(outcome.report.accepted, n, "every scheduled row is valid");
            prop_assert!(
                !outcome.flushed,
                "timestamps stay inside the span, so only precise invalidation may run"
            );
            prop_assert!(!outcome.rebuilt);

            // Interleaved warming reads: re-populate a random slice of the
            // cache between writes, like live traffic would.
            let probe_rows: Vec<usize> = probes.iter().map(|&s| rows[s % rows.len()]).collect();
            if !probe_rows.is_empty() {
                let _ = eng.predict_batch(&probe_rows);
            }
        }

        // The property: warm serving ≡ cold rebuild, bit for bit, for
        // every deployable entity.
        let warm = eng.predict_batch(&rows);
        let (scratch, _) = build_graph(eng.db(), &ConvertOptions::default()).unwrap();
        let cold = predict_nodes(
            eng.model(),
            &scratch,
            eng.node_type(),
            &rows,
            eng.anchor(),
            &mut NoCache,
        );
        for (i, (w, c)) in warm.iter().zip(&cold).enumerate() {
            prop_assert_eq!(
                w.to_bits(),
                c.to_bits(),
                "entity row {} diverged after a random ingest schedule: warm {} vs cold {}",
                rows[i],
                w,
                c
            );
        }
    }
}

proptest! {
    // Four sharded engines per case (1/2/4/8 shards), each replaying the
    // same schedule, plus a scratch cold rebuild — markedly more expensive
    // than the single-engine property above, so even fewer cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Shard-count invariance: the same fitted model served through 1, 2,
    /// 4, or 8 per-core shards — each shard owning a private slice of the
    /// two-tier cache, fed through the epoch-swap snapshot pipeline — must
    /// produce bit-identical predictions under any random ingest schedule,
    /// and all of them must equal a cold no-cache rebuild. Routing is load
    /// balancing only; it must never be visible in the numbers.
    #[test]
    fn shard_count_never_changes_predictions(schedule in schedule_strategy()) {
        // Borrow the shared fitted state (training is the expensive part);
        // each sharded engine gets its own clone of the *current* database,
        // so the growing-db trick from the first property carries over.
        let (db, query, model, node_type, metrics) = {
            let eng = engine().lock().unwrap_or_else(|e| e.into_inner());
            (
                eng.db().clone(),
                eng.query().clone(),
                eng.model_handle(),
                eng.node_type(),
                eng.metrics_owned(),
            )
        };
        let engines: Vec<ShardedEngine> = [1usize, 2, 4, 8]
            .iter()
            .map(|&n| {
                ShardedEngine::from_fitted(
                    db.clone(),
                    query.clone(),
                    model.clone(),
                    node_type,
                    metrics.clone(),
                    ServeConfig::default(),
                    n,
                )
                .unwrap()
            })
            .collect();
        let rows = engines[0].deploy_entities().unwrap();

        // Warm every engine's cache tiers before the writes start biting.
        for eng in &engines {
            let _ = eng.predict_batch_rows(&rows);
        }

        for (orders, probes) in &schedule {
            let (lo, hi) = db.time_span().unwrap();
            // Materialize each step's rows ONCE — ids are drawn from the
            // shared counter a single time and replayed into every engine,
            // so all four databases stay byte-identical.
            let materialized: Vec<Row> = orders
                .iter()
                .map(|&(c, p, qty, amount, frac)| {
                    let t = lo + (hi - lo) / 4 + (hi - lo) / 2 * frac as i64 / 1000;
                    Row::new()
                        .push(NEXT_ORDER_ID.fetch_add(1, Ordering::Relaxed))
                        .push(c as i64 % CUSTOMERS)
                        .push(p as i64 % PRODUCTS)
                        .push(qty)
                        .push(amount)
                        .push("web")
                        .push(Value::Timestamp(t))
                })
                .collect();
            for eng in &engines {
                let mut batch = RowBatch::new();
                for row in &materialized {
                    batch.push("orders", row.clone());
                }
                let n = batch.len();
                let outcome = eng.ingest(batch, &IngestPolicy::coerce_all()).unwrap();
                prop_assert_eq!(outcome.report.accepted, n);
                prop_assert!(
                    !outcome.flushed && !outcome.rebuilt,
                    "in-span timestamps must take the precise-invalidation path"
                );
            }
            let probe_rows: Vec<usize> = probes.iter().map(|&s| rows[s % rows.len()]).collect();
            if !probe_rows.is_empty() {
                for eng in &engines {
                    let _ = eng.predict_batch_rows(&probe_rows);
                }
            }
        }

        // Cold oracle on the settled state: scratch graph, no cache.
        let snap = engines[0].snapshot();
        let (scratch, _) = build_graph(&snap.db, &ConvertOptions::default()).unwrap();
        let cold = predict_nodes(&model, &scratch, node_type, &rows, snap.anchor, &mut NoCache);

        let outputs: Vec<Vec<f64>> = engines
            .iter()
            .map(|eng| eng.predict_batch_rows(&rows))
            .collect();
        for (shards, warm) in [1usize, 2, 4, 8].iter().zip(&outputs) {
            for (i, (w, c)) in warm.iter().zip(&cold).enumerate() {
                prop_assert_eq!(
                    w.to_bits(),
                    c.to_bits(),
                    "row {} diverged from cold rebuild at {} shards: warm {} vs cold {}",
                    rows[i],
                    shards,
                    w,
                    c
                );
            }
        }
    }
}

/// Precision modes the L2-coherence battery covers. Kept local: the
/// cross-mode tolerance battery lives in `precision_equivalence.rs`; this
/// file only proves within-mode bitwise coherence.
const L2_MODES: [Precision; 3] = [Precision::F64, Precision::F32, Precision::Q8];

proptest! {
    // The most expensive battery in the file: each case replays the
    // schedule into 3 precision modes × {2, 4} shards, each under live
    // concurrent readers, plus one scratch graph compile and three cold
    // oracle passes per epoch state — so very few cases.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// L2 coherence under concurrency. The per-shard L1 slices are
    /// squeezed to a few rows (`embedding_cache: 16`, `prediction_cache:
    /// 1`) so the shared L2 tier must carry the working set across
    /// shards. Readers hammer the engine while the writer publishes a
    /// random schedule of in-span batches; three things must hold in
    /// every precision mode at 2 and at 4 shards:
    ///
    /// 1. Every prediction any reader ever observes is bitwise-equal to
    ///    SOME published epoch's cold no-cache value — a reader seeing a
    ///    stale L2 row survive an invalidation, or an L2 row promoted
    ///    from a *newer* epoch than its shard's snapshot, would produce a
    ///    value matching no epoch.
    /// 2. The settled state equals the FINAL epoch exactly (warm ≡ cold
    ///    per mode, with the q8 oracle routed through the same
    ///    quantization codec warm serving uses).
    /// 3. The L2 tier demonstrably carried traffic (promotions and
    ///    cross-tier hits observed), so 1. and 2. actually exercised it.
    #[test]
    fn l2_tier_stays_epoch_coherent_under_concurrent_reads(schedule in schedule_strategy()) {
        const READERS: usize = 2;

        // Borrow the shared fitted state; anchor and deploy rows are
        // stable because every batch timestamp stays inside the span.
        let (db, query, model, node_type, metrics, anchor, rows) = {
            let eng = engine().lock().unwrap_or_else(|e| e.into_inner());
            (
                eng.db().clone(),
                eng.query().clone(),
                eng.model_handle(),
                eng.node_type(),
                eng.metrics_owned(),
                eng.anchor(),
                eng.deploy_entities().unwrap(),
            )
        };

        // Materialize the schedule once (ids drawn from the shared
        // counter a single time) and precompute every epoch state's
        // database on a scratch clone.
        let mut step_rows: Vec<Vec<Row>> = Vec::new();
        let mut states: Vec<Database> = vec![db.clone()];
        for (orders, _) in &schedule {
            let cur = states.last().unwrap();
            let (lo, hi) = cur.time_span().unwrap();
            let materialized: Vec<Row> = orders
                .iter()
                .map(|&(c, p, qty, amount, frac)| {
                    let t = lo + (hi - lo) / 4 + (hi - lo) / 2 * frac as i64 / 1000;
                    Row::new()
                        .push(NEXT_ORDER_ID.fetch_add(1, Ordering::Relaxed))
                        .push(c as i64 % CUSTOMERS)
                        .push(p as i64 % PRODUCTS)
                        .push(qty)
                        .push(amount)
                        .push("web")
                        .push(Value::Timestamp(t))
                })
                .collect();
            let mut next = cur.clone();
            let mut batch = RowBatch::new();
            for row in &materialized {
                batch.push("orders", row.clone());
            }
            next.ingest(batch, &IngestPolicy::coerce_all()).unwrap();
            states.push(next);
            step_rows.push(materialized);
        }

        // Cold oracles: for each epoch state, one scratch graph compile
        // shared by all three mode oracles. `expected[mode][epoch][row]`.
        let m32 = InferModel32::from_model(&model);
        let mut expected: Vec<Vec<Vec<f64>>> = vec![Vec::new(); L2_MODES.len()];
        for state in &states {
            let (scratch, _) = build_graph(state, &ConvertOptions::default()).unwrap();
            expected[0].push(predict_nodes(
                &model, &scratch, node_type, &rows, anchor, &mut NoCache,
            ));
            expected[1].push(predict_nodes_f32(
                &m32, &scratch, node_type, &rows, anchor, &mut NoCache32,
            ));
            let mut fresh =
                QuantizedEmbeddingCache::new(ServeConfig::default().embedding_cache);
            expected[2].push(predict_nodes_f32(
                &m32, &scratch, node_type, &rows, anchor, &mut fresh,
            ));
        }

        for &shards in &[2usize, 4] {
            for (mi, &mode) in L2_MODES.iter().enumerate() {
                // Per-row legal bit patterns: the union over epochs.
                let legal: Vec<HashSet<u64>> = (0..rows.len())
                    .map(|i| expected[mi].iter().map(|e| e[i].to_bits()).collect())
                    .collect();
                let eng = Arc::new(
                    ShardedEngine::from_fitted(
                        db.clone(),
                        query.clone(),
                        model.clone(),
                        node_type,
                        metrics.clone(),
                        ServeConfig {
                            precision: mode,
                            prediction_cache: 1,
                            embedding_cache: 16,
                            ..ServeConfig::default()
                        },
                        shards,
                    )
                    .unwrap(),
                );
                // Warm pass: promotes the working set into L2 at epoch 0.
                let _ = eng.predict_batch_rows(&rows);

                let writing = Arc::new(AtomicBool::new(true));
                let reader_handles: Vec<_> = (0..READERS)
                    .map(|r| {
                        let eng = Arc::clone(&eng);
                        let rows = rows.clone();
                        let legal = legal.clone();
                        let writing = Arc::clone(&writing);
                        std::thread::spawn(move || {
                            let mut pass = 0usize;
                            while writing.load(Ordering::Relaxed) {
                                let start = (pass * (r + 1)) % rows.len();
                                let slice: Vec<usize> = rows
                                    .iter()
                                    .cycle()
                                    .skip(start)
                                    .take(rows.len() / 2 + 1)
                                    .copied()
                                    .collect();
                                let preds = eng.predict_batch_rows(&slice);
                                for (j, p) in preds.iter().enumerate() {
                                    let row_idx = (start + j) % rows.len();
                                    assert!(
                                        legal[row_idx].contains(&p.to_bits()),
                                        "[{mode}] row {} returned {p}, matching no \
                                         published epoch (stale or early L2 row?)",
                                        slice[j]
                                    );
                                }
                                pass += 1;
                            }
                        })
                    })
                    .collect();

                for materialized in &step_rows {
                    let mut batch = RowBatch::new();
                    for row in materialized {
                        batch.push("orders", row.clone());
                    }
                    let outcome = eng.ingest(batch, &IngestPolicy::coerce_all()).unwrap();
                    assert!(!outcome.flushed && !outcome.rebuilt);
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                std::thread::sleep(std::time::Duration::from_millis(15));
                writing.store(false, Ordering::Relaxed);
                for h in reader_handles {
                    h.join().expect("reader observed an illegal prediction");
                }

                // Settled: the final epoch exactly, bit for bit.
                let settled = eng.predict_batch_rows(&rows);
                let fin = expected[mi].last().unwrap();
                for (i, (w, c)) in settled.iter().zip(fin).enumerate() {
                    prop_assert_eq!(
                        w.to_bits(),
                        c.to_bits(),
                        "[{}] row {} off final epoch after settle at {} shards: {} vs {}",
                        mode, rows[i], shards, w, c
                    );
                }
                // The run must actually have flowed through the L2 tier.
                prop_assert!(
                    eng.l2().promotions() > 0,
                    "[{}] {} shards: no L2 promotions — battery is vacuous",
                    mode, shards
                );
                prop_assert!(
                    eng.stats().l2_hits > 0,
                    "[{}] {} shards: starved L1 slices never hit L2 — vacuous",
                    mode, shards
                );
            }
        }
    }
}
