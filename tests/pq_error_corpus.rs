//! Error-corpus test: every malformed query under `tests/pq_corpus/` must
//! surface as a structured [`PqError`] — never a panic, never a silent
//! success. The corpus covers lexer, parser, analyzer and option-handling
//! failure modes.

use relgraph::datagen::{generate_ecommerce, EcommerceConfig};
use relgraph::db2graph::{build_graph, ConvertOptions};
use relgraph::pq::{ExecConfig, PqError, PreparedQuery};

#[test]
fn every_corpus_query_fails_with_a_structured_error() {
    let db = generate_ecommerce(&EcommerceConfig {
        customers: 30,
        products: 10,
        seed: 5,
        ..Default::default()
    })
    .unwrap();
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/pq_corpus");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus directory")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "pq"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 30,
        "corpus shrank: only {} queries",
        paths.len()
    );

    let mut failures = Vec::new();
    for path in &paths {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let query = std::fs::read_to_string(path).unwrap();
        // A panic anywhere in parse/analyze/option handling fails the
        // whole test with that query's backtrace — which is the point.
        match PreparedQuery::prepare(&db, &query, &ExecConfig::default()) {
            Ok(_) => failures.push(format!("{name}: unexpectedly compiled")),
            Err(e) => {
                // Structured: a known variant with a non-empty message.
                let msg = e.to_string();
                assert!(!msg.is_empty(), "{name}: empty error message");
                match &e {
                    PqError::Parse { message, .. } => {
                        assert!(!message.is_empty(), "{name}: empty parse message")
                    }
                    PqError::Analyze(m) | PqError::TrainingTable(m) | PqError::Execution(m) => {
                        assert!(!m.is_empty(), "{name}: empty message")
                    }
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "corpus queries that did not error:\n{}",
        failures.join("\n")
    );
}

/// Runtime corpus case: `run_on_graph` handed a graph whose entity node
/// type covers fewer rows than the database (e.g. compiled before ingest,
/// or when the entity table had zero rows at the anchor timestamp) must
/// return a structured execution error, not panic inside the sampler.
#[test]
fn run_on_graph_with_stale_zero_row_graph_is_a_structured_error() {
    let cfg = EcommerceConfig {
        customers: 30,
        products: 10,
        seed: 5,
        ..Default::default()
    };
    let db = generate_ecommerce(&cfg).unwrap();
    let pq = PreparedQuery::prepare(
        &db,
        "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id",
        &ExecConfig::default(),
    )
    .unwrap();

    // Graph compiled from an empty snapshot of the same schema: every node
    // type exists but has zero rows behind it.
    let mut empty = relgraph::store::Database::new("empty");
    for t in db.tables() {
        empty.create_table(t.schema().clone()).unwrap();
    }
    let (graph, mapping) = build_graph(&empty, &ConvertOptions::default()).unwrap();

    match pq.run_on_graph(&db, &graph, &mapping) {
        Ok(_) => panic!("stale graph unexpectedly produced predictions"),
        Err(PqError::Execution(m)) => {
            assert!(
                m.contains("stale") && m.contains("customers"),
                "unhelpful stale-graph message: {m}"
            );
        }
        Err(e) => panic!("expected an execution error, got: {e}"),
    }
}
