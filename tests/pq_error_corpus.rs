//! Error-corpus test: every malformed query under `tests/pq_corpus/` must
//! surface as a structured [`PqError`] — never a panic, never a silent
//! success. The corpus covers lexer, parser, analyzer and option-handling
//! failure modes.

use relgraph::datagen::{generate_ecommerce, EcommerceConfig};
use relgraph::pq::{ExecConfig, PqError, PreparedQuery};

#[test]
fn every_corpus_query_fails_with_a_structured_error() {
    let db = generate_ecommerce(&EcommerceConfig {
        customers: 30,
        products: 10,
        seed: 5,
        ..Default::default()
    })
    .unwrap();
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/pq_corpus");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus directory")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "pq"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 30,
        "corpus shrank: only {} queries",
        paths.len()
    );

    let mut failures = Vec::new();
    for path in &paths {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let query = std::fs::read_to_string(path).unwrap();
        // A panic anywhere in parse/analyze/option handling fails the
        // whole test with that query's backtrace — which is the point.
        match PreparedQuery::prepare(&db, &query, &ExecConfig::default()) {
            Ok(_) => failures.push(format!("{name}: unexpectedly compiled")),
            Err(e) => {
                // Structured: a known variant with a non-empty message.
                let msg = e.to_string();
                assert!(!msg.is_empty(), "{name}: empty error message");
                match &e {
                    PqError::Parse { message, .. } => {
                        assert!(!message.is_empty(), "{name}: empty parse message")
                    }
                    PqError::Analyze(m) | PqError::TrainingTable(m) | PqError::Execution(m) => {
                        assert!(!m.is_empty(), "{name}: empty message")
                    }
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "corpus queries that did not error:\n{}",
        failures.join("\n")
    );
}
