//! Streaming-ingest equivalence: maintaining a graph incrementally across
//! an arbitrary schedule of validated row batches must be indistinguishable
//! from compiling the final database from scratch — node counts, edge sets,
//! features and normalization specs all bit-identical — and a predictive
//! query served from the incrementally-maintained graph must return exactly
//! the predictions it would return on a scratch compile.

use proptest::prelude::*;
use relgraph::datagen::{generate_ecommerce, EcommerceConfig};
use relgraph::db2graph::{build_graph, update_graph, ConvertOptions, GraphCursor};
use relgraph::pq::{ExecConfig, PredictionValue, PreparedQuery};
use relgraph::store::{DataType, Database, IngestPolicy, Row, RowBatch, TableSchema, Value};

/// `parents(id, at)` / `children(id, parent_id, x, kind, at)` — one FK, a
/// numeric column (normalization stats shift every batch) and a text
/// column (hashed slots must be carried over correctly).
fn fresh_db() -> Database {
    let mut db = Database::new("stream");
    db.create_table(
        TableSchema::builder("parents")
            .column("id", DataType::Int)
            .column("at", DataType::Timestamp)
            .primary_key("id")
            .time_column("at")
            .build()
            .unwrap(),
    )
    .unwrap();
    db.create_table(
        TableSchema::builder("children")
            .column("id", DataType::Int)
            .column("parent_id", DataType::Int)
            .column("x", DataType::Float)
            .column("kind", DataType::Text)
            .column("at", DataType::Timestamp)
            .primary_key("id")
            .time_column("at")
            .foreign_key("parent_id", "parents")
            .build()
            .unwrap(),
    )
    .unwrap();
    db
}

/// One batch of the schedule: parents to add, then children referencing
/// any parent that exists once this batch's parents are staged (ingest
/// resolves intra-batch FKs in arrival order).
type Batch = (usize, Vec<(usize, f64, String, i64)>);

fn schedule_strategy() -> impl Strategy<Value = Vec<Batch>> {
    let child = (0usize..64, -5.0f64..5.0, "[a-c]{1,2}", 0i64..500);
    proptest::collection::vec((1usize..4, proptest::collection::vec(child, 0..8)), 1..6)
}

/// Apply the schedule through `Database::ingest`, maintaining the graph
/// incrementally after every batch; return the db and the maintained
/// graph/mapping.
fn run_schedule(
    schedule: &[Batch],
    options: &ConvertOptions,
) -> (
    Database,
    relgraph::graph::HeteroGraph,
    relgraph::db2graph::GraphMapping,
) {
    let mut db = fresh_db();
    let (mut graph, mut mapping) = build_graph(&db, options).unwrap();
    let mut cursor = GraphCursor::capture(&db);
    // Coerce: schedules draw times at random, so late rows are expected.
    let policy = IngestPolicy::coerce_all();
    let (mut next_parent, mut next_child) = (0i64, 0i64);
    for (new_parents, children) in schedule {
        let mut batch = RowBatch::new();
        let staged_parents = next_parent + *new_parents as i64;
        for _ in 0..*new_parents {
            batch.push(
                "parents",
                Row::new().push(next_parent).push(Value::Timestamp(0)),
            );
            next_parent += 1;
        }
        for (p, x, kind, t) in children {
            batch.push(
                "children",
                Row::new()
                    .push(next_child)
                    .push((*p as i64) % staged_parents)
                    .push(*x)
                    .push(Value::Text(kind.clone()))
                    .push(Value::Timestamp(*t)),
            );
            next_child += 1;
        }
        let report = db.ingest(batch, &policy).unwrap();
        assert_eq!(report.quarantined, 0, "schedule rows are all valid");
        update_graph(&db, &mut graph, &mut mapping, &mut cursor, options).unwrap();
    }
    (db, graph, mapping)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// ≥256 random batch schedules: the incrementally maintained graph is
    /// structurally identical to a scratch compile of the final database —
    /// nodes, edges, adjacency, features — and the mapping's normalization
    /// specs match.
    #[test]
    fn incremental_ingest_equals_scratch_convert(schedule in schedule_strategy()) {
        let options = ConvertOptions::default();
        let (db, graph, mapping) = run_schedule(&schedule, &options);
        let (scratch_graph, scratch_mapping) = build_graph(&db, &options).unwrap();
        prop_assert!(
            graph.structural_eq(&scratch_graph),
            "incremental graph diverged from scratch compile"
        );
        prop_assert_eq!(&mapping.feature_specs, &scratch_mapping.feature_specs);
    }

    /// Same property without reverse edges (the delta path must respect
    /// the conversion options it was started with).
    #[test]
    fn incremental_ingest_equals_scratch_no_reverse(schedule in schedule_strategy()) {
        let options = ConvertOptions {
            reverse_edges: false,
            ..Default::default()
        };
        let (db, graph, _) = run_schedule(&schedule, &options);
        let (scratch_graph, _) = build_graph(&db, &options).unwrap();
        prop_assert!(graph.structural_eq(&scratch_graph));
    }
}

/// End-to-end serving equivalence on the realistic demo: ingest the last
/// slice of the ecommerce event stream, then run the *same* prepared query
/// on (a) the incrementally maintained graph and (b) a scratch compile of
/// the post-ingest database. Predictions must be bit-identical.
#[test]
fn served_predictions_bit_identical_after_ingest() {
    let full = generate_ecommerce(&EcommerceConfig {
        customers: 120,
        products: 20,
        seed: 11,
        ..Default::default()
    })
    .unwrap();
    let (lo, hi) = full.time_span().unwrap();
    let t_cut = hi - (hi - lo) / 10;
    let mut db = Database::new("shop");
    for t in full.tables() {
        db.create_table(t.schema().clone()).unwrap();
    }
    let mut stream = Vec::new();
    for t in full.tables() {
        let event_table = matches!(t.name(), "orders" | "reviews");
        for i in 0..t.len() {
            let row = t.row(i).unwrap();
            match t.row_timestamp(i) {
                Some(rt) if event_table && rt > t_cut => {
                    stream.push((t.name().to_string(), rt, row))
                }
                _ => {
                    db.insert(t.name(), row).unwrap();
                }
            }
        }
    }
    stream.sort_by_key(|&(_, rt, _)| rt);
    assert!(!stream.is_empty(), "cut must leave an event stream");

    let opts = ConvertOptions::default();
    let (mut graph, mut mapping) = build_graph(&db, &opts).unwrap();
    let mut cursor = GraphCursor::capture(&db);
    let mut batch = RowBatch::new();
    for (table, _, row) in stream {
        batch.push(table, row);
    }
    db.ingest(batch, &IngestPolicy::reject_all()).unwrap();
    update_graph(&db, &mut graph, &mut mapping, &mut cursor, &opts).unwrap();

    let (scratch_graph, scratch_mapping) = build_graph(&db, &opts).unwrap();
    assert!(graph.structural_eq(&scratch_graph));

    let pq = PreparedQuery::prepare(
        &db,
        "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id \
         USING model = gnn, epochs = 3",
        &ExecConfig {
            fanouts: vec![6, 6],
            hidden_dim: 16,
            ..Default::default()
        },
    )
    .unwrap();
    let inc = pq.run_on_graph(&db, &graph, &mapping).unwrap();
    let scratch = pq
        .run_on_graph(&db, &scratch_graph, &scratch_mapping)
        .unwrap();

    assert_eq!(inc.metrics, scratch.metrics);
    assert_eq!(inc.predictions.len(), scratch.predictions.len());
    for (a, b) in inc.predictions.iter().zip(&scratch.predictions) {
        assert_eq!(a.entity_key, b.entity_key);
        match (&a.value, &b.value) {
            (PredictionValue::Score(x), PredictionValue::Score(y)) => {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "prediction diverged for {:?}",
                    a.entity_key
                )
            }
            (va, vb) => assert_eq!(va, vb),
        }
    }
}
