//! Crash-recovery serving equivalence: a process that dies after taking a
//! warm-start snapshot and then durably ingesting more batches must, on
//! restart, serve predictions **byte-for-byte identical** to the process
//! that never died.
//!
//! The restart path is the full persistent substrate end to end: reopen
//! the data directory (columnar base read + WAL replay of every batch
//! committed after the snapshot), load the graph/model snapshots, catch
//! the graph up over the replayed delta, and serve — at 1 and at 4
//! shards. The surviving process is the oracle: it fitted the model once
//! and applied the same batches through live precise invalidation.

use relgraph::datagen::{generate_ecommerce, EcommerceConfig};
use relgraph::pq::ExecConfig;
use relgraph::serve::{warm_sharded, ServeConfig, ShardedEngine};
use relgraph::store::{DataDir, IngestPolicy, Row, RowBatch, Value};

const QUERY: &str = "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id";
const CUSTOMERS: i64 = 40;
const PRODUCTS: i64 = 12;

fn exec() -> ExecConfig {
    ExecConfig {
        epochs: 2,
        hidden_dim: 8,
        fanouts: vec![4, 4],
        ..Default::default()
    }
}

/// Post-snapshot traffic: two batches of orders with in-span timestamps
/// (so both the live engine and the warm catch-up take the precise
/// delta path) and primary keys far above anything datagen assigns.
fn traffic(lo: i64, hi: i64) -> Vec<Vec<Row>> {
    let mid = lo + (hi - lo) / 2;
    let row = |id: i64, c: i64, p: i64, t: i64| {
        Row::new()
            .push(id)
            .push(c % CUSTOMERS)
            .push(p % PRODUCTS)
            .push(2i64)
            .push(19.5f64)
            .push("web")
            .push(Value::Timestamp(t))
    };
    vec![
        vec![row(5_000_000, 3, 7, mid), row(5_000_001, 11, 2, mid + 1000)],
        vec![row(5_000_002, 3, 5, mid + 2000)],
    ]
}

fn run_at(shards: usize) {
    let root = std::env::temp_dir().join(format!(
        "relgraph-recovery-equiv-{shards}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);

    let db = generate_ecommerce(&EcommerceConfig {
        customers: CUSTOMERS as usize,
        products: PRODUCTS as usize,
        seed: 11,
        ..Default::default()
    })
    .unwrap();
    let (lo, hi) = db.time_span().unwrap();
    let mut dd = DataDir::create(&root, &db).unwrap();

    // The process that never dies: fit once, snapshot, keep serving.
    let survivor =
        ShardedEngine::fit(db.clone(), QUERY, &exec(), ServeConfig::default(), shards).unwrap();
    survivor
        .save_warm_start(&dd.snapshots_dir(), QUERY)
        .unwrap();

    // Post-snapshot batches go through BOTH paths: durably into the data
    // dir (WAL first) and live into the survivor's graph.
    let mut mirror = db;
    for rows in traffic(lo, hi) {
        let mut durable = RowBatch::new();
        let mut live = RowBatch::new();
        for row in rows {
            durable.push("orders", row.clone());
            live.push("orders", row);
        }
        let n = durable.len();
        let report = dd
            .ingest(&mut mirror, durable, &IngestPolicy::coerce_all())
            .unwrap();
        assert_eq!(report.accepted, n, "durable path accepted every row");
        let outcome = survivor.ingest(live, &IngestPolicy::coerce_all()).unwrap();
        assert_eq!(outcome.report.accepted, n, "live path accepted every row");
    }
    drop(dd); // crash

    // Restart: reopen (base + WAL replay), warm-boot, catch up, serve.
    let (dd, recovered, report) = DataDir::open(&root).unwrap();
    assert_eq!(report.replayed, 2, "both post-snapshot batches replayed");
    assert_eq!(&recovered, &mirror, "recovered database is bit-identical");
    let (warm, boot) = warm_sharded(
        &dd.snapshots_dir(),
        recovered,
        &exec(),
        ServeConfig::default(),
        shards,
    )
    .unwrap();
    assert!(
        boot.catch_up.new_nodes > 0,
        "replayed orders must appear as catch-up nodes"
    );

    let rows = survivor.deploy_entities().unwrap();
    assert!(!rows.is_empty());
    let cold = survivor.predict_batch_rows(&rows);
    let rewarmed = warm.predict_batch_rows(&rows);
    for (i, (c, w)) in cold.iter().zip(&rewarmed).enumerate() {
        assert_eq!(
            c.to_bits(),
            w.to_bits(),
            "row {} diverged after recovery at {shards} shard(s): survivor {c} vs restarted {w}",
            rows[i]
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn restart_serves_identically_at_one_shard() {
    run_at(1);
}

#[test]
fn restart_serves_identically_at_four_shards() {
    run_at(4);
}
