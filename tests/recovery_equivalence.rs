//! Crash-recovery serving equivalence: a process that dies after taking a
//! warm-start snapshot and then durably ingesting more batches must, on
//! restart, serve predictions **byte-for-byte identical** to the process
//! that never died.
//!
//! The restart path is the full persistent substrate end to end: reopen
//! the data directory (columnar base read + WAL replay of every batch
//! committed after the snapshot), load the graph/model snapshots, catch
//! the graph up over the replayed delta, and serve — at 1 and at 4
//! shards. The surviving process is the oracle: it fitted the model once
//! and applied the same batches through live precise invalidation.

use relgraph::datagen::{generate_ecommerce, EcommerceConfig};
use relgraph::pq::ExecConfig;
use relgraph::serve::{warm_sharded, warm_sharded_partial, ServeConfig, ShardedEngine};
use relgraph::store::{CommitWindow, DataDir, IngestPolicy, Row, RowBatch, Value};

const QUERY: &str = "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id";
const CUSTOMERS: i64 = 40;
const PRODUCTS: i64 = 12;

fn exec() -> ExecConfig {
    ExecConfig {
        epochs: 2,
        hidden_dim: 8,
        fanouts: vec![4, 4],
        ..Default::default()
    }
}

/// Post-snapshot traffic: two batches of orders with in-span timestamps
/// (so both the live engine and the warm catch-up take the precise
/// delta path) and primary keys far above anything datagen assigns.
fn traffic(lo: i64, hi: i64) -> Vec<Vec<Row>> {
    let mid = lo + (hi - lo) / 2;
    let row = |id: i64, c: i64, p: i64, t: i64| {
        Row::new()
            .push(id)
            .push(c % CUSTOMERS)
            .push(p % PRODUCTS)
            .push(2i64)
            .push(19.5f64)
            .push("web")
            .push(Value::Timestamp(t))
    };
    vec![
        vec![row(5_000_000, 3, 7, mid), row(5_000_001, 11, 2, mid + 1000)],
        vec![row(5_000_002, 3, 5, mid + 2000)],
    ]
}

fn run_at(shards: usize) {
    let root = std::env::temp_dir().join(format!(
        "relgraph-recovery-equiv-{shards}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);

    let db = generate_ecommerce(&EcommerceConfig {
        customers: CUSTOMERS as usize,
        products: PRODUCTS as usize,
        seed: 11,
        ..Default::default()
    })
    .unwrap();
    let (lo, hi) = db.time_span().unwrap();
    let mut dd = DataDir::create(&root, &db).unwrap();

    // The process that never dies: fit once, snapshot, keep serving.
    let survivor =
        ShardedEngine::fit(db.clone(), QUERY, &exec(), ServeConfig::default(), shards).unwrap();
    survivor
        .save_warm_start(&dd.snapshots_dir(), QUERY)
        .unwrap();

    // Post-snapshot batches go through BOTH paths: durably into the data
    // dir (WAL first) and live into the survivor's graph.
    let mut mirror = db;
    for rows in traffic(lo, hi) {
        let mut durable = RowBatch::new();
        let mut live = RowBatch::new();
        for row in rows {
            durable.push("orders", row.clone());
            live.push("orders", row);
        }
        let n = durable.len();
        let report = dd
            .ingest(&mut mirror, durable, &IngestPolicy::coerce_all())
            .unwrap();
        assert_eq!(report.accepted, n, "durable path accepted every row");
        let outcome = survivor.ingest(live, &IngestPolicy::coerce_all()).unwrap();
        assert_eq!(outcome.report.accepted, n, "live path accepted every row");
    }
    drop(dd); // crash

    // Restart: reopen (base + WAL replay), warm-boot, catch up, serve.
    let (dd, recovered, report) = DataDir::open(&root).unwrap();
    assert_eq!(report.replayed, 2, "both post-snapshot batches replayed");
    assert_eq!(&recovered, &mirror, "recovered database is bit-identical");
    let (warm, boot) = warm_sharded(
        &dd.snapshots_dir(),
        recovered,
        &exec(),
        ServeConfig::default(),
        shards,
    )
    .unwrap();
    assert!(
        boot.catch_up.new_nodes > 0,
        "replayed orders must appear as catch-up nodes"
    );

    let rows = survivor.deploy_entities().unwrap();
    assert!(!rows.is_empty());
    let cold = survivor.predict_batch_rows(&rows);
    let rewarmed = warm.predict_batch_rows(&rows);
    for (i, (c, w)) in cold.iter().zip(&rewarmed).enumerate() {
        assert_eq!(
            c.to_bits(),
            w.to_bits(),
            "row {} diverged after recovery at {shards} shard(s): survivor {c} vs restarted {w}",
            rows[i]
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Partial-load serving equivalence (DESIGN.md §14.8): a restart that
/// materializes only key/foreign-key/time columns from the columnar base
/// — features ride in the graph snapshot — must serve predictions
/// byte-for-byte identical to a restart that reads every column, and to
/// the process that never died. The post-snapshot traffic is committed
/// through the group-commit pipeline, so the reboot also replays a
/// multi-batch group frame, and the WAL-touched `orders` table is forced
/// to a full load while the untouched wide tables stay partial.
fn run_partial_at(shards: usize) {
    let root = std::env::temp_dir().join(format!(
        "relgraph-partial-equiv-{shards}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);

    let db = generate_ecommerce(&EcommerceConfig {
        customers: CUSTOMERS as usize,
        products: PRODUCTS as usize,
        seed: 11,
        ..Default::default()
    })
    .unwrap();
    let (lo, hi) = db.time_span().unwrap();
    let mut dd = DataDir::create(&root, &db).unwrap();

    let survivor =
        ShardedEngine::fit(db.clone(), QUERY, &exec(), ServeConfig::default(), shards).unwrap();
    survivor
        .save_warm_start(&dd.snapshots_dir(), QUERY)
        .unwrap();

    // Post-snapshot batches: live into the survivor one at a time, durably
    // into the data dir as one group commit (one frame, one fsync).
    let mut mirror = db;
    let mut durable = Vec::new();
    let mut rows_per_batch = Vec::new();
    for rows in traffic(lo, hi) {
        let mut d = RowBatch::new();
        let mut live = RowBatch::new();
        for row in rows {
            d.push("orders", row.clone());
            live.push("orders", row);
        }
        rows_per_batch.push(d.len());
        durable.push(d);
        let outcome = survivor.ingest(live, &IngestPolicy::coerce_all()).unwrap();
        assert_eq!(
            outcome.report.accepted,
            *rows_per_batch.last().unwrap(),
            "live path accepted every row"
        );
    }
    dd.set_commit_window(CommitWindow::batches(durable.len()));
    let reports = dd
        .ingest_group(&mut mirror, durable, &IngestPolicy::coerce_all())
        .unwrap();
    assert_eq!(reports.len(), rows_per_batch.len());
    for (r, &n) in reports.iter().zip(&rows_per_batch) {
        assert_eq!(
            r.as_ref().expect("durable batch accepted").accepted,
            n,
            "durable path accepted every row"
        );
    }
    drop(dd); // crash

    // Restart A: the fully-materialized warm boot (every column read).
    let (dd, recovered, report) = DataDir::open(&root).unwrap();
    assert_eq!(report.replayed, 2, "both group members replayed");
    assert_eq!(&recovered, &mirror, "recovered database is bit-identical");
    let (full, _) = warm_sharded(
        &dd.snapshots_dir(),
        recovered,
        &exec(),
        ServeConfig::default(),
        shards,
    )
    .unwrap();
    drop(dd);

    // Restart B: the partial warm boot — keys/FKs/time only.
    let boot = warm_sharded_partial(&root, &exec(), ServeConfig::default(), shards).unwrap();
    assert_eq!(
        boot.recovery.replayed, 2,
        "the group's members replay on the partial path too"
    );
    assert!(
        boot.partial.deferred_columns > 0,
        "the wide untouched tables must actually defer columns"
    );
    assert!(
        boot.partial.partial_tables > 0,
        "at least one table stays partially loaded"
    );

    let rows = survivor.deploy_entities().unwrap();
    assert!(!rows.is_empty());
    let oracle = survivor.predict_batch_rows(&rows);
    let materialized = full.predict_batch_rows(&rows);
    let partial = boot.engine.predict_batch_rows(&rows);
    for (i, ((o, m), p)) in oracle.iter().zip(&materialized).zip(&partial).enumerate() {
        assert_eq!(
            o.to_bits(),
            m.to_bits(),
            "row {} diverged on the full restart at {shards} shard(s)",
            rows[i]
        );
        assert_eq!(
            o.to_bits(),
            p.to_bits(),
            "row {} diverged on the partial restart at {shards} shard(s): \
             survivor {o} vs partial {p}",
            rows[i]
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn restart_serves_identically_at_one_shard() {
    run_at(1);
}

#[test]
fn restart_serves_identically_at_four_shards() {
    run_at(4);
}

#[test]
fn partial_load_serves_identically_at_one_shard() {
    run_partial_at(1);
}

#[test]
fn partial_load_serves_identically_at_four_shards() {
    run_partial_at(4);
}
