//! Parallelism-determinism integration tests: every rayon-parallelized
//! stage must produce bit-identical results regardless of thread count.
//!
//! The engine's contract (see DESIGN.md, "Parallelism model") is that
//! threads only ever change wall-clock time, never results: parallel
//! stages partition work into order-preserving chunks and merge in input
//! order. These tests pin that contract end-to-end — sampling, training
//! tables, featurization, and full GNN training runs.

use relgraph::db2graph::{build_graph, ConvertOptions};
use relgraph::gnn::{train_node_model, TaskKind, TrainConfig};
use relgraph::graph::{SamplerConfig, Seed, TemporalSampler};
use relgraph::pq::traintable::TrainTableConfig;
use relgraph::pq::{analyze, build_training_table, parse};
use relgraph::prelude::*;

/// Run `f` with `RAYON_NUM_THREADS` fixed to `n`, restoring the previous
/// value afterwards. The shim reads the variable per call, so this
/// controls every parallel region inside `f`.
fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", n.to_string());
    let out = f();
    match prev {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    out
}

/// One combined test (not several) because `RAYON_NUM_THREADS` is
/// process-global and the test harness runs `#[test]` fns concurrently.
#[test]
fn thread_count_never_changes_results() {
    let db = generate_ecommerce(&EcommerceConfig {
        customers: 60,
        products: 20,
        seed: 17,
        ..Default::default()
    })
    .expect("generate");

    // db2graph featurization (rayon per-row fill) + graph build (rayon
    // per-edge-type CSR construction).
    let (g1, m1) = with_threads(1, || build_graph(&db, &ConvertOptions::default()).unwrap());
    for threads in [2, 4, 7] {
        let (gn, _) = with_threads(threads, || {
            build_graph(&db, &ConvertOptions::default()).unwrap()
        });
        for t in 0..g1.num_node_types() {
            assert_eq!(
                g1.features(relgraph::graph::NodeTypeId(t)),
                gn.features(relgraph::graph::NodeTypeId(t)),
                "features differ at {threads} threads"
            );
        }
    }

    // Temporal sampling (rayon per-seed fan-out, order-preserving merge).
    let cust = m1.node_type("customers").unwrap();
    let (_, hi) = db.time_span().unwrap();
    let seeds: Vec<Seed> = (0..40)
        .map(|i| Seed {
            node_type: cust,
            node: i,
            time: hi,
        })
        .collect();
    let sampler = TemporalSampler::new(&g1, SamplerConfig::new(vec![10, 10]));
    let base = with_threads(1, || sampler.sample(&seeds));
    for threads in [2, 4, 7] {
        let sub = with_threads(threads, || sampler.sample(&seeds));
        assert_eq!(base, sub, "sampled subgraph differs at {threads} threads");
    }

    // Training-table construction (rayon per-anchor fan-out).
    let aq = analyze(
        &db,
        parse("PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id").unwrap(),
    )
    .unwrap();
    let cfg = TrainTableConfig::default();
    let t1 = with_threads(1, || build_training_table(&db, &aq, &cfg).unwrap());
    let t4 = with_threads(4, || build_training_table(&db, &aq, &cfg).unwrap());
    assert_eq!(t1.train, t4.train);
    assert_eq!(t1.val, t4.val);
    assert_eq!(t1.test, t4.test);

    // Full GNN training (parallel sampling inside batch assembly, parallel
    // validation chunks, parallel matmul in forward/backward): per-epoch
    // losses must match exactly, not approximately.
    let examples: Vec<(Seed, f64)> = t1
        .train
        .iter()
        .map(|e| {
            (
                Seed {
                    node_type: cust,
                    node: e.entity_row,
                    time: e.anchor,
                },
                e.label.scalar(),
            )
        })
        .collect();
    let val: Vec<(Seed, f64)> = t1
        .val
        .iter()
        .map(|e| {
            (
                Seed {
                    node_type: cust,
                    node: e.entity_row,
                    time: e.anchor,
                },
                e.label.scalar(),
            )
        })
        .collect();
    let tcfg = TrainConfig {
        epochs: 3,
        batch_size: 32,
        seed: 5,
        ..Default::default()
    };
    let r1 = with_threads(1, || {
        train_node_model(&g1, TaskKind::Binary, &examples, &val, &tcfg)
            .unwrap()
            .report
    });
    let r4 = with_threads(4, || {
        train_node_model(&g1, TaskKind::Binary, &examples, &val, &tcfg)
            .unwrap()
            .report
    });
    assert_eq!(
        r1.train_losses, r4.train_losses,
        "train losses diverge across threads"
    );
    assert_eq!(
        r1.val_losses, r4.val_losses,
        "val losses diverge across threads"
    );
}
