//! Parallelism-determinism integration tests: every rayon-parallelized
//! stage must produce bit-identical results regardless of thread count.
//!
//! The engine's contract (see DESIGN.md, "Parallelism model") is that
//! threads only ever change wall-clock time, never results: parallel
//! stages partition work into order-preserving chunks and merge in input
//! order. These tests pin that contract end-to-end — sampling, training
//! tables, featurization, and full GNN training runs.

use relgraph::db2graph::{build_graph, ConvertOptions};
use relgraph::gnn::{train_node_model, TaskKind, TrainConfig};
use relgraph::graph::{SamplerConfig, Seed, TemporalSampler};
use relgraph::pq::traintable::TrainTableConfig;
use relgraph::pq::{analyze, build_training_table, parse};
use relgraph::prelude::*;
use relgraph::tensor::{ActKind, Graph, Tensor};

/// Run `f` with `RAYON_NUM_THREADS` fixed to `n`, restoring the previous
/// value afterwards. The shim reads the variable per call, so this
/// controls every parallel region inside `f`.
fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", n.to_string());
    let out = f();
    match prev {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    out
}

/// One combined test (not several) because `RAYON_NUM_THREADS` is
/// process-global and the test harness runs `#[test]` fns concurrently.
/// Deterministic dense test matrix (no RNG dependency).
fn mat(rows: usize, cols: usize, m0: usize, m1: usize, md: i64) -> Tensor {
    let data: Vec<f64> = (0..rows * cols)
        .map(|x| ((x / cols * m0 + x % cols * m1) as i64 % md - md / 2) as f64 * 0.25)
        .collect();
    Tensor::from_vec(rows, cols, data)
}

fn bits(t: &Tensor) -> Vec<u64> {
    t.data().iter().map(|x| x.to_bits()).collect()
}

/// The matmul microkernels (plain, NT, TN, and the fused
/// linear+bias+activation epilogue) must be bit-identical across thread
/// counts at every dispatch tier: tiny (naive fallback), medium (serial
/// microkernel) and large (parallel row panels).
fn assert_matmul_kernels_thread_invariant() {
    // (m, k, n) crossing the naive (32³ flops) and parallel (64³ flops)
    // dispatch thresholds, plus ragged shapes exercising tile remainders.
    let shapes = [(4usize, 5usize, 3usize), (33, 40, 37), (80, 64, 96)];
    for &(m, k, n) in &shapes {
        let a = mat(m, k, 31, 7, 13);
        let b = mat(k, n, 17, 3, 11);
        let bt = b.transpose();
        let at = a.transpose();
        let bias = mat(1, n, 5, 29, 9);
        let base = with_threads(1, || {
            (
                a.matmul(&b),
                a.matmul_nt(&bt),
                at.matmul_tn(&b),
                a.matmul_bias_act(&b, &bias, ActKind::Relu),
            )
        });
        for threads in [2, 4, 7] {
            let got = with_threads(threads, || {
                (
                    a.matmul(&b),
                    a.matmul_nt(&bt),
                    at.matmul_tn(&b),
                    a.matmul_bias_act(&b, &bias, ActKind::Relu),
                )
            });
            assert_eq!(
                bits(&base.0),
                bits(&got.0),
                "matmul {m}x{k}x{n} differs at {threads} threads"
            );
            assert_eq!(
                bits(&base.1),
                bits(&got.1),
                "matmul_nt {m}x{k}x{n} differs at {threads} threads"
            );
            assert_eq!(
                bits(&base.2),
                bits(&got.2),
                "matmul_tn {m}x{k}x{n} differs at {threads} threads"
            );
            assert_eq!(
                bits(&base.3),
                bits(&got.3),
                "matmul_bias_act {m}x{k}x{n} differs at {threads} threads"
            );
        }
    }
}

/// The fused `linear_act` tape op must match the unfused
/// `matmul → add_row → activation` chain bit for bit — forward and
/// gradients — at every dispatch tier and activation.
fn assert_fused_linear_matches_composition() {
    let acts = [
        ActKind::Identity,
        ActKind::Relu,
        ActKind::LeakyRelu(0.01),
        ActKind::Sigmoid,
        ActKind::Tanh,
    ];
    for &(m, k, n) in &[(5usize, 6usize, 4usize), (80, 64, 96)] {
        let x0 = mat(m, k, 31, 7, 13);
        let w0 = mat(k, n, 17, 3, 11);
        let b0 = mat(1, n, 5, 29, 9);
        for act in acts {
            let mut gf = Graph::new();
            let xf = gf.leaf_copied(&x0);
            let wf = gf.leaf_copied(&w0);
            let bf = gf.leaf_copied(&b0);
            let yf = gf.linear_act(xf, wf, bf, act);
            let lf = gf.mean_all(yf);
            gf.backward(lf).unwrap();

            let mut gu = Graph::new();
            let xu = gu.leaf_copied(&x0);
            let wu = gu.leaf_copied(&w0);
            let bu = gu.leaf_copied(&b0);
            let mm = gu.matmul(xu, wu);
            let z = gu.add_row(mm, bu);
            let yu = match act {
                ActKind::Identity => z,
                ActKind::Relu => gu.relu(z),
                ActKind::LeakyRelu(s) => gu.leaky_relu(z, s),
                ActKind::Sigmoid => gu.sigmoid(z),
                ActKind::Tanh => gu.tanh(z),
            };
            let lu = gu.mean_all(yu);
            gu.backward(lu).unwrap();

            assert_eq!(
                bits(gf.value(yf)),
                bits(gu.value(yu)),
                "fused forward diverges ({m}x{k}x{n}, {act:?})"
            );
            for (fused, unfused, name) in [
                (gf.grad(xf), gu.grad(xu), "dX"),
                (gf.grad(wf), gu.grad(wu), "dW"),
                (gf.grad(bf), gu.grad(bu), "db"),
            ] {
                assert_eq!(
                    bits(fused.unwrap()),
                    bits(unfused.unwrap()),
                    "fused {name} diverges ({m}x{k}x{n}, {act:?})"
                );
            }
        }
    }
}

#[test]
fn thread_count_never_changes_results() {
    // Kernel-level invariants first: they are what makes the end-to-end
    // checks below hold.
    assert_matmul_kernels_thread_invariant();
    assert_fused_linear_matches_composition();

    let db = generate_ecommerce(&EcommerceConfig {
        customers: 60,
        products: 20,
        seed: 17,
        ..Default::default()
    })
    .expect("generate");

    // db2graph featurization (rayon per-row fill) + graph build (rayon
    // per-edge-type CSR construction).
    let (g1, m1) = with_threads(1, || build_graph(&db, &ConvertOptions::default()).unwrap());
    for threads in [2, 4, 7] {
        let (gn, _) = with_threads(threads, || {
            build_graph(&db, &ConvertOptions::default()).unwrap()
        });
        for t in 0..g1.num_node_types() {
            assert_eq!(
                g1.features(relgraph::graph::NodeTypeId(t)),
                gn.features(relgraph::graph::NodeTypeId(t)),
                "features differ at {threads} threads"
            );
        }
    }

    // Temporal sampling (rayon per-seed fan-out, order-preserving merge).
    let cust = m1.node_type("customers").unwrap();
    let (_, hi) = db.time_span().unwrap();
    let seeds: Vec<Seed> = (0..40)
        .map(|i| Seed {
            node_type: cust,
            node: i,
            time: hi,
        })
        .collect();
    let sampler = TemporalSampler::new(&g1, SamplerConfig::new(vec![10, 10]));
    let base = with_threads(1, || sampler.sample(&seeds));
    for threads in [2, 4, 7] {
        let sub = with_threads(threads, || sampler.sample(&seeds));
        assert_eq!(base, sub, "sampled subgraph differs at {threads} threads");
    }

    // Training-table construction (rayon per-anchor fan-out).
    let aq = analyze(
        &db,
        parse("PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id").unwrap(),
    )
    .unwrap();
    let cfg = TrainTableConfig::default();
    let t1 = with_threads(1, || build_training_table(&db, &aq, &cfg).unwrap());
    let t4 = with_threads(4, || build_training_table(&db, &aq, &cfg).unwrap());
    assert_eq!(t1.train, t4.train);
    assert_eq!(t1.val, t4.val);
    assert_eq!(t1.test, t4.test);

    // Full GNN training (parallel sampling inside batch assembly, parallel
    // validation chunks, parallel matmul in forward/backward): per-epoch
    // losses must match exactly, not approximately.
    let examples: Vec<(Seed, f64)> = t1
        .train
        .iter()
        .map(|e| {
            (
                Seed {
                    node_type: cust,
                    node: e.entity_row,
                    time: e.anchor,
                },
                e.label.scalar(),
            )
        })
        .collect();
    let val: Vec<(Seed, f64)> = t1
        .val
        .iter()
        .map(|e| {
            (
                Seed {
                    node_type: cust,
                    node: e.entity_row,
                    time: e.anchor,
                },
                e.label.scalar(),
            )
        })
        .collect();
    let tcfg = TrainConfig {
        epochs: 3,
        batch_size: 32,
        seed: 5,
        ..Default::default()
    };
    let m1_model = with_threads(1, || {
        train_node_model(&g1, TaskKind::Binary, &examples, &val, &tcfg).unwrap()
    });
    let m4_model = with_threads(4, || {
        train_node_model(&g1, TaskKind::Binary, &examples, &val, &tcfg).unwrap()
    });
    assert_eq!(
        m1_model.report.train_losses, m4_model.report.train_losses,
        "train losses diverge across threads"
    );
    assert_eq!(
        m1_model.report.val_losses, m4_model.report.val_losses,
        "val losses diverge across threads"
    );

    // Served predictions must also be bit-identical: same model weights
    // (trained at different thread counts) and same inference outputs
    // regardless of the thread count used to serve them.
    let pred_seeds: Vec<Seed> = examples.iter().map(|&(s, _)| s).take(40).collect();
    let p1 = with_threads(1, || m1_model.predict(&g1, &pred_seeds));
    for threads in [2, 4, 7] {
        let p_served = with_threads(threads, || m1_model.predict(&g1, &pred_seeds));
        let p_cross = with_threads(threads, || m4_model.predict(&g1, &pred_seeds));
        for (i, ((a, b), c)) in p1.iter().zip(&p_served).zip(&p_cross).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "prediction {i} diverges at {threads} serving threads"
            );
            assert_eq!(
                a.to_bits(),
                c.to_bits(),
                "prediction {i} diverges for the {threads}-thread-trained model"
            );
        }
    }
}
