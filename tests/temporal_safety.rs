//! Temporal-safety integration tests: the leakage guarantees the paper's
//! protocol depends on, checked across crate boundaries.

use relgraph::db2graph::{build_graph, snapshot_at, ConvertOptions};
use relgraph::graph::{NodeTypeId, SamplerConfig, Seed, TemporalSampler};
use relgraph::pq::traintable::TrainTableConfig;
use relgraph::pq::{analyze, build_training_table, parse};
use relgraph::prelude::*;

fn db() -> Database {
    generate_ecommerce(&EcommerceConfig {
        customers: 60,
        products: 20,
        seed: 17,
        ..Default::default()
    })
    .expect("generate")
}

#[test]
fn sampler_never_returns_future_nodes_on_real_data() {
    let db = db();
    let (graph, mapping) = build_graph(&db, &ConvertOptions::default()).unwrap();
    let cust = mapping.node_type("customers").unwrap();
    let sampler = TemporalSampler::new(&graph, SamplerConfig::new(vec![10, 10]));
    let (lo, hi) = db.time_span().unwrap();
    for (i, anchor) in [
        (0usize, lo + (hi - lo) / 3),
        (5, lo + (hi - lo) / 2),
        (9, hi),
    ] {
        // Only anchor after the seed entity exists (the training-table
        // layer guarantees this for real pipelines).
        let anchor = anchor.max(graph.node_time(cust, i));
        let sub = sampler.sample(&[Seed {
            node_type: cust,
            node: i,
            time: anchor,
        }]);
        for t in 0..graph.num_node_types() {
            for &node in &sub.nodes[t] {
                let nt = graph.node_time(NodeTypeId(t), node);
                assert!(
                    nt <= anchor,
                    "node of type {t} created at {nt} leaked into anchor {anchor}"
                );
            }
        }
    }
}

#[test]
fn sampled_subgraph_matches_snapshot_database() {
    // Sampling the full graph at time t must see exactly the rows that a
    // database truncated at t would contain (for the seed's neighborhood).
    let db = db();
    let (graph, mapping) = build_graph(&db, &ConvertOptions::default()).unwrap();
    let cust = mapping.node_type("customers").unwrap();
    let (lo, hi) = db.time_span().unwrap();
    let t_mid = lo + (hi - lo) / 2;

    let snapshot = snapshot_at(&db, t_mid).unwrap();
    let orders_at_t: usize = snapshot.table("orders").unwrap().len();
    assert!(orders_at_t < db.table("orders").unwrap().len());

    // Count orders visible from each customer via the temporal sampler.
    let sampler = TemporalSampler::new(&graph, SamplerConfig::new(vec![usize::MAX]));
    let mut visible = 0usize;
    for c in 0..graph.num_nodes(cust) {
        let sub = sampler.sample(&[Seed {
            node_type: cust,
            node: c,
            time: t_mid,
        }]);
        let ord_ty = mapping.node_type("orders").unwrap();
        visible += sub.nodes[ord_ty.0].len();
    }
    assert_eq!(
        visible, orders_at_t,
        "sampler and snapshot disagree about visibility"
    );
}

#[test]
fn training_table_labels_use_only_the_future_window() {
    let db = db();
    let aq = analyze(
        &db,
        parse("PREDICT COUNT(orders.*, 0, 30) FOR EACH customers.customer_id").unwrap(),
    )
    .unwrap();
    let table = build_training_table(&db, &aq, &TrainTableConfig::default()).unwrap();
    let orders = db.table("orders").unwrap();
    let customers = db.table("customers").unwrap();
    // Recompute each label by brute force from the raw table.
    const DAY: i64 = 86_400;
    for e in table
        .train
        .iter()
        .chain(&table.val)
        .chain(&table.test)
        .take(500)
    {
        let key = customers
            .value_by_name(e.entity_row, "customer_id")
            .unwrap();
        let mut expected = 0.0;
        for i in 0..orders.len() {
            if orders.value_by_name(i, "customer_id").unwrap() != key {
                continue;
            }
            let t = orders.row_timestamp(i).unwrap();
            if t > e.anchor && t <= e.anchor + 30 * DAY {
                expected += 1.0;
            }
        }
        assert_eq!(
            e.label.scalar(),
            expected,
            "label mismatch for entity row {}",
            e.entity_row
        );
    }
}

#[test]
fn temporal_split_orders_anchors() {
    let db = db();
    let aq = analyze(
        &db,
        parse("PREDICT EXISTS(orders.*, 0, 30) FOR EACH customers.customer_id").unwrap(),
    )
    .unwrap();
    let table = build_training_table(&db, &aq, &TrainTableConfig::default()).unwrap();
    let max_train = table.train.iter().map(|e| e.anchor).max().unwrap();
    let min_val = table.val.iter().map(|e| e.anchor).min().unwrap_or(i64::MAX);
    let min_test = table.test.iter().map(|e| e.anchor).min().unwrap();
    assert!(max_train < min_val.min(min_test));
    if !table.val.is_empty() {
        let max_val = table.val.iter().map(|e| e.anchor).max().unwrap();
        assert!(max_val < min_test);
    }
}

/// Two-table fixture for the streaming-ingest horizon tests.
fn stream_db() -> Database {
    use relgraph::store::{DataType, TableSchema};
    let mut db = Database::new("stream");
    db.create_table(
        TableSchema::builder("parents")
            .column("id", DataType::Int)
            .column("at", DataType::Timestamp)
            .primary_key("id")
            .time_column("at")
            .build()
            .unwrap(),
    )
    .unwrap();
    db.create_table(
        TableSchema::builder("children")
            .column("id", DataType::Int)
            .column("parent_id", DataType::Int)
            .column("at", DataType::Timestamp)
            .primary_key("id")
            .time_column("at")
            .foreign_key("parent_id", "parents")
            .build()
            .unwrap(),
    )
    .unwrap();
    db.insert("parents", Row::new().push(0i64).push(Value::Timestamp(0)))
        .unwrap();
    db
}

/// Nodes visible from parent 0 at `anchor`, per child id.
fn visible_children(graph: &relgraph::graph::HeteroGraph, anchor: i64) -> Vec<usize> {
    let sampler = TemporalSampler::new(graph, SamplerConfig::new(vec![usize::MAX]));
    let sub = sampler.sample(&[Seed {
        node_type: NodeTypeId(0),
        node: 0,
        time: anchor,
    }]);
    let mut v = sub.nodes[1].clone();
    v.sort_unstable();
    v
}

#[test]
fn ingested_rows_respect_anchor_horizons() {
    use relgraph::db2graph::{update_graph, GraphCursor};
    use relgraph::store::{IngestPolicy, RowBatch};
    let mut db = stream_db();
    let opts = ConvertOptions::default();
    let (mut graph, mut mapping) = build_graph(&db, &opts).unwrap();
    let mut cursor = GraphCursor::capture(&db);

    // A batch straddling the anchor: child 0 strictly before, child 1
    // exactly at, child 2 strictly after.
    let anchor = 200i64;
    let mut batch = RowBatch::new();
    for (id, t) in [(0i64, 150i64), (1, 200), (2, 250)] {
        batch.push(
            "children",
            Row::new().push(id).push(0i64).push(Value::Timestamp(t)),
        );
    }
    let report = db.ingest(batch, &IngestPolicy::reject_all()).unwrap();
    assert_eq!(report.accepted, 3);
    update_graph(&db, &mut graph, &mut mapping, &mut cursor, &opts).unwrap();

    // Rows ingested at or before the anchor appear in its horizon; the
    // future row must not leak in.
    assert_eq!(visible_children(&graph, anchor), vec![0, 1]);
    assert_eq!(visible_children(&graph, 100), Vec::<usize>::new());
    assert_eq!(visible_children(&graph, i64::MAX), vec![0, 1, 2]);
}

#[test]
fn out_of_order_ingest_under_coerce_stays_temporally_safe() {
    use relgraph::db2graph::{update_graph, GraphCursor};
    use relgraph::store::{IngestPolicy, RowBatch};
    let mut db = stream_db();
    let opts = ConvertOptions::default();
    let (mut graph, mut mapping) = build_graph(&db, &opts).unwrap();
    let mut cursor = GraphCursor::capture(&db);
    let policy = IngestPolicy::coerce_all();

    // First batch advances the watermark to 500.
    let mut b1 = RowBatch::new();
    b1.push(
        "children",
        Row::new().push(0i64).push(0i64).push(Value::Timestamp(500)),
    );
    assert_eq!(db.ingest(b1, &policy).unwrap().late, 0);
    update_graph(&db, &mut graph, &mut mapping, &mut cursor, &opts).unwrap();

    // Second batch backfills an out-of-order event at t=100. Coerce
    // accepts it as-is (counted late) rather than clamping its timestamp.
    let mut b2 = RowBatch::new();
    b2.push(
        "children",
        Row::new().push(1i64).push(0i64).push(Value::Timestamp(100)),
    );
    let report = db.ingest(b2, &policy).unwrap();
    assert_eq!((report.accepted, report.late), (1, 1));
    update_graph(&db, &mut graph, &mut mapping, &mut cursor, &opts).unwrap();

    // An anchor between the two events sees exactly the backfilled row:
    // the late row joined the horizon of its *event* time, and the future
    // row stays invisible. The CSR re-sorted the neighbor list, so the
    // visible prefix is correct even though arrival order was inverted.
    assert_eq!(visible_children(&graph, 300), vec![1]);
    assert_eq!(visible_children(&graph, 50), Vec::<usize>::new());
    assert_eq!(visible_children(&graph, 500), vec![0, 1]);

    // And the maintained graph still matches a scratch compile.
    let (scratch, _) = build_graph(&db, &opts).unwrap();
    assert!(graph.structural_eq(&scratch));
}

#[test]
fn leaky_sampling_inflates_offline_metrics() {
    // The F2 experiment's core assertion, as a regression test.
    use relgraph::gnn::{train_node_model, TaskKind, TrainConfig};
    use relgraph::metrics::auroc;
    let db = db();
    let aq = analyze(
        &db,
        parse("PREDICT EXISTS(orders.*, 0, 30) FOR EACH customers.customer_id").unwrap(),
    )
    .unwrap();
    let table = build_training_table(&db, &aq, &TrainTableConfig::default()).unwrap();
    let (graph, mapping) = build_graph(&db, &ConvertOptions::default()).unwrap();
    let cust = mapping.node_type("customers").unwrap();
    let to_seed = |e: &relgraph::pq::Example| Seed {
        node_type: cust,
        node: e.entity_row,
        time: e.anchor,
    };
    let train: Vec<(Seed, f64)> = table
        .train
        .iter()
        .map(|e| (to_seed(e), e.label.scalar()))
        .collect();
    let test_seeds: Vec<Seed> = table.test.iter().map(to_seed).collect();
    let labels: Vec<bool> = table.test.iter().map(|e| e.label.scalar() > 0.5).collect();
    let cfg = |temporal| TrainConfig {
        epochs: 6,
        hidden_dim: 16,
        fanouts: vec![5, 5],
        temporal,
        ..Default::default()
    };
    let honest = train_node_model(&graph, TaskKind::Binary, &train, &[], &cfg(true)).unwrap();
    let leaky = train_node_model(&graph, TaskKind::Binary, &train, &[], &cfg(false)).unwrap();
    let honest_auc = auroc(&honest.predict(&graph, &test_seeds), &labels).unwrap();
    let leaky_auc = auroc(&leaky.predict(&graph, &test_seeds), &labels).unwrap();
    assert!(
        leaky_auc > honest_auc + 0.03,
        "leaky ({leaky_auc}) should visibly inflate over honest ({honest_auc})"
    );
    assert!(
        leaky_auc > 0.85,
        "leaky sampling should look near-perfect, got {leaky_auc}"
    );
}
