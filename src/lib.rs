//! # relgraph — databases as graphs, predictive queries for declarative ML
//!
//! A from-scratch Rust implementation of the *relational deep learning*
//! vision ("Databases as Graphs: Predictive Queries for Declarative Machine
//! Learning", PODS 2023): treat a relational database as a heterogeneous
//! temporal graph and answer declaratively-specified *predictive queries*
//! by compiling them into leak-free GNN training pipelines — no manual
//! feature engineering.
//!
//! ```text
//! ┌────────────┐   db2graph   ┌──────────────┐   sampler    ┌───────────┐
//! │ relational │ ───────────▶ │ hetero       │ ───────────▶ │ temporal  │
//! │ database   │              │ temporal     │              │ GNN       │
//! │ (store)    │              │ graph        │              │ (gnn/nn)  │
//! └────────────┘              └──────────────┘              └───────────┘
//!       ▲                            ▲                            ▲
//!       └──────── PREDICT … FOR EACH … WHERE … USING …  (pq) ─────┘
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use relgraph::datagen::{generate_ecommerce, EcommerceConfig};
//! use relgraph::pq::{execute, ExecConfig};
//!
//! let db = generate_ecommerce(&EcommerceConfig {
//!     customers: 60, products: 20, ..Default::default()
//! }).unwrap();
//! let outcome = execute(
//!     &db,
//!     "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id \
//!      USING model = trivial",
//!     &ExecConfig::default(),
//! ).unwrap();
//! assert!(outcome.metric("accuracy").is_some());
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`store`] | `relgraph-store` | in-memory columnar relational DB |
//! | [`graph`] | `relgraph-graph` | heterogeneous temporal graph + sampler |
//! | [`db2graph`] | `relgraph-db2graph` | DB → graph compiler + featurizer |
//! | [`tensor`] | `relgraph-tensor` | dense tensors + reverse-mode autodiff |
//! | [`nn`] | `relgraph-nn` | layers, losses, optimizers |
//! | [`gnn`] | `relgraph-gnn` | hetero-SAGE models, trainers, two-tower |
//! | [`pq`] | `relgraph-pq` | the predictive query language + executor |
//! | [`serve`] | `relgraph-serve` | micro-batched serving + cached inference |
//! | [`baselines`] | `relgraph-baselines` | feature engineering + tabular models |
//! | [`datagen`] | `relgraph-datagen` | seeded synthetic databases |
//! | [`metrics`] | `relgraph-metrics` | AUROC / MAE / MAP@K … |
//! | [`obs`] | `relgraph-obs` | spans, counters, run reports (`RELGRAPH_OBS`) |

pub use relgraph_baselines as baselines;
pub use relgraph_datagen as datagen;
pub use relgraph_db2graph as db2graph;
pub use relgraph_gnn as gnn;
pub use relgraph_graph as graph;
pub use relgraph_metrics as metrics;
pub use relgraph_nn as nn;
pub use relgraph_obs as obs;
pub use relgraph_pq as pq;
pub use relgraph_serve as serve;
pub use relgraph_store as store;
pub use relgraph_tensor as tensor;

/// Most commonly used items, importable in one line.
pub mod prelude {
    pub use relgraph_datagen::{
        generate_clinic, generate_ecommerce, generate_forum, ClinicConfig, EcommerceConfig,
        ForumConfig,
    };
    pub use relgraph_db2graph::{build_graph, snapshot_at, ConvertOptions};
    pub use relgraph_graph::{HeteroGraph, SamplerConfig, Seed, TemporalSampler};
    pub use relgraph_pq::{
        execute, ExecConfig, ModelChoice, PredictiveQuery, QueryOutcome, TaskType,
    };
    pub use relgraph_store::{DataType, Database, Row, TableSchema, Value};
}
