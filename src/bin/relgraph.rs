//! `relgraph` — the command-line front end: load a relational database
//! from a directory (or generate a demo one) and run predictive queries
//! against it.
//!
//! ```text
//! USAGE:
//!   relgraph --demo ecommerce --query "PREDICT EXISTS(orders.*, 0, 30) FOR EACH customers.customer_id"
//!   relgraph --data ./mydb    --query "…" [--explain-only] [--top 20] [--export-demo DIR]
//!
//! OPTIONS:
//!   --data <DIR>        load <DIR>/schema.ddl + <table>.csv files
//!   --demo <NAME>       generate a demo database: ecommerce | forum | clinic
//!   --query <PQL>       the predictive query to run (required unless --export-demo)
//!   --explain-only      compile and print the plan without training
//!   --top <N>           print the N highest-scoring predictions (default 10)
//!   --seed <N>          generator/model seed (default 7)
//!   --export-demo <DIR> write the demo database to DIR (schema.ddl + CSVs) and exit
//! ```
//!
//! Set `RELGRAPH_OBS=stderr` for a per-stage timing tree on stderr, or
//! `RELGRAPH_OBS=json:<path>` to write machine-readable span events plus a
//! final `run_report` JSON document (see `relgraph::obs`).
//!
//! Model and hyper-parameters are controlled from the query's `USING`
//! clause (e.g. `USING model = gbdt, epochs = 20`).

use std::process::ExitCode;

use relgraph::datagen::{
    generate_clinic, generate_ecommerce, generate_forum, ClinicConfig, EcommerceConfig, ForumConfig,
};
use relgraph::pq::traintable::TrainTableConfig;
use relgraph::pq::{
    analyze, build_training_table, execute, explain, parse, ExecConfig, PredictionValue,
};
use relgraph::store::{load_database_dir, save_database_dir, Database};

struct Args {
    data: Option<String>,
    demo: Option<String>,
    query: Option<String>,
    explain_only: bool,
    top: usize,
    seed: u64,
    export_demo: Option<String>,
}

fn usage() -> &'static str {
    "usage: relgraph (--data DIR | --demo ecommerce|forum|clinic) \
     --query 'PREDICT …' [--explain-only] [--top N] [--seed N] [--export-demo DIR]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        data: None,
        demo: None,
        query: None,
        explain_only: false,
        top: 10,
        seed: 7,
        export_demo: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--data" => args.data = Some(value("--data")?),
            "--demo" => args.demo = Some(value("--demo")?),
            "--query" | "-q" => args.query = Some(value("--query")?),
            "--explain-only" => args.explain_only = true,
            "--top" => {
                args.top = value("--top")?
                    .parse()
                    .map_err(|_| "--top needs a number".to_string())?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs a number".to_string())?
            }
            "--export-demo" => args.export_demo = Some(value("--export-demo")?),
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

fn load(args: &Args) -> Result<Database, String> {
    match (&args.data, &args.demo) {
        (Some(dir), None) => load_database_dir(dir).map_err(|e| format!("loading {dir}: {e}")),
        (None, Some(demo)) => match demo.as_str() {
            "ecommerce" => generate_ecommerce(&EcommerceConfig {
                seed: args.seed,
                ..Default::default()
            })
            .map_err(|e| e.to_string()),
            "forum" => generate_forum(&ForumConfig {
                seed: args.seed,
                ..Default::default()
            })
            .map_err(|e| e.to_string()),
            "clinic" => generate_clinic(&ClinicConfig {
                seed: args.seed,
                ..Default::default()
            })
            .map_err(|e| e.to_string()),
            other => Err(format!(
                "unknown demo `{other}` (ecommerce | forum | clinic)"
            )),
        },
        _ => Err(format!("need exactly one of --data or --demo\n{}", usage())),
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    relgraph::obs::init_from_env();
    let db = load(&args)?;
    eprintln!("{}", db.summary());

    if let Some(dir) = &args.export_demo {
        save_database_dir(&db, dir).map_err(|e| e.to_string())?;
        println!("exported database to {dir}/ (schema.ddl + CSVs)");
        return Ok(());
    }

    let query_text = args
        .query
        .as_deref()
        .ok_or_else(|| format!("--query is required\n{}", usage()))?;

    if args.explain_only {
        let parsed = parse(query_text).map_err(|e| e.to_string())?;
        let analyzed = analyze(&db, parsed).map_err(|e| e.to_string())?;
        let table = build_training_table(&db, &analyzed, &TrainTableConfig::default())
            .map_err(|e| e.to_string())?;
        println!("{}", explain(&db, &analyzed, Some(&table)));
        return Ok(());
    }

    let cfg = ExecConfig {
        seed: args.seed,
        max_predictions: None,
        ..Default::default()
    };
    let outcome = execute(&db, query_text, &cfg).map_err(|e| e.to_string())?;
    relgraph::obs::emit_run_report(
        "relgraph-cli",
        &[
            (
                "dataset",
                args.demo
                    .as_deref()
                    .or(args.data.as_deref())
                    .unwrap_or("unknown"),
            ),
            ("task", &outcome.task.to_string()),
            ("model", &outcome.model.to_string()),
            ("seed", &args.seed.to_string()),
        ],
    );
    println!("{}", outcome.explain);
    println!("Backtest ({} test examples):", outcome.test_size);
    for (name, v) in &outcome.metrics {
        println!("  {name:<12} {v:.4}");
    }

    // Highest-scoring predictions first (ranking lists as-is).
    let mut preds = outcome.predictions;
    preds.sort_by(|a, b| {
        let score = |p: &relgraph::pq::Prediction| match &p.value {
            PredictionValue::Score(s) => *s,
            PredictionValue::Items(_) | PredictionValue::Class(_) => 0.0,
        };
        score(b)
            .partial_cmp(&score(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    println!(
        "\nTop {} predictions (anchored at the latest time in the data):",
        args.top
    );
    for p in preds.iter().take(args.top) {
        match &p.value {
            PredictionValue::Score(s) => println!("  {:<12} {s:.4}", p.entity_key.to_string()),
            PredictionValue::Items(items) => {
                let list: Vec<String> = items.iter().map(ToString::to_string).collect();
                println!("  {:<12} [{}]", p.entity_key.to_string(), list.join(", "));
            }
            PredictionValue::Class(c) => {
                println!("  {:<12} {c}", p.entity_key.to_string());
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("relgraph: {msg}");
            ExitCode::FAILURE
        }
    }
}
