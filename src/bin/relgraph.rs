//! `relgraph` — the command-line front end: load a relational database
//! from a directory (or generate a demo one) and run predictive queries
//! against it.
//!
//! ```text
//! USAGE:
//!   relgraph --demo ecommerce --query "PREDICT EXISTS(orders.*, 0, 30) FOR EACH customers.customer_id"
//!   relgraph --data ./mydb    --query "…" [--explain-only] [--top 20] [--export-demo DIR]
//!   relgraph init    --data-dir ./db (--data ./csvdir | --demo NAME)   # durable columnar dir
//!   relgraph ingest (--data ./mydb | --data-dir ./db) --batch orders=new_orders.csv [--policy coerce]
//!   relgraph serve  (--demo ecommerce | --data-dir ./db) --query "…"  # JSONL request loop
//!   relgraph compact --data-dir ./db   # fold the WAL into a fresh base snapshot
//!   relgraph recover --data-dir ./db   # replay the WAL, truncate any torn tail, report
//!
//! OPTIONS:
//!   --data <DIR>        load <DIR>/schema.ddl + <table>.csv files
//!   --data-dir <DIR>    open a durable columnar data directory (base snapshot +
//!                       ingest WAL; created with `relgraph init`); opening replays
//!                       committed WAL records and truncates any torn tail
//!   --demo <NAME>       generate a demo database: ecommerce | forum | clinic
//!   --query <PQL>       the predictive query to run (required unless --export-demo)
//!   --explain-only      compile and print the plan without training
//!   --top <N>           print the N highest-scoring predictions (default 10)
//!   --seed <N>          generator/model seed (default 7)
//!   --export-demo <DIR> write the demo database to DIR (schema.ddl + CSVs) and exit
//!
//! INGEST OPTIONS (relgraph ingest …):
//!   --batch <T>=<F.csv> append the rows of F.csv to table T (repeatable;
//!                       applied as one atomic batch in flag order)
//!   --policy <P>        validation policy: reject | quarantine | coerce
//!                       (default reject)
//!   --commit-window <N> WAL group commit: keep each --batch file its own
//!                       batch and durably commit up to N of them under a
//!                       single fsync (requires --data-dir; default off —
//!                       all files merge into one batch, one fsync)
//!   --query <PQL>       after ingesting, re-run this predictive query on
//!                       the incrementally-updated graph
//!   --save <DIR>        write the updated database back out to DIR
//!
//! With `--data-dir`, `relgraph ingest` appends each batch to the write-ahead
//! log (flushed before it is applied), so a crash at any point recovers to the
//! last committed batch, and `relgraph serve` saves graph/model snapshots
//! after fitting — the next `serve` on the same directory boots warm in
//! seconds, skipping featurization and training, with byte-identical
//! predictions.
//!
//! SERVE OPTIONS (relgraph serve …):
//!   --max-batch <N>     most requests fused into one inference batch (default 32)
//!   --deadline-ms <N>   micro-batch deadline in milliseconds (default 5)
//!   --pred-cache <N>    prediction-cache capacity, split across shards (default 4096)
//!   --emb-cache <N>     embedding-cache capacity, split across shards (default 65536)
//!   --shards <N>        engine shards / worker threads (default 1)
//!   --l2-cache <N>      shared L2 embedding tier capacity, read by all
//!                       shards (default 65536; 0 disables)
//!   --affinity          pin each shard thread to one core
//!                       (sched_setaffinity; no-op off Linux)
//!   --commit-window <N> write-path group-commit window in batches for
//!                       embedded ingest (default 1 = per-batch commit)
//!   --listen <ADDR>     serve a socket instead of stdin: `host:port` (TCP)
//!                       or a filesystem path (Unix domain socket)
//!
//! `relgraph serve` trains the query's GNN model once, then reads one JSON
//! request per stdin line (`{"id": 7, "entity": 1042}`) and answers each
//! with one JSON response line (`{"id": 7, "prediction": 0.83}` or
//! `{"id": 7, "error": "…"}`). Requests are micro-batched, scattered
//! across per-core engine shards (each owning a slice of the two-tier
//! cache), and scored against epoch-swapped graph snapshots — predictions
//! are bit-identical at any shard count. With `--listen`, the same
//! protocol is served to concurrent socket clients (one response per
//! request line, in order per connection) until the process is killed; in
//! stdin mode a latency/hit-rate summary lands on stderr at EOF.
//! ```
//!
//! Set `RELGRAPH_OBS=stderr` for a per-stage timing tree on stderr, or
//! `RELGRAPH_OBS=json:<path>` to write machine-readable span events plus a
//! final `run_report` JSON document (see `relgraph::obs`).
//!
//! Model and hyper-parameters are controlled from the query's `USING`
//! clause (e.g. `USING model = gbdt, epochs = 20`).

use std::process::ExitCode;

use relgraph::datagen::{
    generate_clinic, generate_ecommerce, generate_forum, ClinicConfig, EcommerceConfig, ForumConfig,
};
use relgraph::db2graph::{build_graph, update_graph, ConvertOptions, GraphCursor};
use relgraph::pq::traintable::TrainTableConfig;
use relgraph::pq::{
    analyze, build_training_table, execute, explain, parse, ExecConfig, PredictionValue,
    PreparedQuery,
};
use relgraph::serve::{protocol as serve_protocol, MicroBatcher, ServeConfig, ShardedEngine};
use relgraph::store::{
    load_database_dir, save_database_dir, CommitWindow, DataDir, Database, IngestPolicy,
    PolicyAction, RowBatch,
};

struct Args {
    data: Option<String>,
    data_dir: Option<String>,
    demo: Option<String>,
    query: Option<String>,
    explain_only: bool,
    top: usize,
    seed: u64,
    export_demo: Option<String>,
}

fn usage() -> &'static str {
    "usage: relgraph (--data DIR | --data-dir DIR | --demo ecommerce|forum|clinic) \
     --query 'PREDICT …' [--explain-only] [--top N] [--seed N] [--export-demo DIR]"
}

/// Open a durable data directory, replaying any committed WAL tail, and
/// surface the recovery report on stderr when it did real work.
fn open_data_dir(dir: &str) -> Result<(DataDir, Database), String> {
    let (dd, db, report) = DataDir::open(std::path::Path::new(dir))
        .map_err(|e| format!("opening data dir {dir}: {e}"))?;
    if report.replayed > 0 || report.torn.is_some() {
        eprintln!("{dir}: {}", report.summary());
    }
    Ok((dd, db))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        data: None,
        data_dir: None,
        demo: None,
        query: None,
        explain_only: false,
        top: 10,
        seed: 7,
        export_demo: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--data" => args.data = Some(value("--data")?),
            "--data-dir" => args.data_dir = Some(value("--data-dir")?),
            "--demo" => args.demo = Some(value("--demo")?),
            "--query" | "-q" => args.query = Some(value("--query")?),
            "--explain-only" => args.explain_only = true,
            "--top" => {
                args.top = value("--top")?
                    .parse()
                    .map_err(|_| "--top needs a number".to_string())?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs a number".to_string())?
            }
            "--export-demo" => args.export_demo = Some(value("--export-demo")?),
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

fn load(args: &Args) -> Result<Database, String> {
    if let Some(dir) = &args.data_dir {
        if args.data.is_some() || args.demo.is_some() {
            return Err(format!(
                "--data-dir cannot be combined with --data/--demo\n{}",
                usage()
            ));
        }
        return open_data_dir(dir).map(|(_, db)| db);
    }
    match (&args.data, &args.demo) {
        (Some(dir), None) => load_database_dir(dir).map_err(|e| format!("loading {dir}: {e}")),
        (None, Some(demo)) => match demo.as_str() {
            "ecommerce" => generate_ecommerce(&EcommerceConfig {
                seed: args.seed,
                ..Default::default()
            })
            .map_err(|e| e.to_string()),
            "forum" => generate_forum(&ForumConfig {
                seed: args.seed,
                ..Default::default()
            })
            .map_err(|e| e.to_string()),
            "clinic" => generate_clinic(&ClinicConfig {
                seed: args.seed,
                ..Default::default()
            })
            .map_err(|e| e.to_string()),
            other => Err(format!(
                "unknown demo `{other}` (ecommerce | forum | clinic)"
            )),
        },
        _ => Err(format!("need exactly one of --data or --demo\n{}", usage())),
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    relgraph::obs::init_from_env();
    let db = load(&args)?;
    eprintln!("{}", db.summary());

    if let Some(dir) = &args.export_demo {
        save_database_dir(&db, dir).map_err(|e| e.to_string())?;
        println!("exported database to {dir}/ (schema.ddl + CSVs)");
        return Ok(());
    }

    let query_text = args
        .query
        .as_deref()
        .ok_or_else(|| format!("--query is required\n{}", usage()))?;

    if args.explain_only {
        let parsed = parse(query_text).map_err(|e| e.to_string())?;
        let analyzed = analyze(&db, parsed).map_err(|e| e.to_string())?;
        let table = build_training_table(&db, &analyzed, &TrainTableConfig::default())
            .map_err(|e| e.to_string())?;
        println!("{}", explain(&db, &analyzed, Some(&table)));
        return Ok(());
    }

    let cfg = ExecConfig {
        seed: args.seed,
        max_predictions: None,
        ..Default::default()
    };
    let outcome = execute(&db, query_text, &cfg).map_err(|e| e.to_string())?;
    relgraph::obs::emit_run_report(
        "relgraph-cli",
        &[
            (
                "dataset",
                args.demo
                    .as_deref()
                    .or(args.data.as_deref())
                    .or(args.data_dir.as_deref())
                    .unwrap_or("unknown"),
            ),
            ("task", &outcome.task.to_string()),
            ("model", &outcome.model.to_string()),
            ("seed", &args.seed.to_string()),
        ],
    );
    print_outcome(outcome, args.top);
    Ok(())
}

fn print_outcome(outcome: relgraph::pq::QueryOutcome, top: usize) {
    println!("{}", outcome.explain);
    println!("Backtest ({} test examples):", outcome.test_size);
    for (name, v) in &outcome.metrics {
        println!("  {name:<12} {v:.4}");
    }

    // Highest-scoring predictions first (ranking lists as-is).
    let mut preds = outcome.predictions;
    preds.sort_by(|a, b| {
        let score = |p: &relgraph::pq::Prediction| match &p.value {
            PredictionValue::Score(s) => *s,
            PredictionValue::Items(_) | PredictionValue::Class(_) => 0.0,
        };
        score(b)
            .partial_cmp(&score(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    println!("\nTop {top} predictions (anchored at the latest time in the data):");
    for p in preds.iter().take(top) {
        match &p.value {
            PredictionValue::Score(s) => println!("  {:<12} {s:.4}", p.entity_key.to_string()),
            PredictionValue::Items(items) => {
                let list: Vec<String> = items.iter().map(ToString::to_string).collect();
                println!("  {:<12} [{}]", p.entity_key.to_string(), list.join(", "));
            }
            PredictionValue::Class(c) => {
                println!("  {:<12} {c}", p.entity_key.to_string());
            }
        }
    }
}

struct IngestArgs {
    data: Option<String>,
    data_dir: Option<String>,
    demo: Option<String>,
    batches: Vec<(String, String)>,
    policy: IngestPolicy,
    commit_window: Option<usize>,
    query: Option<String>,
    save: Option<String>,
    top: usize,
    seed: u64,
}

fn ingest_usage() -> &'static str {
    "usage: relgraph ingest (--data DIR | --data-dir DIR | --demo NAME) \
     --batch TABLE=FILE.csv [--batch …] [--policy reject|quarantine|coerce] \
     [--commit-window N] [--query 'PREDICT …'] [--save DIR] [--top N] [--seed N] \
     (--commit-window groups the --batch files into WAL group commits of up \
     to N batches — one fsync per group — and requires --data-dir)"
}

fn parse_ingest_args(it: impl Iterator<Item = String>) -> Result<IngestArgs, String> {
    let mut args = IngestArgs {
        data: None,
        data_dir: None,
        demo: None,
        batches: Vec::new(),
        policy: IngestPolicy::reject_all(),
        commit_window: None,
        query: None,
        save: None,
        top: 10,
        seed: 7,
    };
    let mut it = it;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", ingest_usage()))
        };
        match flag.as_str() {
            "--data" => args.data = Some(value("--data")?),
            "--data-dir" => args.data_dir = Some(value("--data-dir")?),
            "--demo" => args.demo = Some(value("--demo")?),
            "--batch" => {
                let spec = value("--batch")?;
                let (table, file) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--batch expects TABLE=FILE.csv, got `{spec}`"))?;
                args.batches.push((table.to_string(), file.to_string()));
            }
            "--policy" => {
                let p = value("--policy")?;
                let action: PolicyAction = p.parse()?;
                args.policy = match action {
                    PolicyAction::Reject => IngestPolicy::reject_all(),
                    PolicyAction::Quarantine => IngestPolicy::quarantine_all(),
                    PolicyAction::Coerce => IngestPolicy::coerce_all(),
                };
            }
            "--commit-window" => {
                let n: usize = value("--commit-window")?
                    .parse()
                    .map_err(|_| "--commit-window needs a number".to_string())?;
                args.commit_window = Some(n.max(1));
            }
            "--query" | "-q" => args.query = Some(value("--query")?),
            "--save" => args.save = Some(value("--save")?),
            "--top" => {
                args.top = value("--top")?
                    .parse()
                    .map_err(|_| "--top needs a number".to_string())?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs a number".to_string())?
            }
            "--help" | "-h" => return Err(ingest_usage().to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", ingest_usage())),
        }
    }
    if args.batches.is_empty() {
        return Err(format!(
            "at least one --batch is required\n{}",
            ingest_usage()
        ));
    }
    if args.commit_window.is_some() && args.data_dir.is_none() {
        return Err(format!(
            "--commit-window needs --data-dir (group commit is a WAL feature)\n{}",
            ingest_usage()
        ));
    }
    Ok(args)
}

/// `relgraph ingest`: append CSV batches through the validation policy,
/// incrementally maintain the graph, and optionally re-run a prepared
/// predictive query against it — the full streaming-serve loop.
fn run_ingest(it: impl Iterator<Item = String>) -> Result<(), String> {
    let args = parse_ingest_args(it)?;
    relgraph::obs::init_from_env();
    // With --data-dir the batch goes through the write-ahead log (durable
    // before applied); otherwise this is a plain in-memory ingest.
    let (mut data_dir, mut db) = match &args.data_dir {
        Some(dir) => {
            if args.data.is_some() || args.demo.is_some() {
                return Err(format!(
                    "--data-dir cannot be combined with --data/--demo\n{}",
                    ingest_usage()
                ));
            }
            let (dd, db) = open_data_dir(dir)?;
            (Some(dd), db)
        }
        None => {
            let loader = Args {
                data: args.data.clone(),
                data_dir: None,
                demo: args.demo.clone(),
                query: None,
                explain_only: false,
                top: args.top,
                seed: args.seed,
                export_demo: None,
            };
            (None, load(&loader)?)
        }
    };
    eprintln!("{}", db.summary());

    // Prepare the query and compile the graph *before* ingesting: analysis
    // binds only schema-level facts, so both stay valid as the data grows.
    let prepared = match &args.query {
        Some(q) => Some(
            PreparedQuery::prepare(
                &db,
                q,
                &ExecConfig {
                    seed: args.seed,
                    max_predictions: None,
                    ..Default::default()
                },
            )
            .map_err(|e| e.to_string())?,
        ),
        None => None,
    };
    let opts = ConvertOptions::default();
    let (mut graph, mut mapping) = build_graph(&db, &opts).map_err(|e| e.to_string())?;
    let mut cursor = GraphCursor::capture(&db);

    // Without --commit-window every --batch file folds into one atomic
    // batch (the legacy shape); with it each file stays its own batch so
    // the WAL can group up to N of them under a single fsync.
    let grouped = args.commit_window.is_some();
    let mut batches: Vec<RowBatch> = Vec::new();
    for (table, file) in &args.batches {
        if grouped || batches.is_empty() {
            batches.push(RowBatch::new());
        }
        let schema = db.table(table).map_err(|e| e.to_string())?.schema().clone();
        let f = std::fs::File::open(file).map_err(|e| format!("opening {file}: {e}"))?;
        let n = batches
            .last_mut()
            .expect("pushed above")
            .push_csv(table, &schema, std::io::BufReader::new(f))
            .map_err(|e| format!("reading {file}: {e}"))?;
        eprintln!("queued {n} rows for `{table}` from {file}");
    }

    let report = if let Some(window) = args.commit_window {
        let dd = data_dir
            .as_mut()
            .expect("--commit-window requires --data-dir (checked at parse)");
        dd.set_commit_window(CommitWindow::batches(window));
        let reports = dd
            .ingest_group(&mut db, batches, &args.policy)
            .map_err(|e| e.to_string())?;
        let mut total = relgraph::store::IngestReport::default();
        for (i, r) in reports.iter().enumerate() {
            let (table, file) = &args.batches[i];
            match r {
                Ok(r) => {
                    println!(
                        "  batch {i} ({table}={file}): {} accepted \
                         ({} coerced, {} late), {} quarantined",
                        r.accepted, r.coerced, r.late, r.quarantined
                    );
                    total.accepted += r.accepted;
                    total.coerced += r.coerced;
                    total.late += r.late;
                    total.quarantined += r.quarantined;
                }
                Err(e) => println!("  batch {i} ({table}={file}): rejected: {e}"),
            }
        }
        total
    } else {
        let batch = batches
            .pop()
            .expect("at least one --batch (checked at parse)");
        match data_dir.as_mut() {
            Some(dd) => dd
                .ingest(&mut db, batch, &args.policy)
                .map_err(|e| e.to_string())?,
            None => db.ingest(batch, &args.policy).map_err(|e| e.to_string())?,
        }
    };
    println!(
        "ingest: {} accepted ({} coerced, {} late), {} quarantined",
        report.accepted, report.coerced, report.late, report.quarantined
    );
    for q in db.quarantine() {
        println!(
            "  quarantined `{}` row {}: {}",
            q.table, q.batch_row, q.reason
        );
    }

    let stats = update_graph(&db, &mut graph, &mut mapping, &mut cursor, &opts)
        .map_err(|e| e.to_string())?;
    println!(
        "graph delta: +{} nodes, +{} edges across {} tables ({} edge types rebuilt)",
        stats.new_nodes, stats.new_edges, stats.tables_touched, stats.edge_types_rebuilt
    );

    if let Some(dir) = &args.save {
        save_database_dir(&db, dir).map_err(|e| e.to_string())?;
        println!("saved updated database to {dir}/");
    }

    if let Some(pq) = prepared {
        let outcome = pq
            .run_on_graph(&db, &graph, &mapping)
            .map_err(|e| e.to_string())?;
        relgraph::obs::emit_run_report(
            "relgraph-cli-ingest",
            &[
                (
                    "dataset",
                    args.demo
                        .as_deref()
                        .or(args.data.as_deref())
                        .or(args.data_dir.as_deref())
                        .unwrap_or("unknown"),
                ),
                ("task", &outcome.task.to_string()),
                ("model", &outcome.model.to_string()),
                ("seed", &args.seed.to_string()),
            ],
        );
        print_outcome(outcome, args.top);
    }
    Ok(())
}

struct AdminArgs {
    data_dir: String,
    data: Option<String>,
    demo: Option<String>,
    seed: u64,
}

fn admin_usage(cmd: &str) -> String {
    match cmd {
        "init" => "usage: relgraph init --data-dir DIR (--data CSVDIR | --demo NAME) [--seed N]"
            .to_string(),
        _ => format!("usage: relgraph {cmd} --data-dir DIR"),
    }
}

fn parse_admin_args(cmd: &str, it: impl Iterator<Item = String>) -> Result<AdminArgs, String> {
    let mut data_dir = None;
    let mut data = None;
    let mut demo = None;
    let mut seed = 7u64;
    let mut it = it;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", admin_usage(cmd)))
        };
        match flag.as_str() {
            "--data-dir" => data_dir = Some(value("--data-dir")?),
            "--data" => data = Some(value("--data")?),
            "--demo" => demo = Some(value("--demo")?),
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs a number".to_string())?
            }
            "--help" | "-h" => return Err(admin_usage(cmd)),
            other => return Err(format!("unknown flag `{other}`\n{}", admin_usage(cmd))),
        }
    }
    Ok(AdminArgs {
        data_dir: data_dir
            .ok_or_else(|| format!("--data-dir is required\n{}", admin_usage(cmd)))?,
        data,
        demo,
        seed,
    })
}

/// `relgraph init`: load a source database (CSV dir or demo generator) and
/// write it out as a fresh durable data directory: base columnar snapshot,
/// manifest, empty WAL.
fn run_init(it: impl Iterator<Item = String>) -> Result<(), String> {
    let args = parse_admin_args("init", it)?;
    relgraph::obs::init_from_env();
    let loader = Args {
        data: args.data.clone(),
        data_dir: None,
        demo: args.demo.clone(),
        query: None,
        explain_only: false,
        top: 10,
        seed: args.seed,
        export_demo: None,
    };
    let db = load(&loader)?;
    eprintln!("{}", db.summary());
    let root = std::path::Path::new(&args.data_dir);
    DataDir::create(root, &db).map_err(|e| e.to_string())?;
    println!(
        "initialised data dir {} (base generation 1, empty WAL)",
        root.display()
    );
    Ok(())
}

/// `relgraph compact`: fold the WAL into a fresh base snapshot so the next
/// open replays nothing.
fn run_compact(it: impl Iterator<Item = String>) -> Result<(), String> {
    let args = parse_admin_args("compact", it)?;
    relgraph::obs::init_from_env();
    let (mut dd, db) = open_data_dir(&args.data_dir)?;
    dd.compact(&db).map_err(|e| e.to_string())?;
    println!(
        "compacted {} to base generation {} (WAL reset)",
        args.data_dir,
        dd.manifest().generation
    );
    Ok(())
}

/// `relgraph recover`: open the data dir — which replays committed WAL
/// records and truncates any torn tail — and report exactly what happened.
fn run_recover(it: impl Iterator<Item = String>) -> Result<(), String> {
    let args = parse_admin_args("recover", it)?;
    relgraph::obs::init_from_env();
    let (dd, db, report) = DataDir::open(std::path::Path::new(&args.data_dir))
        .map_err(|e| format!("opening data dir {}: {e}", args.data_dir))?;
    println!("{}", report.summary());
    println!("{}", db.summary());
    println!(
        "base generation {}, next WAL sequence {}",
        dd.manifest().generation,
        dd.next_seq()
    );
    Ok(())
}

struct ServeArgs {
    data: Option<String>,
    data_dir: Option<String>,
    demo: Option<String>,
    query: Option<String>,
    seed: u64,
    cfg: ServeConfig,
    shards: usize,
    listen: Option<String>,
}

fn serve_usage() -> &'static str {
    "usage: relgraph serve (--data DIR | --data-dir DIR | --demo NAME) \
     --query 'PREDICT …' [--seed N] [--max-batch N] [--deadline-ms N] \
     [--pred-cache N] [--emb-cache N] [--l2-cache N] [--precision f64|f32|q8] \
     [--shards N] [--affinity] [--commit-window N] \
     [--listen HOST:PORT|SOCKET_PATH] \
     (--query is optional when --data-dir holds a warm snapshot; a warm \
     snapshot's stored precision wins over --precision)"
}

fn parse_serve_args(it: impl Iterator<Item = String>) -> Result<ServeArgs, String> {
    let mut data = None;
    let mut data_dir = None;
    let mut demo = None;
    let mut query = None;
    let mut seed = 7u64;
    let mut cfg = ServeConfig::default();
    let mut shards = 1usize;
    let mut listen = None;
    let mut it = it;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", serve_usage()))
        };
        let number = |name: &str, v: String| {
            v.parse::<u64>()
                .map_err(|_| format!("{name} needs a number"))
        };
        match flag.as_str() {
            "--data" => data = Some(value("--data")?),
            "--data-dir" => data_dir = Some(value("--data-dir")?),
            "--demo" => demo = Some(value("--demo")?),
            "--query" | "-q" => query = Some(value("--query")?),
            "--seed" => seed = number("--seed", value("--seed")?)?,
            "--max-batch" => cfg.max_batch = number("--max-batch", value("--max-batch")?)? as usize,
            "--deadline-ms" => {
                cfg.batch_deadline = std::time::Duration::from_millis(number(
                    "--deadline-ms",
                    value("--deadline-ms")?,
                )?)
            }
            "--pred-cache" => {
                cfg.prediction_cache = number("--pred-cache", value("--pred-cache")?)? as usize
            }
            "--emb-cache" => {
                cfg.embedding_cache = number("--emb-cache", value("--emb-cache")?)? as usize
            }
            "--precision" => {
                cfg.precision = value("--precision")?
                    .parse()
                    .map_err(|e| format!("--precision: {e}\n{}", serve_usage()))?
            }
            "--l2-cache" => cfg.l2_cache = number("--l2-cache", value("--l2-cache")?)? as usize,
            "--shards" => {
                shards = (number("--shards", value("--shards")?)? as usize).max(1);
            }
            "--affinity" => cfg.affinity = true,
            "--commit-window" => {
                cfg.commit_window =
                    (number("--commit-window", value("--commit-window")?)? as usize).max(1);
            }
            "--listen" => listen = Some(value("--listen")?),
            "--help" | "-h" => return Err(serve_usage().to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", serve_usage())),
        }
    }
    if query.is_none() && data_dir.is_none() {
        return Err(format!("--query is required\n{}", serve_usage()));
    }
    Ok(ServeArgs {
        data,
        data_dir,
        demo,
        query,
        seed,
        cfg,
        shards,
        listen,
    })
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Cold path: fit the query's model from scratch, reporting fit time and
/// backtest metrics on stderr.
fn fit_sharded(
    db: Database,
    query: &str,
    exec: &ExecConfig,
    args: &ServeArgs,
) -> Result<ShardedEngine, String> {
    eprintln!("fitting model…");
    let t_fit = std::time::Instant::now();
    let engine = ShardedEngine::fit(db, query, exec, args.cfg.clone(), args.shards)
        .map_err(|e| e.to_string())?;
    let mut fit_line = format!("model fitted in {:.1}s;", t_fit.elapsed().as_secs_f64());
    for (name, v) in engine.fit_metrics() {
        fit_line.push_str(&format!(" {name}={v:.4}"));
    }
    eprintln!("{fit_line}");
    Ok(engine)
}

/// With `--data-dir`: boot warm from the saved graph/model snapshots when
/// they exist and match the requested query (skipping featurization and
/// training entirely), otherwise fit cold and save snapshots so the next
/// boot is warm. Predictions are byte-identical either way.
///
/// The warm path is a *partial* base load (DESIGN.md §14.8): only key,
/// foreign-key, and timestamp columns are materialized from the columnar
/// base — features ride in the graph snapshot — so the full database is
/// never opened unless the snapshot turns out to be unusable.
fn serve_from_data_dir(
    dir: &str,
    args: &ServeArgs,
    exec: &ExecConfig,
) -> Result<ShardedEngine, String> {
    use relgraph::serve::persist::{GRAPH_SNAPSHOT_FILE, MODEL_SNAPSHOT_FILE};

    let root = std::path::Path::new(dir);
    let snaps = DataDir::snapshots_path(root);
    let model_snap = snaps.join(MODEL_SNAPSHOT_FILE);
    if snaps.join(GRAPH_SNAPSHOT_FILE).exists() && model_snap.exists() {
        // A differing --query invalidates the snapshot; peek at the stored
        // query text before committing to the warm path.
        let usable = match relgraph::serve::load_model(&model_snap) {
            Ok(snap) => {
                let same = args.query.as_deref().is_none_or(|q| q == snap.query_text);
                if !same {
                    eprintln!("stored snapshot is for a different query; refitting");
                } else if snap.precision != args.cfg.precision {
                    eprintln!(
                        "stored snapshot was saved at precision {}; \
                         serving at {} (stored precision wins on warm boots)",
                        snap.precision, snap.precision
                    );
                }
                same
            }
            Err(e) => {
                eprintln!("warm snapshot unreadable ({e}); refitting");
                false
            }
        };
        if usable {
            let t = std::time::Instant::now();
            match relgraph::serve::warm_sharded_partial(root, exec, args.cfg.clone(), args.shards) {
                Ok(boot) => {
                    if boot.recovery.replayed > 0 || boot.recovery.torn.is_some() {
                        eprintln!("{dir}: {}", boot.recovery.summary());
                    }
                    eprintln!("{}", boot.engine.snapshot().db.summary());
                    let mut line = format!(
                        "warm boot in {:.2}s (caught up +{} nodes, +{} edges; \
                         deferred {} column(s) / {} byte(s) across {} table(s));",
                        t.elapsed().as_secs_f64(),
                        boot.report.catch_up.new_nodes,
                        boot.report.catch_up.new_edges,
                        boot.partial.deferred_columns,
                        boot.partial.deferred_bytes,
                        boot.partial.partial_tables,
                    );
                    for (name, v) in &boot.report.metrics {
                        line.push_str(&format!(" {name}={v:.4}"));
                    }
                    eprintln!("{line}");
                    eprintln!("query: {}", boot.report.query_text);
                    return Ok(boot.engine);
                }
                Err(e) => {
                    eprintln!("warm boot failed ({e}); refitting from scratch");
                }
            }
        }
    }
    // Cold (or fallback) path: a full materialized open, fit, and snapshot
    // save so the next boot takes the partial warm path above.
    let (dd, db) = open_data_dir(dir)?;
    eprintln!("{}", db.summary());
    let query = args.query.clone().ok_or_else(|| {
        format!(
            "--query is required (no usable warm snapshot in the data dir)\n{}",
            serve_usage()
        )
    })?;
    let engine = fit_sharded(db, &query, exec, args)?;
    match engine.save_warm_start(&dd.snapshots_dir(), &query) {
        Ok(bytes) => eprintln!(
            "saved warm-start snapshots to {} ({bytes} bytes)",
            snaps.display()
        ),
        Err(e) => eprintln!("warning: failed to save warm-start snapshots: {e}"),
    }
    Ok(engine)
}

/// `relgraph serve`: fit the query once, then answer JSONL prediction
/// requests from stdin — micro-batched, cache-warm, one response line per
/// request line (malformed lines included).
fn run_serve(it: impl Iterator<Item = String>) -> Result<(), String> {
    use std::io::{BufRead, Write};

    let args = parse_serve_args(it)?;
    relgraph::obs::init_from_env();
    let exec = ExecConfig {
        seed: args.seed,
        max_predictions: None,
        ..Default::default()
    };

    let engine = if let Some(dir) = &args.data_dir {
        if args.data.is_some() || args.demo.is_some() {
            return Err(format!(
                "--data-dir cannot be combined with --data/--demo\n{}",
                serve_usage()
            ));
        }
        serve_from_data_dir(dir, &args, &exec)?
    } else {
        let loader = Args {
            data: args.data.clone(),
            data_dir: None,
            demo: args.demo.clone(),
            query: None,
            explain_only: false,
            top: 10,
            seed: args.seed,
            export_demo: None,
        };
        let db = load(&loader)?;
        eprintln!("{}", db.summary());
        let query = args
            .query
            .as_deref()
            .ok_or_else(|| format!("--query is required\n{}", serve_usage()))?;
        fit_sharded(db, query, &exec, &args)?
    };

    if let Some(addr) = &args.listen {
        // Socket mode: concurrent clients, one handler thread each, all
        // funnelled into the same shard workers. Runs until killed.
        let listener = relgraph::serve::bind(addr).map_err(|e| e.to_string())?;
        eprintln!(
            "serving on {} ({} shard(s)); one JSON request per line",
            listener.local_addr(),
            engine.shards()
        );
        let stop = std::sync::atomic::AtomicBool::new(false);
        listener.run(&engine, &stop).map_err(|e| e.to_string())?;
        engine.publish_stats();
        return Ok(());
    }

    eprintln!(
        "serving on stdin (max batch {}, deadline {:?}, {} shard(s)); \
         one JSON request per line",
        args.cfg.max_batch,
        args.cfg.batch_deadline,
        engine.shards()
    );

    // Reader thread feeds the micro-batcher; the main thread serves.
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    let reader = std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = match line {
                Ok(l) => l,
                Err(_) => break,
            };
            if line.trim().is_empty() {
                continue;
            }
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    let batcher = MicroBatcher::new(rx, args.cfg.max_batch, args.cfg.batch_deadline);

    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut latencies_us: Vec<f64> = Vec::new();
    let mut occupancy_sum = 0usize;
    let mut batches = 0usize;
    let mut responses = 0usize;
    while let Some(lines) = batcher.next_batch() {
        let t0 = std::time::Instant::now();
        // Parse every line; score the parseable ones as one fused batch.
        let parsed: Vec<Result<serve_protocol::Request, String>> = lines
            .iter()
            .map(|l| serve_protocol::parse_request(l))
            .collect();
        let keys: Vec<relgraph::store::Value> = parsed
            .iter()
            .filter_map(|r| r.as_ref().ok().map(|req| req.entity.clone()))
            .collect();
        let scored = engine.predict_batch_keys(&keys);
        let mut scored_it = scored.into_iter();
        for (raw, p) in lines.iter().zip(&parsed) {
            let line = match p {
                Ok(req) => match scored_it.next().expect("one result per parsed request") {
                    Ok(pred) => serve_protocol::response_ok(req.id, pred),
                    Err(e) => serve_protocol::response_err(Some(req.id), &e.to_string()),
                },
                // Best-effort id so the client can still correlate.
                Err(msg) => serve_protocol::response_err(serve_protocol::recover_id(raw), msg),
            };
            writeln!(out, "{line}").map_err(|e| e.to_string())?;
            responses += 1;
        }
        out.flush().map_err(|e| e.to_string())?;
        let us = t0.elapsed().as_secs_f64() * 1e6;
        let per_request = us / lines.len() as f64;
        for _ in 0..lines.len() {
            latencies_us.push(per_request);
            relgraph::obs::observe("serve.latency_us", per_request);
        }
        occupancy_sum += lines.len();
        batches += 1;
    }
    reader.join().map_err(|_| "stdin reader panicked")?;

    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let stats = engine.stats();
    eprintln!(
        "served {responses} request(s) in {batches} batch(es) \
         (mean occupancy {:.1})",
        if batches > 0 {
            occupancy_sum as f64 / batches as f64
        } else {
            0.0
        }
    );
    eprintln!(
        "latency p50 {:.0} us, p99 {:.0} us; prediction cache hit rate {}, \
         embedding cache hit rate {}",
        percentile(&latencies_us, 50.0),
        percentile(&latencies_us, 99.0),
        stats
            .prediction_hit_rate()
            .map(|r| format!("{:.1}%", r * 100.0))
            .unwrap_or_else(|| "n/a".to_string()),
        stats
            .embedding_hit_rate()
            .map(|r| format!("{:.1}%", r * 100.0))
            .unwrap_or_else(|| "n/a".to_string()),
    );
    engine.publish_stats();
    relgraph::obs::emit_run_report(
        "relgraph-serve",
        &[
            (
                "dataset",
                args.demo
                    .as_deref()
                    .or(args.data.as_deref())
                    .or(args.data_dir.as_deref())
                    .unwrap_or("unknown"),
            ),
            ("seed", &args.seed.to_string()),
        ],
    );
    Ok(())
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1).peekable();
    let result = match argv.peek().map(String::as_str) {
        Some("ingest") => {
            argv.next();
            run_ingest(argv)
        }
        Some("serve") => {
            argv.next();
            run_serve(argv)
        }
        Some("init") => {
            argv.next();
            run_init(argv)
        }
        Some("compact") => {
            argv.next();
            run_compact(argv)
        }
        Some("recover") => {
            argv.next();
            run_recover(argv)
        }
        _ => run(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("relgraph: {msg}");
            ExitCode::FAILURE
        }
    }
}
