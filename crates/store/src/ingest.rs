//! Streaming ingest: validated, policy-driven batch appends.
//!
//! A [`RowBatch`] is an ordered set of rows destined for one or more
//! tables. [`Database::ingest`] validates the whole batch against the
//! current database state *before* applying anything, so a batch rejected
//! by a [`PolicyAction::Reject`] policy leaves the database untouched.
//!
//! Four violation categories are distinguished, each with its own
//! configurable [`PolicyAction`] in the [`IngestPolicy`]:
//!
//! | category | Reject | Quarantine | Coerce |
//! |---|---|---|---|
//! | type / arity mismatch | abort batch | set row aside | convert the cell (`42` → `42.0`, `"7"` → `7`, …); quarantine if impossible |
//! | FK violation | abort batch | set row aside | NULL the FK cell if nullable; quarantine otherwise |
//! | out-of-order timestamp | abort batch | set row aside | accept as-is (the temporal index re-sorts); counted as *late* |
//! | duplicate primary key | abort batch | set row aside | quarantine (a key collision cannot be repaired) |
//!
//! Quarantined rows are retrievable for inspection via
//! [`Database::quarantine`] and can be drained with
//! [`Database::take_quarantine`] (e.g. to repair and re-ingest).
//!
//! Intra-batch references work in arrival order: a row may reference the
//! primary key of an *earlier* row in the same batch (order parents before
//! children).

use std::collections::{HashMap, HashSet};

use relgraph_obs as obs;

use crate::database::Database;
use crate::error::{StoreError, StoreResult};
use crate::row::Row;
use crate::value::{DataType, Timestamp, Value};

/// What to do when a batch row violates one of the validation checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyAction {
    /// Abort the whole batch with an error; nothing is applied.
    Reject,
    /// Set the offending row aside (retrievable via
    /// [`Database::quarantine`]) and continue with the rest of the batch.
    Quarantine,
    /// Repair the row if possible (category-specific, see the module docs);
    /// fall back to quarantine when no repair exists.
    Coerce,
}

impl std::str::FromStr for PolicyAction {
    type Err = String;

    /// Parse from a CLI-style string (`reject` | `quarantine` | `coerce`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "reject" => Ok(PolicyAction::Reject),
            "quarantine" => Ok(PolicyAction::Quarantine),
            "coerce" => Ok(PolicyAction::Coerce),
            other => Err(format!(
                "unknown policy `{other}` (reject|quarantine|coerce)"
            )),
        }
    }
}

/// Per-violation-category actions for one ingest call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestPolicy {
    /// Arity mismatches, cell-type mismatches, NULLs in non-nullable
    /// columns and NULL primary keys.
    pub on_type_mismatch: PolicyAction,
    /// Foreign-key cells with no matching referenced row (existing or
    /// earlier in the batch).
    pub on_fk_violation: PolicyAction,
    /// Rows whose time-column value is older than the table's current
    /// watermark (its maximum ingested timestamp).
    pub on_out_of_order: PolicyAction,
    /// Primary keys already present in the table or earlier in the batch.
    pub on_duplicate_key: PolicyAction,
}

impl IngestPolicy {
    /// Every category aborts the batch (the default; strictest).
    pub fn reject_all() -> Self {
        IngestPolicy {
            on_type_mismatch: PolicyAction::Reject,
            on_fk_violation: PolicyAction::Reject,
            on_out_of_order: PolicyAction::Reject,
            on_duplicate_key: PolicyAction::Reject,
        }
    }

    /// Every category quarantines the offending row.
    pub fn quarantine_all() -> Self {
        IngestPolicy {
            on_type_mismatch: PolicyAction::Quarantine,
            on_fk_violation: PolicyAction::Quarantine,
            on_out_of_order: PolicyAction::Quarantine,
            on_duplicate_key: PolicyAction::Quarantine,
        }
    }

    /// Every category tries to repair (falling back to quarantine).
    pub fn coerce_all() -> Self {
        IngestPolicy {
            on_type_mismatch: PolicyAction::Coerce,
            on_fk_violation: PolicyAction::Coerce,
            on_out_of_order: PolicyAction::Coerce,
            on_duplicate_key: PolicyAction::Coerce,
        }
    }
}

impl Default for IngestPolicy {
    fn default() -> Self {
        IngestPolicy::reject_all()
    }
}

/// An ordered set of rows to append, possibly spanning several tables.
#[derive(Debug, Clone, Default)]
pub struct RowBatch {
    rows: Vec<(String, Row)>,
}

impl RowBatch {
    /// Empty batch.
    pub fn new() -> Self {
        RowBatch::default()
    }

    /// Append a row destined for `table` (chainable).
    pub fn with(mut self, table: impl Into<String>, row: Row) -> Self {
        self.rows.push((table.into(), row));
        self
    }

    /// Append a row destined for `table`.
    pub fn push(&mut self, table: impl Into<String>, row: Row) {
        self.rows.push((table.into(), row));
    }

    /// Number of rows in the batch.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The `(table, row)` pairs in arrival order.
    pub fn rows(&self) -> &[(String, Row)] {
        &self.rows
    }

    /// Append rows parsed *leniently* from CSV (see
    /// [`crate::csv::read_csv_batch`]): fields that fail to parse as their
    /// column type are kept as raw text so the ingest policy can coerce or
    /// quarantine them. Returns the number of rows appended.
    pub fn push_csv<R: std::io::BufRead>(
        &mut self,
        table: &str,
        schema: &crate::schema::TableSchema,
        reader: R,
    ) -> StoreResult<usize> {
        let rows = crate::csv::read_csv_batch(schema, reader)?;
        let n = rows.len();
        for row in rows {
            self.rows.push((table.to_string(), row));
        }
        Ok(n)
    }
}

/// A row set aside by a [`PolicyAction::Quarantine`] (or a failed coerce).
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedRow {
    /// Destination table.
    pub table: String,
    /// Index of the row within its batch.
    pub batch_row: usize,
    /// The offending row, as submitted (before any coercion).
    pub row: Row,
    /// Human-readable reason.
    pub reason: String,
}

/// Outcome of one [`Database::ingest`] call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestReport {
    /// Rows applied to their tables.
    pub accepted: usize,
    /// Accepted rows with at least one coerced cell.
    pub coerced: usize,
    /// Accepted rows older than their table's watermark (out-of-order
    /// under [`PolicyAction::Coerce`]).
    pub late: usize,
    /// Rows set aside; details live in [`Database::quarantine`].
    pub quarantined: usize,
}

impl IngestReport {
    /// Total rows the batch contained.
    pub fn total(&self) -> usize {
        self.accepted + self.quarantined
    }
}

/// Attempt a lossless-ish conversion of `v` into type `ty`.
fn coerce_value(v: &Value, ty: DataType) -> Option<Value> {
    match (v, ty) {
        (Value::Int(i), DataType::Float) => Some(Value::Float(*i as f64)),
        (Value::Int(i), DataType::Timestamp) => Some(Value::Timestamp(*i)),
        (Value::Int(i), DataType::Bool) => match i {
            0 => Some(Value::Bool(false)),
            1 => Some(Value::Bool(true)),
            _ => None,
        },
        (Value::Timestamp(t), DataType::Int) => Some(Value::Int(*t)),
        (Value::Timestamp(t), DataType::Float) => Some(Value::Float(*t as f64)),
        (Value::Float(f), DataType::Int) if f.fract() == 0.0 && f.abs() < 9.0e18 => {
            Some(Value::Int(*f as i64))
        }
        (Value::Float(f), DataType::Timestamp) if f.fract() == 0.0 && f.abs() < 9.0e18 => {
            Some(Value::Timestamp(*f as i64))
        }
        (Value::Bool(b), DataType::Int) => Some(Value::Int(i64::from(*b))),
        (Value::Text(s), DataType::Int) => s.trim().parse().ok().map(Value::Int),
        (Value::Text(s), DataType::Float) => s.trim().parse().ok().map(Value::Float),
        (Value::Text(s), DataType::Timestamp) => s.trim().parse().ok().map(Value::Timestamp),
        (Value::Text(s), DataType::Bool) => match s.trim() {
            "true" | "TRUE" | "1" | "t" => Some(Value::Bool(true)),
            "false" | "FALSE" | "0" | "f" => Some(Value::Bool(false)),
            _ => None,
        },
        (v, DataType::Text) if !v.is_null() => Some(Value::Text(v.to_string())),
        _ => None,
    }
}

/// Rows staged for one table while the batch validates.
#[derive(Default)]
struct Staged {
    rows: Vec<Row>,
    keys: HashSet<String>,
    /// Highest timestamp staged so far (tables with a time column only).
    watermark: Option<Timestamp>,
}

impl Database {
    /// Validate `batch` under `policy` and append every surviving row.
    ///
    /// Validation runs over the whole batch *first*; the database is only
    /// mutated if no check demanded [`PolicyAction::Reject`], so a rejected
    /// batch is a no-op. Quarantined rows are recorded on the database
    /// ([`Database::quarantine`]) and counted in the returned
    /// [`IngestReport`].
    pub fn ingest(&mut self, batch: RowBatch, policy: &IngestPolicy) -> StoreResult<IngestReport> {
        let _span = obs::span("store.ingest");
        // Per-table watermark of rows already in the database, computed at
        // most once per table (a time-span scan is O(rows)).
        let mut existing_watermark: HashMap<String, Option<Timestamp>> = HashMap::new();
        let mut staged: HashMap<String, Staged> = HashMap::new();
        // Tables in batch-arrival order so the apply phase is deterministic.
        let mut staged_order: Vec<String> = Vec::new();
        let mut quarantined: Vec<QuarantinedRow> = Vec::new();
        let mut report = IngestReport::default();

        'rows: for (batch_row, (table_name, row)) in batch.rows.iter().enumerate() {
            // Unknown destination tables are always a hard error: no policy
            // can route the row anywhere.
            let table = self.table(table_name)?;
            // So are partially-loaded destinations: their deferred columns
            // hold placeholder NULLs, and growth would re-derive state
            // (features, statistics) from fabricated values. The whole
            // batch is refused before anything is staged.
            if table.is_partially_loaded() {
                return Err(StoreError::PartiallyLoaded {
                    table: table_name.clone(),
                    deferred: table.deferred_columns().to_vec(),
                });
            }
            let schema = table.schema().clone();
            let mut row = row.clone();
            let mut cell_coerced = false;
            let mut late = false;

            // Resolve one violation: Reject aborts the whole ingest call,
            // Quarantine sets the row aside (continue 'rows), Coerce is
            // handled by the caller before invoking this.
            macro_rules! offend {
                ($action:expr, $reason:expr) => {{
                    match $action {
                        PolicyAction::Reject => {
                            return Err(StoreError::BatchRejected {
                                table: table_name.clone(),
                                batch_row,
                                reason: $reason,
                            })
                        }
                        _ => {
                            quarantined.push(QuarantinedRow {
                                table: table_name.clone(),
                                batch_row,
                                row: batch.rows[batch_row].1.clone(),
                                reason: $reason,
                            });
                            continue 'rows;
                        }
                    }
                }};
            }

            // -- arity (never coercible).
            if row.arity() != schema.arity() {
                offend!(
                    policy.on_type_mismatch,
                    format!(
                        "arity mismatch: expected {} values, got {}",
                        schema.arity(),
                        row.arity()
                    )
                );
            }

            // -- cell types and nullability.
            let pk_index = schema.primary_key_index();
            for (i, def) in schema.columns().iter().enumerate() {
                let v = &row[i];
                if !v.conforms_to(def.data_type) {
                    let fixed = match policy.on_type_mismatch {
                        PolicyAction::Coerce => coerce_value(v, def.data_type),
                        _ => None,
                    };
                    match fixed {
                        Some(fv) => {
                            row.set(i, fv);
                            cell_coerced = true;
                        }
                        None => offend!(
                            policy.on_type_mismatch,
                            format!(
                                "type mismatch in column `{}`: expected {}, got {}",
                                def.name,
                                def.data_type,
                                v.data_type()
                                    .map_or_else(|| "NULL".to_string(), |t| t.to_string())
                            )
                        ),
                    }
                }
                if row[i].is_null() && !def.nullable && Some(i) != pk_index {
                    offend!(
                        policy.on_type_mismatch,
                        format!("NULL in non-nullable column `{}`", def.name)
                    );
                }
            }

            // -- primary key: NULL and duplicates (vs table and vs batch).
            if let Some(pk) = pk_index {
                let key = &row[pk];
                if key.is_null() {
                    offend!(policy.on_type_mismatch, "NULL primary key".to_string());
                }
                let gk = key.group_key();
                let dup_in_table = table.row_by_key(key).is_some();
                let dup_in_batch = staged
                    .get(table_name.as_str())
                    .is_some_and(|s| s.keys.contains(&gk));
                if dup_in_table || dup_in_batch {
                    // A key collision has no repair; Coerce degrades to
                    // quarantine.
                    offend!(
                        policy.on_duplicate_key,
                        format!("duplicate primary key `{key}`")
                    );
                }
            }

            // -- foreign keys: the referenced row must exist already or be
            // staged earlier in this batch.
            for fk in schema.foreign_keys() {
                let ci = schema
                    .column_index(&fk.column)
                    .expect("schema guarantees the FK column exists");
                let key = &row[ci];
                if key.is_null() {
                    continue;
                }
                let target = self.table(&fk.referenced_table)?;
                let exists = target.row_by_key(key).is_some()
                    || staged
                        .get(fk.referenced_table.as_str())
                        .is_some_and(|s| s.keys.contains(&key.group_key()));
                if exists {
                    continue;
                }
                let nullable = schema.columns().get(ci).is_some_and(|d| d.nullable);
                if policy.on_fk_violation == PolicyAction::Coerce && nullable {
                    row.set(ci, Value::Null);
                    cell_coerced = true;
                    continue;
                }
                offend!(
                    policy.on_fk_violation,
                    format!(
                        "foreign key `{}` = `{key}` has no match in `{}`",
                        fk.column, fk.referenced_table
                    )
                );
            }

            // -- out-of-order timestamps, against the table's watermark
            // (existing rows plus rows staged so far).
            if let Some(tc) = schema.time_column_index() {
                if let Some(ts) = row[tc].as_timestamp() {
                    let existing = *existing_watermark
                        .entry(table_name.clone())
                        .or_insert_with(|| table.time_span().map(|(_, hi)| hi));
                    let staged_hi = staged.get(table_name.as_str()).and_then(|s| s.watermark);
                    let watermark = match (existing, staged_hi) {
                        (Some(a), Some(b)) => Some(a.max(b)),
                        (a, b) => a.or(b),
                    };
                    if watermark.is_some_and(|w| ts < w) {
                        match policy.on_out_of_order {
                            // Coerce = accept the late row as-is; the
                            // temporal index re-sorts on rebuild.
                            PolicyAction::Coerce => late = true,
                            action => offend!(
                                action,
                                format!(
                                    "out-of-order timestamp {ts} (watermark {})",
                                    watermark.unwrap()
                                )
                            ),
                        }
                    }
                }
            }

            // -- stage the validated row.
            if !staged.contains_key(table_name.as_str()) {
                staged_order.push(table_name.clone());
            }
            let entry = staged.entry(table_name.clone()).or_default();
            if let Some(pk) = pk_index {
                entry.keys.insert(row[pk].group_key());
            }
            if let Some(tc) = schema.time_column_index() {
                if let Some(ts) = row[tc].as_timestamp() {
                    entry.watermark = Some(entry.watermark.map_or(ts, |w| w.max(ts)));
                }
            }
            entry.rows.push(row);
            report.accepted += 1;
            report.coerced += usize::from(cell_coerced);
            report.late += usize::from(late);
        }

        // Apply phase: every staged row was fully validated, so inserts
        // cannot fail; an error here would be a validator bug and is
        // propagated as-is.
        for table_name in &staged_order {
            let rows = staged.remove(table_name.as_str()).expect("staged");
            for row in rows.rows {
                self.insert(table_name, row)?;
            }
        }
        report.quarantined = quarantined.len();
        self.push_quarantine(quarantined);

        if obs::enabled() {
            obs::add("ingest.rows_accepted", report.accepted as u64);
            obs::add("ingest.rows_quarantined", report.quarantined as u64);
            obs::add("ingest.rows_coerced", report.coerced as u64);
            obs::add("ingest.rows_late", report.late as u64);
            obs::add("ingest.batches", 1);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;

    fn shop() -> Database {
        let mut db = Database::new("shop");
        db.create_table(
            TableSchema::builder("customers")
                .column("customer_id", DataType::Int)
                .column("signup", DataType::Timestamp)
                .primary_key("customer_id")
                .time_column("signup")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("orders")
                .column("order_id", DataType::Int)
                .nullable_column("customer_id", DataType::Int)
                .column("amount", DataType::Float)
                .column("placed_at", DataType::Timestamp)
                .primary_key("order_id")
                .time_column("placed_at")
                .foreign_key("customer_id", "customers")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert(
            "customers",
            Row::new().push(1i64).push(Value::Timestamp(100)),
        )
        .unwrap();
        db.insert(
            "orders",
            Row::new()
                .push(10i64)
                .push(1i64)
                .push(5.0)
                .push(Value::Timestamp(150)),
        )
        .unwrap();
        db
    }

    fn order(id: i64, cust: i64, t: i64) -> Row {
        Row::new()
            .push(id)
            .push(cust)
            .push(1.0)
            .push(Value::Timestamp(t))
    }

    #[test]
    fn clean_batch_is_applied() {
        let mut db = shop();
        let batch = RowBatch::new()
            .with(
                "customers",
                Row::new().push(2i64).push(Value::Timestamp(200)),
            )
            .with("orders", order(11, 2, 250));
        let r = db.ingest(batch, &IngestPolicy::default()).unwrap();
        assert_eq!(r.accepted, 2);
        assert_eq!(r.quarantined, 0);
        assert_eq!(db.table("orders").unwrap().len(), 2);
        assert_eq!(db.validate().unwrap(), 2);
    }

    #[test]
    fn reject_policy_is_atomic() {
        let mut db = shop();
        let batch = RowBatch::new()
            .with("orders", order(11, 1, 200))
            .with("orders", order(12, 99, 300)); // dangling FK
        let err = db.ingest(batch, &IngestPolicy::default()).unwrap_err();
        assert!(matches!(
            err,
            StoreError::BatchRejected { batch_row: 1, .. }
        ));
        // Nothing applied, including the valid first row.
        assert_eq!(db.table("orders").unwrap().len(), 1);
    }

    #[test]
    fn quarantine_keeps_rest_of_batch() {
        let mut db = shop();
        let batch = RowBatch::new()
            .with("orders", order(11, 99, 200)) // dangling FK
            .with("orders", order(12, 1, 300));
        let r = db.ingest(batch, &IngestPolicy::quarantine_all()).unwrap();
        assert_eq!(r.accepted, 1);
        assert_eq!(r.quarantined, 1);
        assert_eq!(db.table("orders").unwrap().len(), 2);
        assert_eq!(db.quarantine().len(), 1);
        assert_eq!(db.quarantine()[0].batch_row, 0);
        assert!(db.quarantine()[0].reason.contains("foreign key"));
        let drained = db.take_quarantine();
        assert_eq!(drained.len(), 1);
        assert!(db.quarantine().is_empty());
    }

    #[test]
    fn coerce_fixes_cell_types() {
        let mut db = shop();
        // amount as Int, placed_at as Int: both coercible.
        let batch = RowBatch::new().with(
            "orders",
            Row::new().push(11i64).push(1i64).push(7i64).push(200i64),
        );
        let r = db.ingest(batch, &IngestPolicy::coerce_all()).unwrap();
        assert_eq!((r.accepted, r.coerced, r.quarantined), (1, 1, 0));
        let t = db.table("orders").unwrap();
        assert_eq!(t.value_by_name(1, "amount").unwrap(), Value::Float(7.0));
        assert_eq!(t.row_timestamp(1), Some(200));
    }

    #[test]
    fn coerce_nulls_dangling_nullable_fk() {
        let mut db = shop();
        let batch = RowBatch::new().with("orders", order(11, 99, 200));
        let r = db.ingest(batch, &IngestPolicy::coerce_all()).unwrap();
        assert_eq!((r.accepted, r.coerced), (1, 1));
        assert_eq!(
            db.table("orders")
                .unwrap()
                .value_by_name(1, "customer_id")
                .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn out_of_order_policies() {
        // Watermark of orders is 150.
        let mut db = shop();
        let err = db
            .ingest(
                RowBatch::new().with("orders", order(11, 1, 120)),
                &IngestPolicy::default(),
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::BatchRejected { .. }));

        let mut db = shop();
        let r = db
            .ingest(
                RowBatch::new().with("orders", order(11, 1, 120)),
                &IngestPolicy::quarantine_all(),
            )
            .unwrap();
        assert_eq!((r.accepted, r.quarantined), (0, 1));

        let mut db = shop();
        let r = db
            .ingest(
                RowBatch::new().with("orders", order(11, 1, 120)),
                &IngestPolicy::coerce_all(),
            )
            .unwrap();
        assert_eq!((r.accepted, r.late), (1, 1));
        // The late row keeps its original timestamp.
        assert_eq!(db.table("orders").unwrap().row_timestamp(1), Some(120));
    }

    #[test]
    fn duplicate_keys_detected_across_table_and_batch() {
        let mut db = shop();
        let batch = RowBatch::new()
            .with("orders", order(10, 1, 200)) // dup vs table
            .with("orders", order(11, 1, 210))
            .with("orders", order(11, 1, 220)); // dup vs batch
        let r = db.ingest(batch, &IngestPolicy::quarantine_all()).unwrap();
        assert_eq!((r.accepted, r.quarantined), (1, 2));
        assert_eq!(db.table("orders").unwrap().len(), 2);
    }

    #[test]
    fn intra_batch_fk_resolution_is_order_sensitive() {
        let mut db = shop();
        // Child before parent: quarantined under quarantine_all.
        let batch = RowBatch::new().with("orders", order(11, 2, 200)).with(
            "customers",
            Row::new().push(2i64).push(Value::Timestamp(180)),
        );
        let r = db.ingest(batch, &IngestPolicy::quarantine_all()).unwrap();
        assert_eq!((r.accepted, r.quarantined), (1, 1));
        // Parent before child: both accepted.
        let mut db = shop();
        let batch = RowBatch::new()
            .with(
                "customers",
                Row::new().push(2i64).push(Value::Timestamp(180)),
            )
            .with("orders", order(11, 2, 200));
        let r = db.ingest(batch, &IngestPolicy::quarantine_all()).unwrap();
        assert_eq!((r.accepted, r.quarantined), (2, 0));
    }

    #[test]
    fn unknown_table_is_always_an_error() {
        let mut db = shop();
        let batch = RowBatch::new().with("nope", Row::new().push(1i64));
        assert!(matches!(
            db.ingest(batch, &IngestPolicy::coerce_all()),
            Err(StoreError::UnknownTable(_))
        ));
    }

    #[test]
    fn arity_mismatch_cannot_be_coerced() {
        let mut db = shop();
        let batch = RowBatch::new().with("orders", Row::new().push(11i64));
        let r = db.ingest(batch, &IngestPolicy::coerce_all()).unwrap();
        assert_eq!((r.accepted, r.quarantined), (0, 1));
        assert!(db.quarantine()[0].reason.contains("arity"));
    }
}
