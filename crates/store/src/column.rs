//! Typed columnar storage.
//!
//! Each [`Column`] stores a single table column as a dense typed vector plus
//! a validity mask, so scans touch contiguous memory instead of boxed values.

use crate::value::{DataType, Timestamp, Value};

/// A typed column of cells with a validity (non-null) mask.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    Int {
        data: Vec<i64>,
        valid: Vec<bool>,
    },
    Float {
        data: Vec<f64>,
        valid: Vec<bool>,
    },
    Text {
        data: Vec<String>,
        valid: Vec<bool>,
    },
    Bool {
        data: Vec<bool>,
        valid: Vec<bool>,
    },
    Timestamp {
        data: Vec<Timestamp>,
        valid: Vec<bool>,
    },
}

impl Column {
    /// An empty column of the given type.
    pub fn new(ty: DataType) -> Self {
        match ty {
            DataType::Int => Column::Int {
                data: Vec::new(),
                valid: Vec::new(),
            },
            DataType::Float => Column::Float {
                data: Vec::new(),
                valid: Vec::new(),
            },
            DataType::Text => Column::Text {
                data: Vec::new(),
                valid: Vec::new(),
            },
            DataType::Bool => Column::Bool {
                data: Vec::new(),
                valid: Vec::new(),
            },
            DataType::Timestamp => Column::Timestamp {
                data: Vec::new(),
                valid: Vec::new(),
            },
        }
    }

    /// An empty column with pre-reserved capacity.
    pub fn with_capacity(ty: DataType, cap: usize) -> Self {
        match ty {
            DataType::Int => Column::Int {
                data: Vec::with_capacity(cap),
                valid: Vec::with_capacity(cap),
            },
            DataType::Float => Column::Float {
                data: Vec::with_capacity(cap),
                valid: Vec::with_capacity(cap),
            },
            DataType::Text => Column::Text {
                data: Vec::with_capacity(cap),
                valid: Vec::with_capacity(cap),
            },
            DataType::Bool => Column::Bool {
                data: Vec::with_capacity(cap),
                valid: Vec::with_capacity(cap),
            },
            DataType::Timestamp => Column::Timestamp {
                data: Vec::with_capacity(cap),
                valid: Vec::with_capacity(cap),
            },
        }
    }

    /// A column of `len` NULL cells — the deferred placeholder a partial
    /// base load installs for columns it skipped (see
    /// `persist::snapshot::read_base_columns`). Shape-compatible with the
    /// real column (same type, same length), every cell invalid.
    pub fn nulls(ty: DataType, len: usize) -> Self {
        match ty {
            DataType::Int => Column::Int {
                data: vec![0; len],
                valid: vec![false; len],
            },
            DataType::Float => Column::Float {
                data: vec![0.0; len],
                valid: vec![false; len],
            },
            DataType::Text => Column::Text {
                data: vec![String::new(); len],
                valid: vec![false; len],
            },
            DataType::Bool => Column::Bool {
                data: vec![false; len],
                valid: vec![false; len],
            },
            DataType::Timestamp => Column::Timestamp {
                data: vec![0; len],
                valid: vec![false; len],
            },
        }
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int { .. } => DataType::Int,
            Column::Float { .. } => DataType::Float,
            Column::Text { .. } => DataType::Text,
            Column::Bool { .. } => DataType::Bool,
            Column::Timestamp { .. } => DataType::Timestamp,
        }
    }

    /// Number of cells (including nulls).
    pub fn len(&self) -> usize {
        match self {
            Column::Int { valid, .. }
            | Column::Float { valid, .. }
            | Column::Text { valid, .. }
            | Column::Bool { valid, .. }
            | Column::Timestamp { valid, .. } => valid.len(),
        }
    }

    /// True if the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if the cell at `i` is non-null. Out-of-range indices are null.
    pub fn is_valid(&self, i: usize) -> bool {
        match self {
            Column::Int { valid, .. }
            | Column::Float { valid, .. }
            | Column::Text { valid, .. }
            | Column::Bool { valid, .. }
            | Column::Timestamp { valid, .. } => valid.get(i).copied().unwrap_or(false),
        }
    }

    /// Append a value. The caller must have checked type conformance;
    /// a mismatched value is recorded as NULL (this is a programming error
    /// guarded upstream by [`crate::table::Table::insert`]).
    pub fn push(&mut self, v: &Value) {
        match (self, v) {
            (Column::Int { data, valid }, Value::Int(x)) => {
                data.push(*x);
                valid.push(true);
            }
            (Column::Float { data, valid }, Value::Float(x)) => {
                data.push(*x);
                valid.push(true);
            }
            (Column::Text { data, valid }, Value::Text(x)) => {
                data.push(x.clone());
                valid.push(true);
            }
            (Column::Bool { data, valid }, Value::Bool(x)) => {
                data.push(*x);
                valid.push(true);
            }
            (Column::Timestamp { data, valid }, Value::Timestamp(x)) => {
                data.push(*x);
                valid.push(true);
            }
            (col, _) => match col {
                Column::Int { data, valid } => {
                    data.push(0);
                    valid.push(false);
                }
                Column::Float { data, valid } => {
                    data.push(0.0);
                    valid.push(false);
                }
                Column::Text { data, valid } => {
                    data.push(String::new());
                    valid.push(false);
                }
                Column::Bool { data, valid } => {
                    data.push(false);
                    valid.push(false);
                }
                Column::Timestamp { data, valid } => {
                    data.push(0);
                    valid.push(false);
                }
            },
        }
    }

    /// Cell at position `i` as a [`Value`] (NULL for invalid/out-of-range).
    pub fn get(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match self {
            Column::Int { data, .. } => Value::Int(data[i]),
            Column::Float { data, .. } => Value::Float(data[i]),
            Column::Text { data, .. } => Value::Text(data[i].clone()),
            Column::Bool { data, .. } => Value::Bool(data[i]),
            Column::Timestamp { data, .. } => Value::Timestamp(data[i]),
        }
    }

    /// Fast numeric view of the cell at `i` (see [`Value::as_f64`]).
    pub fn get_f64(&self, i: usize) -> Option<f64> {
        if !self.is_valid(i) {
            return None;
        }
        match self {
            Column::Int { data, .. } => Some(data[i] as f64),
            Column::Float { data, .. } => Some(data[i]),
            Column::Bool { data, .. } => Some(if data[i] { 1.0 } else { 0.0 }),
            Column::Timestamp { data, .. } => Some(data[i] as f64),
            Column::Text { .. } => None,
        }
    }

    /// Fast integer view of the cell at `i`.
    pub fn get_i64(&self, i: usize) -> Option<i64> {
        if !self.is_valid(i) {
            return None;
        }
        match self {
            Column::Int { data, .. } => Some(data[i]),
            Column::Timestamp { data, .. } => Some(data[i]),
            _ => None,
        }
    }

    /// Fast timestamp view of the cell at `i`.
    pub fn get_timestamp(&self, i: usize) -> Option<Timestamp> {
        self.get_i64(i)
    }

    /// Fast text view of the cell at `i`.
    pub fn get_str(&self, i: usize) -> Option<&str> {
        if !self.is_valid(i) {
            return None;
        }
        match self {
            Column::Text { data, .. } => Some(&data[i]),
            _ => None,
        }
    }

    /// Number of non-null cells.
    pub fn count_valid(&self) -> usize {
        match self {
            Column::Int { valid, .. }
            | Column::Float { valid, .. }
            | Column::Text { valid, .. }
            | Column::Bool { valid, .. }
            | Column::Timestamp { valid, .. } => valid.iter().filter(|v| **v).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_round_trip() {
        let mut c = Column::new(DataType::Int);
        c.push(&Value::Int(7));
        c.push(&Value::Null);
        c.push(&Value::Int(-2));
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Int(7));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.get(2), Value::Int(-2));
        assert_eq!(c.count_valid(), 2);
    }

    #[test]
    fn out_of_range_is_null() {
        let c = Column::new(DataType::Text);
        assert_eq!(c.get(0), Value::Null);
        assert!(!c.is_valid(5));
    }

    #[test]
    fn numeric_views() {
        let mut c = Column::new(DataType::Timestamp);
        c.push(&Value::Timestamp(100));
        assert_eq!(c.get_f64(0), Some(100.0));
        assert_eq!(c.get_timestamp(0), Some(100));
        assert_eq!(c.get_str(0), None);
    }

    #[test]
    fn each_type_round_trips() {
        for v in [
            Value::Int(1),
            Value::Float(2.5),
            Value::Text("a".into()),
            Value::Bool(true),
            Value::Timestamp(4),
        ] {
            let ty = v.data_type().unwrap();
            let mut c = Column::new(ty);
            c.push(&v);
            assert_eq!(c.get(0), v);
            assert_eq!(c.data_type(), ty);
        }
    }
}
