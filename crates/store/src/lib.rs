//! # relgraph-store
//!
//! An in-memory, columnar, strongly-typed relational database used as the
//! substrate for the *databases-as-graphs* pipeline.
//!
//! The store is deliberately small but complete for the predictive-query
//! workload:
//!
//! * typed values and columns ([`Value`], [`DataType`], [`Column`]);
//! * schemas with primary keys, foreign keys and an optional *time column*
//!   per table ([`TableSchema`], [`ForeignKey`]);
//! * columnar tables with O(1) primary-key lookup ([`Table`]);
//! * a multi-table [`Database`] with referential-integrity validation;
//! * CSV import/export ([`csv`]);
//! * a tiny relational-algebra layer (filter / project / join / group) used
//!   by the feature-engineering baseline and by training-table construction
//!   ([`query`]).
//!
//! Everything is deterministic. Durability is layered on top by the
//! [`persist`] module family: a columnar on-disk format, an ingest
//! write-ahead log with crash recovery, and compaction (see DESIGN.md §14
//! for the normative format specification).
//!
//! ## Example
//!
//! ```
//! use relgraph_store::{Database, TableSchema, DataType, Value, Row};
//!
//! let mut db = Database::new("shop");
//! let customers = TableSchema::builder("customers")
//!     .column("customer_id", DataType::Int)
//!     .column("signup_time", DataType::Timestamp)
//!     .primary_key("customer_id")
//!     .time_column("signup_time")
//!     .build()
//!     .unwrap();
//! db.create_table(customers).unwrap();
//! db.insert("customers", Row::from(vec![Value::Int(1), Value::Timestamp(86_400)]))
//!     .unwrap();
//! assert_eq!(db.table("customers").unwrap().len(), 1);
//! ```

pub mod column;
pub mod csv;
pub mod database;
pub mod ddl;
pub mod error;
pub mod ingest;
pub mod persist;
pub mod query;
pub mod row;
pub mod schema;
pub mod table;
pub mod value;

pub use column::Column;
pub use database::Database;
pub use ddl::{load_database_dir, parse_ddl, render_ddl, save_database_dir};
pub use error::{StoreError, StoreResult};
pub use ingest::{IngestPolicy, IngestReport, PolicyAction, QuarantinedRow, RowBatch};
pub use persist::snapshot::{DatabaseStreamWriter, TableStreamWriter};
pub use persist::{
    BaseColumnSelection, ColumnarBackend, CommitWindow, CsvDirBackend, DataDir, GroupCommitOutcome,
    PartialLoadReport, RecoveryReport, StorageBackend,
};
pub use query::{hash_join, Aggregation, CmpOp, GroupQuery, JoinedRows, Predicate};
pub use row::Row;
pub use schema::{ColumnDef, ForeignKey, TableSchema, TableSchemaBuilder};
pub use table::Table;
pub use value::{DataType, Timestamp, Value, SECONDS_PER_DAY};
