//! Crash recovery: replay the WAL's committed prefix over the base
//! snapshot and truncate the torn tail.
//!
//! Recovery is a pure function of the on-disk state: because
//! [`Database::ingest`](crate::Database::ingest) is deterministic
//! (validate-then-apply, no ambient state), replaying the committed
//! records over the base snapshot reproduces exactly the in-memory
//! database that existed after the last completed `ingest` call before
//! the crash — including its quarantine buffer and each batch's
//! accept/coerce/quarantine decisions. Batches that were *rejected*
//! in the original run are rejected identically on replay (ingest is
//! atomic, so a rejected record is a committed no-op).

use crate::database::Database;
use crate::error::StoreResult;

use super::wal::WalScan;

/// What recovery did while opening a data directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed WAL records found past the manifest's `applied_seq`.
    pub replayed: usize,
    /// Replayed records whose batches were (re-)rejected by their policy —
    /// deterministic no-ops, counted for visibility.
    pub rejected: usize,
    /// Bytes of torn tail truncated from the WAL, if any.
    pub truncated_bytes: u64,
    /// Human-readable reason the tail was torn, if it was.
    pub torn: Option<String>,
}

impl RecoveryReport {
    /// One-line summary for CLI output.
    pub fn summary(&self) -> String {
        let tail = match &self.torn {
            Some(reason) => format!(
                ", truncated {} torn byte(s) ({reason})",
                self.truncated_bytes
            ),
            None => String::new(),
        };
        format!(
            "replayed {} WAL record(s) ({} rejected){tail}",
            self.replayed, self.rejected
        )
    }
}

/// Replay a WAL scan over `db`, counting deterministic rejections.
pub(crate) fn replay(db: &mut Database, scan: &WalScan) -> StoreResult<RecoveryReport> {
    let _span = relgraph_obs::span("wal.replay");
    let mut report = RecoveryReport {
        truncated_bytes: scan.file_len - scan.valid_len,
        torn: scan.torn.clone(),
        ..Default::default()
    };
    for record in &scan.records {
        report.replayed += 1;
        // Ingest is atomic: an Err means the batch was a no-op, both now
        // and in the original run. Any error class other than rejection
        // would equally have been a no-op originally, so replay never
        // diverges.
        if db.ingest(record.batch.clone(), &record.policy).is_err() {
            report.rejected += 1;
        }
    }
    relgraph_obs::add("wal.replay.records", report.replayed as u64);
    if report.truncated_bytes > 0 {
        relgraph_obs::add("wal.truncated.bytes", report.truncated_bytes);
    }
    Ok(report)
}
