//! Durable storage for [`Database`]s: a columnar on-disk format, an ingest
//! write-ahead log with crash recovery, and compaction — the persistent
//! substrate behind `relgraph --data-dir`.
//!
//! The normative format specification lives in DESIGN.md §14; this module
//! family is the reference implementation:
//!
//! * [`mod@format`] — byte codec, CRC-32, column segment files, string
//!   dictionaries, the versioned `MANIFEST`;
//! * [`snapshot`] — whole-database base snapshots (full and streaming
//!   writers, bit-exact reload);
//! * [`wal`] — framed, checksummed write-ahead log for ingest batches;
//! * [`recovery`] — committed-prefix replay and torn-tail truncation.
//!
//! [`DataDir`] ties them together. On disk a data directory looks like
//!
//! ```text
//! mydb/
//!   MANIFEST            versioned pointer: live generation + applied_seq
//!   wal.log             ingest batches since the live base was written
//!   base-000001/        columnar base snapshot (schema.ddl, *.col, …)
//!   snapshots/          optional warm-start artifacts (graph/model),
//!                       written by the serving layer
//! ```
//!
//! ## Durability contract
//!
//! [`DataDir::ingest`] appends the batch to the WAL and flushes it *before*
//! applying it in memory; a batch is durable iff its record is committed
//! (fully framed, checksum valid). [`DataDir::open`] replays committed
//! records past the manifest's `applied_seq` and truncates anything after
//! the first torn frame, so a crash at any byte offset recovers to exactly
//! the last committed ingest — bit-identical to an uninterrupted run
//! (property-tested in `tests/persist_props.rs`).
//!
//! ```
//! use relgraph_store::persist::DataDir;
//! use relgraph_store::{Database, DataType, IngestPolicy, Row, RowBatch, TableSchema};
//!
//! let mut db = Database::new("doc");
//! db.create_table(
//!     TableSchema::builder("events")
//!         .column("id", DataType::Int)
//!         .primary_key("id")
//!         .build()
//!         .unwrap(),
//! )
//! .unwrap();
//!
//! let root = std::env::temp_dir().join(format!("relgraph-datadir-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&root);
//!
//! // Create the directory, ingest through the WAL, drop the handle (crash).
//! let mut dd = DataDir::create(&root, &db).unwrap();
//! let batch = RowBatch::new().with("events", Row::new().push(7i64));
//! dd.ingest(&mut db, batch, &IngestPolicy::default()).unwrap();
//! drop(dd);
//!
//! // Reopen: WAL replay reproduces the database bit for bit.
//! let (_dd, recovered, report) = DataDir::open(&root).unwrap();
//! assert_eq!(recovered, db);
//! assert_eq!(report.replayed, 1);
//! std::fs::remove_dir_all(&root).unwrap();
//! ```

#![warn(missing_docs)]

pub mod format;
pub mod recovery;
pub mod snapshot;
pub mod wal;

use std::path::{Path, PathBuf};

use relgraph_obs as obs;

use crate::database::Database;
use crate::ddl::{load_database_dir, save_database_dir};
use crate::error::{StoreError, StoreResult};
use crate::ingest::{IngestPolicy, IngestReport, RowBatch};

use format::{io_err, sync_dir, write_file_durable, Manifest};
pub use recovery::RecoveryReport;
use wal::Wal;

/// A storage backend that can persist and reload a whole [`Database`].
///
/// Two implementations ship: [`CsvDirBackend`] (the original
/// `schema.ddl` + per-table CSV layout, human-readable, slow) and
/// [`ColumnarBackend`] (the binary format of DESIGN.md §14, bit-exact and
/// fast). [`DataDir`] layers WAL-based durability on top of the columnar
/// backend.
pub trait StorageBackend {
    /// Load the full database from this backend's location.
    fn load(&self) -> StoreResult<Database>;
    /// Persist `db` to this backend's location, replacing prior contents.
    fn save(&self, db: &Database) -> StoreResult<()>;
    /// Human-readable backend name (for logs and error messages).
    fn kind(&self) -> &'static str;
}

/// The CSV directory layout (`schema.ddl` + one `<table>.csv` per table)
/// behind the [`StorageBackend`] trait.
#[derive(Debug, Clone)]
pub struct CsvDirBackend(pub PathBuf);

impl StorageBackend for CsvDirBackend {
    fn load(&self) -> StoreResult<Database> {
        load_database_dir(&self.0)
    }
    fn save(&self, db: &Database) -> StoreResult<()> {
        save_database_dir(db, &self.0)
    }
    fn kind(&self) -> &'static str {
        "csv-dir"
    }
}

/// The binary columnar layout (a bare base snapshot, no WAL/manifest)
/// behind the [`StorageBackend`] trait.
#[derive(Debug, Clone)]
pub struct ColumnarBackend {
    /// Snapshot directory.
    pub dir: PathBuf,
    /// Database name to restore on load.
    pub name: String,
}

impl StorageBackend for ColumnarBackend {
    fn load(&self) -> StoreResult<Database> {
        snapshot::read_base(&self.dir, &self.name)
    }
    fn save(&self, db: &Database) -> StoreResult<()> {
        snapshot::write_base(&self.dir, db).map(|_| ())
    }
    fn kind(&self) -> &'static str {
        "columnar"
    }
}

/// A durable data directory: columnar base snapshot + ingest WAL +
/// versioned manifest. See the [module docs](self) for the layout and the
/// durability contract.
#[derive(Debug)]
pub struct DataDir {
    root: PathBuf,
    manifest: Manifest,
    wal: Wal,
    next_seq: u64,
}

impl DataDir {
    fn manifest_path(root: &Path) -> PathBuf {
        root.join("MANIFEST")
    }

    fn wal_path(root: &Path) -> PathBuf {
        root.join("wal.log")
    }

    fn base_path(root: &Path, generation: u64) -> PathBuf {
        root.join(format!("base-{generation:06}"))
    }

    /// The directory root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Directory for warm-start snapshot artifacts (graph/model), created
    /// on demand by the serving layer.
    pub fn snapshots_dir(&self) -> PathBuf {
        self.root.join("snapshots")
    }

    /// The live manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Sequence number the next ingested batch will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Initialize `root` as a data directory holding `db` (generation 1,
    /// empty WAL). Fails if `root` already contains a manifest.
    pub fn create(root: &Path, db: &Database) -> StoreResult<Self> {
        if Self::manifest_path(root).exists() {
            return Err(StoreError::Io(format!(
                "{}: already an initialized data directory",
                root.display()
            )));
        }
        std::fs::create_dir_all(root).map_err(|e| io_err(root, e))?;
        let manifest = Manifest {
            name: db.name().to_string(),
            generation: 1,
            applied_seq: 0,
        };
        snapshot::write_base(&Self::base_path(root, 1), db)?;
        write_manifest_atomic(root, &manifest)?;
        let wal = Wal::open(&Self::wal_path(root))?;
        Ok(DataDir {
            root: root.to_path_buf(),
            manifest,
            wal,
            next_seq: 1,
        })
    }

    /// Begin initializing `root` as a data directory whose generation-1
    /// base is *streamed* rather than copied from an in-memory database —
    /// the out-of-core creation path for datasets larger than RAM. Returns
    /// a [`snapshot::DatabaseStreamWriter`] aimed at `base-000001`; append
    /// every row, then hand it to [`DataDir::finish_streamed`]. Fails if
    /// `root` already contains a manifest.
    pub fn create_streamed(
        root: &Path,
        schemas: Vec<crate::schema::TableSchema>,
    ) -> StoreResult<snapshot::DatabaseStreamWriter> {
        if Self::manifest_path(root).exists() {
            return Err(StoreError::Io(format!(
                "{}: already an initialized data directory",
                root.display()
            )));
        }
        std::fs::create_dir_all(root).map_err(|e| io_err(root, e))?;
        snapshot::DatabaseStreamWriter::create(&Self::base_path(root, 1), schemas)
    }

    /// Finalize a streamed creation: finish the base's column files, write
    /// the manifest (generation 1, nothing applied) and an empty WAL, and
    /// return the open handle plus the base's size in bytes. `name` is the
    /// database name the manifest records; [`DataDir::open`] will serve it
    /// back.
    pub fn finish_streamed(
        root: &Path,
        name: &str,
        writer: snapshot::DatabaseStreamWriter,
    ) -> StoreResult<(Self, u64)> {
        let bytes = writer.finish()?;
        let manifest = Manifest {
            name: name.to_string(),
            generation: 1,
            applied_seq: 0,
        };
        write_manifest_atomic(root, &manifest)?;
        let wal = Wal::open(&Self::wal_path(root))?;
        obs::add("snapshot.base.bytes", bytes);
        Ok((
            DataDir {
                root: root.to_path_buf(),
                manifest,
                wal,
                next_seq: 1,
            },
            bytes,
        ))
    }

    /// Open an existing data directory: load the live base snapshot,
    /// replay the WAL's committed records past `applied_seq`, and truncate
    /// any torn tail. Returns the handle, the recovered database and a
    /// report of what recovery did.
    pub fn open(root: &Path) -> StoreResult<(Self, Database, RecoveryReport)> {
        let _span = obs::span("persist.open");
        let mpath = Self::manifest_path(root);
        let text = std::fs::read_to_string(&mpath).map_err(|e| io_err(&mpath, e))?;
        let manifest = Manifest::parse(&mpath.display().to_string(), &text)?;
        let mut db =
            snapshot::read_base(&Self::base_path(root, manifest.generation), &manifest.name)?;
        let wal_path = Self::wal_path(root);
        let scan = Wal::scan(&wal_path, manifest.applied_seq)?;
        let report = recovery::replay(&mut db, &scan)?;
        if scan.valid_len < scan.file_len {
            Wal::truncate_to(&wal_path, scan.valid_len)?;
        }
        let next_seq = scan
            .records
            .last()
            .map(|r| r.seq + 1)
            .unwrap_or(manifest.applied_seq + 1);
        let wal = Wal::open(&wal_path)?;
        Ok((
            DataDir {
                root: root.to_path_buf(),
                manifest,
                wal,
                next_seq,
            },
            db,
            report,
        ))
    }

    /// Durably ingest one batch: append it to the WAL (flushed to disk)
    /// *then* apply it to `db`. The returned report — and any rejection
    /// error — is exactly what [`Database::ingest`] produces; a rejected
    /// batch leaves a committed no-op record in the log.
    pub fn ingest(
        &mut self,
        db: &mut Database,
        batch: RowBatch,
        policy: &IngestPolicy,
    ) -> StoreResult<IngestReport> {
        let seq = self.next_seq;
        self.wal.append(seq, policy, &batch)?;
        self.next_seq += 1;
        db.ingest(batch, policy)
    }

    /// Fold every WAL record into a fresh base snapshot (generation + 1),
    /// repoint the manifest, and reset the WAL. `db` must be the live
    /// database this directory produced (base + all WAL records applied).
    ///
    /// Crash-safe at every step: the new base is fully synced before the
    /// manifest is replaced atomically (write-to-temp + fsync + rename +
    /// directory fsync), and the WAL is reset only after the swap is
    /// durable. A crash before the WAL reset merely leaves records that
    /// the next open skips (the manifest records `applied_seq`); a crash
    /// before the manifest swap leaves the old generation live with its
    /// WAL intact. The WAL truncation can never reach disk ahead of the
    /// manifest repoint, so committed batches survive a power loss at any
    /// point.
    pub fn compact(&mut self, db: &Database) -> StoreResult<()> {
        let _span = obs::span("persist.compact");
        let new_gen = self.manifest.generation + 1;
        let applied_seq = self.next_seq - 1;
        snapshot::write_base(&Self::base_path(&self.root, new_gen), db)?;
        let new_manifest = Manifest {
            name: self.manifest.name.clone(),
            generation: new_gen,
            applied_seq,
        };
        write_manifest_atomic(&self.root, &new_manifest)?;
        let old = Self::base_path(&self.root, self.manifest.generation);
        self.manifest = new_manifest;
        self.wal.reset()?;
        // Old generation is dead weight now; removal is best-effort.
        let _ = std::fs::remove_dir_all(old);
        obs::add("persist.compactions", 1);
        Ok(())
    }
}

/// Replace `root`'s manifest atomically *and durably*: sync the temp
/// file's contents, rename it over `MANIFEST`, then fsync `root` so the
/// rename itself survives a power loss. The swap is fully on disk when
/// this returns — compaction relies on that ordering, because the WAL
/// reset that follows it must never be persisted ahead of the manifest
/// pointing at the new generation (that would lose committed batches).
fn write_manifest_atomic(root: &Path, manifest: &Manifest) -> StoreResult<()> {
    let tmp = root.join("MANIFEST.tmp");
    let fin = DataDir::manifest_path(root);
    write_file_durable(&tmp, manifest.render().as_bytes())?;
    std::fs::rename(&tmp, &fin).map_err(|e| io_err(&fin, e))?;
    sync_dir(root)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;
    use crate::schema::TableSchema;
    use crate::value::{DataType, Value};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "relgraph-datadir-test-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn shop() -> Database {
        let mut db = Database::new("shop");
        db.create_table(
            TableSchema::builder("customers")
                .column("customer_id", DataType::Int)
                .column("signup", DataType::Timestamp)
                .primary_key("customer_id")
                .time_column("signup")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("orders")
                .column("order_id", DataType::Int)
                .column("customer_id", DataType::Int)
                .column("placed", DataType::Timestamp)
                .primary_key("order_id")
                .time_column("placed")
                .foreign_key("customer_id", "customers")
                .build()
                .unwrap(),
        )
        .unwrap();
        for i in 0..5i64 {
            db.insert(
                "customers",
                Row::new().push(i).push(Value::Timestamp(i * 100)),
            )
            .unwrap();
        }
        db
    }

    fn order_batch(id: i64, cust: i64, t: i64) -> RowBatch {
        RowBatch::new().with(
            "orders",
            Row::new().push(id).push(cust).push(Value::Timestamp(t)),
        )
    }

    #[test]
    fn create_ingest_reopen_is_identical() {
        let root = tmp("reopen");
        let mut db = shop();
        let mut dd = DataDir::create(&root, &db).unwrap();
        dd.ingest(&mut db, order_batch(1, 0, 500), &IngestPolicy::default())
            .unwrap();
        dd.ingest(&mut db, order_batch(2, 3, 600), &IngestPolicy::default())
            .unwrap();
        // A rejected batch (dangling FK) is a committed no-op.
        let err = dd
            .ingest(&mut db, order_batch(3, 99, 700), &IngestPolicy::default())
            .unwrap_err();
        assert!(matches!(err, StoreError::BatchRejected { .. }));
        drop(dd);

        let (_dd, recovered, report) = DataDir::open(&root).unwrap();
        assert_eq!(recovered, db);
        assert_eq!(report.replayed, 3);
        assert_eq!(report.rejected, 1);
        assert!(report.torn.is_none());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn compact_folds_wal_and_skips_applied_records() {
        let root = tmp("compact");
        let mut db = shop();
        let mut dd = DataDir::create(&root, &db).unwrap();
        dd.ingest(&mut db, order_batch(1, 0, 500), &IngestPolicy::default())
            .unwrap();
        dd.compact(&db).unwrap();
        assert_eq!(dd.manifest().generation, 2);
        assert!(dd.wal.is_empty().unwrap());
        // Post-compaction ingest lands in the fresh WAL.
        dd.ingest(&mut db, order_batch(2, 1, 800), &IngestPolicy::default())
            .unwrap();
        drop(dd);
        let (_dd, recovered, report) = DataDir::open(&root).unwrap();
        assert_eq!(recovered, db);
        assert_eq!(report.replayed, 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn torn_tail_recovers_to_last_committed_batch() {
        let root = tmp("torn");
        let mut db = shop();
        let mut dd = DataDir::create(&root, &db).unwrap();
        dd.ingest(&mut db, order_batch(1, 0, 500), &IngestPolicy::default())
            .unwrap();
        let state_after_one = db.clone();
        dd.ingest(&mut db, order_batch(2, 1, 600), &IngestPolicy::default())
            .unwrap();
        drop(dd);
        // Crash mid-append of record 2: chop 3 bytes off the tail.
        let wal_path = DataDir::wal_path(&root);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 3]).unwrap();

        let (_dd, recovered, report) = DataDir::open(&root).unwrap();
        assert_eq!(recovered, state_after_one);
        assert_eq!(report.replayed, 1);
        assert_eq!(report.truncated_bytes as usize, {
            // Everything past record 1's end was torn.
            let scan = Wal::scan(&wal_path, 0).unwrap();
            (bytes.len() - 3) - scan.valid_len as usize
        });
        assert!(report.torn.is_some());
        // The torn tail was truncated on open: a second open is clean.
        let (_dd, again, report) = DataDir::open(&root).unwrap();
        assert_eq!(again, state_after_one);
        assert!(report.torn.is_none());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn backends_round_trip_through_trait() {
        let root = tmp("backends");
        let db = shop();
        let csv = CsvDirBackend(root.join("csv"));
        let col = ColumnarBackend {
            dir: root.join("col"),
            name: "shop".to_string(),
        };
        for backend in [&csv as &dyn StorageBackend, &col] {
            backend.save(&db).unwrap();
            let back = backend.load().unwrap();
            // CSV loses only the database name (directory-derived); the
            // columnar backend is bit-exact.
            assert_eq!(back.total_rows(), db.total_rows());
            if backend.kind() == "columnar" {
                assert_eq!(back, db);
            }
        }
        std::fs::remove_dir_all(&root).unwrap();
    }
}
