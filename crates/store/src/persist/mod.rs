//! Durable storage for [`Database`]s: a columnar on-disk format, an ingest
//! write-ahead log with crash recovery, and compaction — the persistent
//! substrate behind `relgraph --data-dir`.
//!
//! The normative format specification lives in DESIGN.md §14; this module
//! family is the reference implementation:
//!
//! * [`mod@format`] — byte codec, CRC-32, column segment files, string
//!   dictionaries, the versioned `MANIFEST`;
//! * [`snapshot`] — whole-database base snapshots (full and streaming
//!   writers, bit-exact reload);
//! * [`wal`] — framed, checksummed write-ahead log for ingest batches;
//! * [`recovery`] — committed-prefix replay and torn-tail truncation.
//!
//! [`DataDir`] ties them together. On disk a data directory looks like
//!
//! ```text
//! mydb/
//!   MANIFEST            versioned pointer: live generation + applied_seq
//!   wal.log             ingest batches since the live base was written
//!   base-000001/        columnar base snapshot (schema.ddl, *.col, …)
//!   snapshots/          optional warm-start artifacts (graph/model),
//!                       written by the serving layer
//! ```
//!
//! ## Durability contract
//!
//! [`DataDir::ingest`] appends the batch to the WAL and flushes it *before*
//! applying it in memory; a batch is durable iff its record is committed
//! (fully framed, checksum valid). [`DataDir::open`] replays committed
//! records past the manifest's `applied_seq` and truncates anything after
//! the first torn frame, so a crash at any byte offset recovers to exactly
//! the last committed ingest — bit-identical to an uninterrupted run
//! (property-tested in `tests/persist_props.rs`).
//!
//! ## Group commit
//!
//! Per-batch fsync dominates small-batch ingest cost. The commit pipeline
//! ([`DataDir::submit_ingest`] / [`DataDir::flush_ingest`] /
//! [`DataDir::ingest_group`], window configured with [`CommitWindow`])
//! coalesces consecutive batches into **one** framed group record flushed
//! with **one** `sync_data`. The durability contract is unchanged because
//! acknowledgement moves with the fsync: a submitted batch is neither
//! applied in memory nor reported to the caller until the covering flush
//! returns, and the group's single CRC makes recovery all-or-nothing — a
//! crash inside the window loses the *whole* unacknowledged group, never
//! a prefix of it (DESIGN.md §14.8).
//!
//! ```
//! use relgraph_store::persist::DataDir;
//! use relgraph_store::{Database, DataType, IngestPolicy, Row, RowBatch, TableSchema};
//!
//! let mut db = Database::new("doc");
//! db.create_table(
//!     TableSchema::builder("events")
//!         .column("id", DataType::Int)
//!         .primary_key("id")
//!         .build()
//!         .unwrap(),
//! )
//! .unwrap();
//!
//! let root = std::env::temp_dir().join(format!("relgraph-datadir-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&root);
//!
//! // Create the directory, ingest through the WAL, drop the handle (crash).
//! let mut dd = DataDir::create(&root, &db).unwrap();
//! let batch = RowBatch::new().with("events", Row::new().push(7i64));
//! dd.ingest(&mut db, batch, &IngestPolicy::default()).unwrap();
//! drop(dd);
//!
//! // Reopen: WAL replay reproduces the database bit for bit.
//! let (_dd, recovered, report) = DataDir::open(&root).unwrap();
//! assert_eq!(recovered, db);
//! assert_eq!(report.replayed, 1);
//! std::fs::remove_dir_all(&root).unwrap();
//! ```

#![warn(missing_docs)]

pub mod format;
pub mod recovery;
pub mod snapshot;
pub mod wal;

use std::path::{Path, PathBuf};

use relgraph_obs as obs;

use crate::database::Database;
use crate::ddl::{load_database_dir, save_database_dir};
use crate::error::{StoreError, StoreResult};
use crate::ingest::{IngestPolicy, IngestReport, RowBatch};

use format::{io_err, sync_dir, write_file_durable, Manifest};
pub use recovery::RecoveryReport;
pub use snapshot::{BaseColumnSelection, PartialLoadReport};
use wal::Wal;

/// A storage backend that can persist and reload a whole [`Database`].
///
/// Two implementations ship: [`CsvDirBackend`] (the original
/// `schema.ddl` + per-table CSV layout, human-readable, slow) and
/// [`ColumnarBackend`] (the binary format of DESIGN.md §14, bit-exact and
/// fast). [`DataDir`] layers WAL-based durability on top of the columnar
/// backend.
pub trait StorageBackend {
    /// Load the full database from this backend's location.
    fn load(&self) -> StoreResult<Database>;
    /// Persist `db` to this backend's location, replacing prior contents.
    fn save(&self, db: &Database) -> StoreResult<()>;
    /// Human-readable backend name (for logs and error messages).
    fn kind(&self) -> &'static str;
}

/// The CSV directory layout (`schema.ddl` + one `<table>.csv` per table)
/// behind the [`StorageBackend`] trait.
#[derive(Debug, Clone)]
pub struct CsvDirBackend(pub PathBuf);

impl StorageBackend for CsvDirBackend {
    fn load(&self) -> StoreResult<Database> {
        load_database_dir(&self.0)
    }
    fn save(&self, db: &Database) -> StoreResult<()> {
        save_database_dir(db, &self.0)
    }
    fn kind(&self) -> &'static str {
        "csv-dir"
    }
}

/// The binary columnar layout (a bare base snapshot, no WAL/manifest)
/// behind the [`StorageBackend`] trait.
#[derive(Debug, Clone)]
pub struct ColumnarBackend {
    /// Snapshot directory.
    pub dir: PathBuf,
    /// Database name to restore on load.
    pub name: String,
}

impl StorageBackend for ColumnarBackend {
    fn load(&self) -> StoreResult<Database> {
        snapshot::read_base(&self.dir, &self.name)
    }
    fn save(&self, db: &Database) -> StoreResult<()> {
        snapshot::write_base(&self.dir, db).map(|_| ())
    }
    fn kind(&self) -> &'static str {
        "columnar"
    }
}

/// Group-commit window: when the commit pipeline flushes a buffered run
/// of ingest batches as one WAL group record + one fsync.
///
/// A flush happens at the first of: `max_batches` buffered, `max_bytes`
/// of encoded WAL payload buffered, or (checked at each submission)
/// `max_delay` elapsed since the window's first batch. The default window
/// is one batch — byte-for-byte the legacy per-batch append+fsync path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitWindow {
    /// Flush after this many buffered batches (min 1).
    pub max_batches: usize,
    /// Flush once the buffered batches' encoded WAL payload reaches this
    /// many bytes.
    pub max_bytes: u64,
    /// Flush a submission that arrives this long after the window opened.
    /// `Duration::ZERO` disables the time cap (batch/byte caps only).
    pub max_delay: std::time::Duration,
}

impl Default for CommitWindow {
    fn default() -> Self {
        CommitWindow::batches(1)
    }
}

impl CommitWindow {
    /// A window capped at `n` batches (byte cap 4 MiB, no time cap).
    pub fn batches(n: usize) -> Self {
        CommitWindow {
            max_batches: n.max(1),
            max_bytes: 4 << 20,
            max_delay: std::time::Duration::ZERO,
        }
    }
}

/// One batch buffered in the commit pipeline, encoded once at submission
/// so the byte window measures real on-disk cost.
#[derive(Debug)]
struct PendingIngest {
    policy: IngestPolicy,
    batch: RowBatch,
    member: Vec<u8>,
}

/// What one group-commit flush did: the covering WAL frame is durable and
/// every buffered batch has been applied (acknowledged), in submission
/// order.
#[derive(Debug)]
pub struct GroupCommitOutcome {
    /// Per-batch ingest results, in submission order. A
    /// [`StoreError::BatchRejected`] entry is a committed no-op record,
    /// exactly as in the per-batch [`DataDir::ingest`] path.
    pub reports: Vec<StoreResult<IngestReport>>,
    /// Length in bytes of the group's WAL frame.
    pub frame_bytes: u64,
}

/// A durable data directory: columnar base snapshot + ingest WAL +
/// versioned manifest. See the [module docs](self) for the layout and the
/// durability contract.
#[derive(Debug)]
pub struct DataDir {
    root: PathBuf,
    manifest: Manifest,
    wal: Wal,
    next_seq: u64,
    window: CommitWindow,
    pending: Vec<PendingIngest>,
    pending_bytes: u64,
    window_opened: Option<std::time::Instant>,
}

impl DataDir {
    fn manifest_path(root: &Path) -> PathBuf {
        root.join("MANIFEST")
    }

    fn wal_path(root: &Path) -> PathBuf {
        root.join("wal.log")
    }

    fn base_path(root: &Path, generation: u64) -> PathBuf {
        root.join(format!("base-{generation:06}"))
    }

    /// The directory root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Directory for warm-start snapshot artifacts (graph/model), created
    /// on demand by the serving layer.
    pub fn snapshots_dir(&self) -> PathBuf {
        Self::snapshots_path(&self.root)
    }

    /// [`snapshots_dir`](Self::snapshots_dir) for a root that has not been
    /// opened yet — warm boots peek at the snapshot artifacts *before*
    /// deciding how much of the base to load.
    pub fn snapshots_path(root: &Path) -> PathBuf {
        root.join("snapshots")
    }

    /// The live manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Sequence number the next ingested batch will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Initialize `root` as a data directory holding `db` (generation 1,
    /// empty WAL). Fails if `root` already contains a manifest.
    pub fn create(root: &Path, db: &Database) -> StoreResult<Self> {
        if Self::manifest_path(root).exists() {
            return Err(StoreError::Io(format!(
                "{}: already an initialized data directory",
                root.display()
            )));
        }
        std::fs::create_dir_all(root).map_err(|e| io_err(root, e))?;
        let manifest = Manifest {
            name: db.name().to_string(),
            generation: 1,
            applied_seq: 0,
        };
        snapshot::write_base(&Self::base_path(root, 1), db)?;
        write_manifest_atomic(root, &manifest)?;
        let wal = Wal::open(&Self::wal_path(root))?;
        Ok(Self::assemble(root, manifest, wal, 1))
    }

    fn assemble(root: &Path, manifest: Manifest, wal: Wal, next_seq: u64) -> Self {
        DataDir {
            root: root.to_path_buf(),
            manifest,
            wal,
            next_seq,
            window: CommitWindow::default(),
            pending: Vec::new(),
            pending_bytes: 0,
            window_opened: None,
        }
    }

    /// Begin initializing `root` as a data directory whose generation-1
    /// base is *streamed* rather than copied from an in-memory database —
    /// the out-of-core creation path for datasets larger than RAM. Returns
    /// a [`snapshot::DatabaseStreamWriter`] aimed at `base-000001`; append
    /// every row, then hand it to [`DataDir::finish_streamed`]. Fails if
    /// `root` already contains a manifest.
    pub fn create_streamed(
        root: &Path,
        schemas: Vec<crate::schema::TableSchema>,
    ) -> StoreResult<snapshot::DatabaseStreamWriter> {
        if Self::manifest_path(root).exists() {
            return Err(StoreError::Io(format!(
                "{}: already an initialized data directory",
                root.display()
            )));
        }
        std::fs::create_dir_all(root).map_err(|e| io_err(root, e))?;
        snapshot::DatabaseStreamWriter::create(&Self::base_path(root, 1), schemas)
    }

    /// Finalize a streamed creation: finish the base's column files, write
    /// the manifest (generation 1, nothing applied) and an empty WAL, and
    /// return the open handle plus the base's size in bytes. `name` is the
    /// database name the manifest records; [`DataDir::open`] will serve it
    /// back.
    pub fn finish_streamed(
        root: &Path,
        name: &str,
        writer: snapshot::DatabaseStreamWriter,
    ) -> StoreResult<(Self, u64)> {
        let bytes = writer.finish()?;
        let manifest = Manifest {
            name: name.to_string(),
            generation: 1,
            applied_seq: 0,
        };
        write_manifest_atomic(root, &manifest)?;
        let wal = Wal::open(&Self::wal_path(root))?;
        obs::add("snapshot.base.bytes", bytes);
        Ok((Self::assemble(root, manifest, wal, 1), bytes))
    }

    /// Open an existing data directory: load the live base snapshot,
    /// replay the WAL's committed records past `applied_seq`, and truncate
    /// any torn tail. Returns the handle, the recovered database and a
    /// report of what recovery did.
    pub fn open(root: &Path) -> StoreResult<(Self, Database, RecoveryReport)> {
        let _span = obs::span("persist.open");
        let mpath = Self::manifest_path(root);
        let text = std::fs::read_to_string(&mpath).map_err(|e| io_err(&mpath, e))?;
        let manifest = Manifest::parse(&mpath.display().to_string(), &text)?;
        let mut db =
            snapshot::read_base(&Self::base_path(root, manifest.generation), &manifest.name)?;
        let wal_path = Self::wal_path(root);
        let scan = Wal::scan(&wal_path, manifest.applied_seq)?;
        let report = recovery::replay(&mut db, &scan)?;
        if scan.valid_len < scan.file_len {
            Wal::truncate_to(&wal_path, scan.valid_len)?;
        }
        let next_seq = scan
            .records
            .last()
            .map(|r| r.seq + 1)
            .unwrap_or(manifest.applied_seq + 1);
        let wal = Wal::open(&wal_path)?;
        Ok((Self::assemble(root, manifest, wal, next_seq), db, report))
    }

    /// Open an existing data directory materializing only the base columns
    /// `selection` asks for (plus every table's key/FK/time columns — see
    /// [`snapshot::read_base_columns`]). Unselected columns come back as
    /// deferred all-NULL placeholders whose bodies are never read, cutting
    /// warm-boot time and resident memory on wide tables.
    ///
    /// Two safety rules widen the selection to a full load per table,
    /// keeping recovery semantics identical to [`DataDir::open`]:
    ///
    /// 1. **WAL-touched tables load fully.** The WAL is scanned *before*
    ///    the base is read; any table a committed-but-unapplied record
    ///    grows must be ingestable (and re-featurizable from real values),
    ///    so it is forced full.
    /// 2. **Unexpected base rows load fully.** A table whose on-disk row
    ///    count differs from `selection`'s
    ///    [`expected_rows`](BaseColumnSelection::expected_rows) entry holds
    ///    rows the caller's baked state does not cover (e.g. a compaction
    ///    folded post-snapshot ingests into the base), so it is forced
    ///    full.
    ///
    /// Everything else matches [`DataDir::open`]: committed WAL records
    /// past `applied_seq` are replayed and a torn tail is truncated.
    pub fn open_columns(
        root: &Path,
        selection: &BaseColumnSelection,
    ) -> StoreResult<(Self, Database, RecoveryReport, PartialLoadReport)> {
        let _span = obs::span("persist.open_columns");
        let mpath = Self::manifest_path(root);
        let text = std::fs::read_to_string(&mpath).map_err(|e| io_err(&mpath, e))?;
        let manifest = Manifest::parse(&mpath.display().to_string(), &text)?;
        let wal_path = Self::wal_path(root);
        // Scan the WAL first: replay targets must be fully materialized.
        let scan = Wal::scan(&wal_path, manifest.applied_seq)?;
        let mut selection = selection.clone();
        for record in &scan.records {
            for (table, _) in record.batch.rows() {
                if !selection.full_tables.iter().any(|t| t == table) {
                    selection.full_tables.push(table.clone());
                }
            }
        }
        let (mut db, partial) = snapshot::read_base_columns(
            &Self::base_path(root, manifest.generation),
            &manifest.name,
            &selection,
        )?;
        let report = recovery::replay(&mut db, &scan)?;
        if scan.valid_len < scan.file_len {
            Wal::truncate_to(&wal_path, scan.valid_len)?;
        }
        let next_seq = scan
            .records
            .last()
            .map(|r| r.seq + 1)
            .unwrap_or(manifest.applied_seq + 1);
        let wal = Wal::open(&wal_path)?;
        Ok((
            Self::assemble(root, manifest, wal, next_seq),
            db,
            report,
            partial,
        ))
    }

    /// Durably ingest one batch: append it to the WAL (flushed to disk)
    /// *then* apply it to `db`. The returned report — and any rejection
    /// error — is exactly what [`Database::ingest`] produces; a rejected
    /// batch leaves a committed no-op record in the log.
    pub fn ingest(
        &mut self,
        db: &mut Database,
        batch: RowBatch,
        policy: &IngestPolicy,
    ) -> StoreResult<IngestReport> {
        let seq = self.next_seq;
        self.wal.append(seq, policy, &batch)?;
        self.next_seq += 1;
        db.ingest(batch, policy)
    }

    /// The active group-commit window.
    pub fn commit_window(&self) -> CommitWindow {
        self.window
    }

    /// Configure the group-commit window for subsequent
    /// [`submit_ingest`](Self::submit_ingest) /
    /// [`ingest_group`](Self::ingest_group) calls. Does not touch batches
    /// already buffered.
    pub fn set_commit_window(&mut self, window: CommitWindow) {
        self.window = CommitWindow {
            max_batches: window.max_batches.max(1),
            ..window
        };
    }

    /// Batches buffered in the commit pipeline, not yet durable and not
    /// yet applied.
    pub fn pending_batches(&self) -> usize {
        self.pending.len()
    }

    /// Submit one batch to the group-commit pipeline. The batch is
    /// buffered — **neither durable nor applied to `db`** — until a flush
    /// covers it; this call triggers that flush itself when the submission
    /// fills the window (batch count, byte cap, or the time cap measured
    /// from the window's first submission). Returns the flush outcome when
    /// one happened, `None` while the window is still open. Dropping the
    /// `DataDir` with batches still buffered discards them, exactly like a
    /// crash before the covering fsync: they were never acknowledged.
    pub fn submit_ingest(
        &mut self,
        db: &mut Database,
        batch: RowBatch,
        policy: &IngestPolicy,
    ) -> StoreResult<Option<GroupCommitOutcome>> {
        let member = wal::encode_member(policy, &batch);
        if self.pending.is_empty() {
            self.window_opened = Some(std::time::Instant::now());
        }
        self.pending_bytes += member.len() as u64;
        self.pending.push(PendingIngest {
            policy: *policy,
            batch,
            member,
        });
        let full = self.pending.len() >= self.window.max_batches
            || self.pending_bytes >= self.window.max_bytes
            || (self.window.max_delay > std::time::Duration::ZERO
                && self
                    .window_opened
                    .is_some_and(|t| t.elapsed() >= self.window.max_delay));
        if full {
            self.flush_ingest(db)
        } else {
            Ok(None)
        }
    }

    /// Flush the commit pipeline: write every buffered batch as one WAL
    /// group record, `sync_data` once, then — and only then — apply the
    /// batches to `db` in submission order and acknowledge them through
    /// the returned reports. `None` when nothing was buffered. On a WAL
    /// write error the buffer is kept intact (nothing was acknowledged,
    /// nothing applied) so the caller can retry or drop the batches.
    pub fn flush_ingest(&mut self, db: &mut Database) -> StoreResult<Option<GroupCommitOutcome>> {
        if self.pending.is_empty() {
            return Ok(None);
        }
        let members: Vec<Vec<u8>> = self.pending.iter().map(|p| p.member.clone()).collect();
        let frame_bytes = self.wal.append_group_encoded(self.next_seq, &members)?;
        // The covering fsync returned: the group is durable. Acknowledge by
        // applying in submission order (write-ahead preserved).
        self.next_seq += self.pending.len() as u64;
        let mut reports = Vec::with_capacity(self.pending.len());
        for p in self.pending.drain(..) {
            reports.push(db.ingest(p.batch, &p.policy));
        }
        self.pending_bytes = 0;
        self.window_opened = None;
        obs::add("persist.wal.group_commits", 1);
        Ok(Some(GroupCommitOutcome {
            reports,
            frame_bytes,
        }))
    }

    /// Durably ingest a run of batches through the group-commit pipeline:
    /// submit each (flushing whenever the window fills) and flush the
    /// remainder, so the whole run is durable and applied when this
    /// returns. Per-batch results come back in submission order; with the
    /// default one-batch window this degenerates to the per-batch
    /// [`ingest`](Self::ingest) path.
    pub fn ingest_group(
        &mut self,
        db: &mut Database,
        batches: Vec<RowBatch>,
        policy: &IngestPolicy,
    ) -> StoreResult<Vec<StoreResult<IngestReport>>> {
        let mut out = Vec::new();
        for batch in batches {
            if let Some(flush) = self.submit_ingest(db, batch, policy)? {
                out.extend(flush.reports);
            }
        }
        if let Some(flush) = self.flush_ingest(db)? {
            out.extend(flush.reports);
        }
        Ok(out)
    }

    /// Fold every WAL record into a fresh base snapshot (generation + 1),
    /// repoint the manifest, and reset the WAL. `db` must be the live
    /// database this directory produced (base + all WAL records applied).
    ///
    /// Crash-safe at every step: the new base is fully synced before the
    /// manifest is replaced atomically (write-to-temp + fsync + rename +
    /// directory fsync), and the WAL is reset only after the swap is
    /// durable. A crash before the WAL reset merely leaves records that
    /// the next open skips (the manifest records `applied_seq`); a crash
    /// before the manifest swap leaves the old generation live with its
    /// WAL intact. The WAL truncation can never reach disk ahead of the
    /// manifest repoint, so committed batches survive a power loss at any
    /// point.
    pub fn compact(&mut self, db: &Database) -> StoreResult<()> {
        let _span = obs::span("persist.compact");
        let new_gen = self.manifest.generation + 1;
        let applied_seq = self.next_seq - 1;
        snapshot::write_base(&Self::base_path(&self.root, new_gen), db)?;
        let new_manifest = Manifest {
            name: self.manifest.name.clone(),
            generation: new_gen,
            applied_seq,
        };
        write_manifest_atomic(&self.root, &new_manifest)?;
        let old = Self::base_path(&self.root, self.manifest.generation);
        self.manifest = new_manifest;
        self.wal.reset()?;
        // Old generation is dead weight now; removal is best-effort.
        let _ = std::fs::remove_dir_all(old);
        obs::add("persist.compactions", 1);
        Ok(())
    }
}

/// Replace `root`'s manifest atomically *and durably*: sync the temp
/// file's contents, rename it over `MANIFEST`, then fsync `root` so the
/// rename itself survives a power loss. The swap is fully on disk when
/// this returns — compaction relies on that ordering, because the WAL
/// reset that follows it must never be persisted ahead of the manifest
/// pointing at the new generation (that would lose committed batches).
fn write_manifest_atomic(root: &Path, manifest: &Manifest) -> StoreResult<()> {
    let tmp = root.join("MANIFEST.tmp");
    let fin = DataDir::manifest_path(root);
    write_file_durable(&tmp, manifest.render().as_bytes())?;
    std::fs::rename(&tmp, &fin).map_err(|e| io_err(&fin, e))?;
    sync_dir(root)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;
    use crate::schema::TableSchema;
    use crate::value::{DataType, Value};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "relgraph-datadir-test-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn shop() -> Database {
        let mut db = Database::new("shop");
        db.create_table(
            TableSchema::builder("customers")
                .column("customer_id", DataType::Int)
                .column("signup", DataType::Timestamp)
                .primary_key("customer_id")
                .time_column("signup")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("orders")
                .column("order_id", DataType::Int)
                .column("customer_id", DataType::Int)
                .column("placed", DataType::Timestamp)
                .primary_key("order_id")
                .time_column("placed")
                .foreign_key("customer_id", "customers")
                .build()
                .unwrap(),
        )
        .unwrap();
        for i in 0..5i64 {
            db.insert(
                "customers",
                Row::new().push(i).push(Value::Timestamp(i * 100)),
            )
            .unwrap();
        }
        db
    }

    fn order_batch(id: i64, cust: i64, t: i64) -> RowBatch {
        RowBatch::new().with(
            "orders",
            Row::new().push(id).push(cust).push(Value::Timestamp(t)),
        )
    }

    #[test]
    fn create_ingest_reopen_is_identical() {
        let root = tmp("reopen");
        let mut db = shop();
        let mut dd = DataDir::create(&root, &db).unwrap();
        dd.ingest(&mut db, order_batch(1, 0, 500), &IngestPolicy::default())
            .unwrap();
        dd.ingest(&mut db, order_batch(2, 3, 600), &IngestPolicy::default())
            .unwrap();
        // A rejected batch (dangling FK) is a committed no-op.
        let err = dd
            .ingest(&mut db, order_batch(3, 99, 700), &IngestPolicy::default())
            .unwrap_err();
        assert!(matches!(err, StoreError::BatchRejected { .. }));
        drop(dd);

        let (_dd, recovered, report) = DataDir::open(&root).unwrap();
        assert_eq!(recovered, db);
        assert_eq!(report.replayed, 3);
        assert_eq!(report.rejected, 1);
        assert!(report.torn.is_none());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn compact_folds_wal_and_skips_applied_records() {
        let root = tmp("compact");
        let mut db = shop();
        let mut dd = DataDir::create(&root, &db).unwrap();
        dd.ingest(&mut db, order_batch(1, 0, 500), &IngestPolicy::default())
            .unwrap();
        dd.compact(&db).unwrap();
        assert_eq!(dd.manifest().generation, 2);
        assert!(dd.wal.is_empty().unwrap());
        // Post-compaction ingest lands in the fresh WAL.
        dd.ingest(&mut db, order_batch(2, 1, 800), &IngestPolicy::default())
            .unwrap();
        drop(dd);
        let (_dd, recovered, report) = DataDir::open(&root).unwrap();
        assert_eq!(recovered, db);
        assert_eq!(report.replayed, 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn torn_tail_recovers_to_last_committed_batch() {
        let root = tmp("torn");
        let mut db = shop();
        let mut dd = DataDir::create(&root, &db).unwrap();
        dd.ingest(&mut db, order_batch(1, 0, 500), &IngestPolicy::default())
            .unwrap();
        let state_after_one = db.clone();
        dd.ingest(&mut db, order_batch(2, 1, 600), &IngestPolicy::default())
            .unwrap();
        drop(dd);
        // Crash mid-append of record 2: chop 3 bytes off the tail.
        let wal_path = DataDir::wal_path(&root);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 3]).unwrap();

        let (_dd, recovered, report) = DataDir::open(&root).unwrap();
        assert_eq!(recovered, state_after_one);
        assert_eq!(report.replayed, 1);
        assert_eq!(report.truncated_bytes as usize, {
            // Everything past record 1's end was torn.
            let scan = Wal::scan(&wal_path, 0).unwrap();
            (bytes.len() - 3) - scan.valid_len as usize
        });
        assert!(report.torn.is_some());
        // The torn tail was truncated on open: a second open is clean.
        let (_dd, again, report) = DataDir::open(&root).unwrap();
        assert_eq!(again, state_after_one);
        assert!(report.torn.is_none());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn group_commit_acknowledges_at_flush_and_recovers() {
        let root = tmp("group-commit");
        let mut db = shop();
        let mut dd = DataDir::create(&root, &db).unwrap();
        dd.set_commit_window(CommitWindow::batches(3));
        // Two submissions stay buffered: not applied, not durable.
        assert!(dd
            .submit_ingest(&mut db, order_batch(1, 0, 500), &IngestPolicy::default())
            .unwrap()
            .is_none());
        assert!(dd
            .submit_ingest(&mut db, order_batch(2, 1, 600), &IngestPolicy::default())
            .unwrap()
            .is_none());
        assert_eq!(dd.pending_batches(), 2);
        assert_eq!(db.table("orders").unwrap().len(), 0);
        assert!(dd.wal.is_empty().unwrap());
        // The third fills the window: one flush covers all three.
        let flush = dd
            .submit_ingest(&mut db, order_batch(3, 2, 700), &IngestPolicy::default())
            .unwrap()
            .expect("window of 3 must flush on the third submission");
        assert_eq!(flush.reports.len(), 3);
        assert!(flush.reports.iter().all(|r| r.is_ok()));
        assert_eq!(dd.pending_batches(), 0);
        assert_eq!(db.table("orders").unwrap().len(), 3);
        assert_eq!(dd.next_seq(), 4);
        drop(dd);
        let (dd, recovered, report) = DataDir::open(&root).unwrap();
        assert_eq!(recovered, db);
        assert_eq!(report.replayed, 3);
        assert_eq!(dd.next_seq(), 4);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn byte_cap_flushes_window_early() {
        let root = tmp("group-bytes");
        let mut db = shop();
        let mut dd = DataDir::create(&root, &db).unwrap();
        dd.set_commit_window(CommitWindow {
            max_batches: 100,
            max_bytes: 1, // every submission overflows the byte cap
            max_delay: std::time::Duration::ZERO,
        });
        let flush = dd
            .submit_ingest(&mut db, order_batch(1, 0, 500), &IngestPolicy::default())
            .unwrap();
        assert!(flush.is_some(), "byte cap must force an immediate flush");
        assert_eq!(db.table("orders").unwrap().len(), 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn unflushed_submissions_are_discarded_like_a_crash() {
        let root = tmp("group-unflushed");
        let mut db = shop();
        let mut dd = DataDir::create(&root, &db).unwrap();
        let durable = db.clone();
        dd.set_commit_window(CommitWindow::batches(8));
        dd.submit_ingest(&mut db, order_batch(1, 0, 500), &IngestPolicy::default())
            .unwrap();
        dd.submit_ingest(&mut db, order_batch(2, 1, 600), &IngestPolicy::default())
            .unwrap();
        // Submitted batches were never acknowledged — they were also never
        // applied, so the in-memory database still matches the durable one.
        assert_eq!(db, durable);
        drop(dd); // "crash" with the window open
        let (_dd, recovered, report) = DataDir::open(&root).unwrap();
        assert_eq!(recovered, durable);
        assert_eq!(report.replayed, 0);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn ingest_group_matches_per_batch_ingest() {
        let root_a = tmp("group-equiv-a");
        let root_b = tmp("group-equiv-b");
        let mut db_a = shop();
        let mut db_b = shop();
        let mut dd_a = DataDir::create(&root_a, &db_a).unwrap();
        let mut dd_b = DataDir::create(&root_b, &db_b).unwrap();
        dd_b.set_commit_window(CommitWindow::batches(4));
        let batches = || {
            vec![
                order_batch(1, 0, 500),
                order_batch(2, 1, 600),
                order_batch(3, 99, 700), // dangling FK: rejected no-op
                order_batch(4, 2, 800),
            ]
        };
        let mut reports_a = Vec::new();
        for b in batches() {
            reports_a.push(dd_a.ingest(&mut db_a, b, &IngestPolicy::default()));
        }
        let reports_b = dd_b
            .ingest_group(&mut db_b, batches(), &IngestPolicy::default())
            .unwrap();
        assert_eq!(db_a, db_b);
        assert_eq!(reports_a.len(), reports_b.len());
        for (a, b) in reports_a.iter().zip(&reports_b) {
            match (a, b) {
                (Ok(x), Ok(y)) => assert_eq!(x, y),
                (Err(StoreError::BatchRejected { .. }), Err(StoreError::BatchRejected { .. })) => {}
                other => panic!("report mismatch: {other:?}"),
            }
        }
        assert_eq!(dd_a.next_seq(), dd_b.next_seq());
        // Both directories recover to the same database.
        drop((dd_a, dd_b));
        let (_, rec_a, _) = DataDir::open(&root_a).unwrap();
        let (_, rec_b, _) = DataDir::open(&root_b).unwrap();
        assert_eq!(rec_a, rec_b);
        std::fs::remove_dir_all(&root_a).unwrap();
        std::fs::remove_dir_all(&root_b).unwrap();
    }

    #[test]
    fn backends_round_trip_through_trait() {
        let root = tmp("backends");
        let db = shop();
        let csv = CsvDirBackend(root.join("csv"));
        let col = ColumnarBackend {
            dir: root.join("col"),
            name: "shop".to_string(),
        };
        for backend in [&csv as &dyn StorageBackend, &col] {
            backend.save(&db).unwrap();
            let back = backend.load().unwrap();
            // CSV loses only the database name (directory-derived); the
            // columnar backend is bit-exact.
            assert_eq!(back.total_rows(), db.total_rows());
            if backend.kind() == "columnar" {
                assert_eq!(back, db);
            }
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    /// A shop with deferrable (non-key, non-time) columns on both tables.
    fn wide_shop() -> Database {
        let mut db = Database::new("shop");
        db.create_table(
            TableSchema::builder("customers")
                .column("customer_id", DataType::Int)
                .column("signup", DataType::Timestamp)
                .nullable_column("region", DataType::Text)
                .nullable_column("score", DataType::Float)
                .primary_key("customer_id")
                .time_column("signup")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("orders")
                .column("order_id", DataType::Int)
                .column("customer_id", DataType::Int)
                .nullable_column("note", DataType::Text)
                .column("placed", DataType::Timestamp)
                .primary_key("order_id")
                .time_column("placed")
                .foreign_key("customer_id", "customers")
                .build()
                .unwrap(),
        )
        .unwrap();
        for i in 0..5i64 {
            db.insert(
                "customers",
                Row::new()
                    .push(i)
                    .push(Value::Timestamp(i * 100))
                    .push(format!("region-{i}"))
                    .push(i as f64 * 0.5),
            )
            .unwrap();
        }
        db
    }

    fn wide_order(id: i64, cust: i64, t: i64) -> RowBatch {
        RowBatch::new().with(
            "orders",
            Row::new()
                .push(id)
                .push(cust)
                .push(Value::Null)
                .push(Value::Timestamp(t)),
        )
    }

    #[test]
    fn partial_open_defers_unselected_columns() {
        let root = tmp("partial-defer");
        let db = wide_shop();
        drop(DataDir::create(&root, &db).unwrap());

        let (_dd, partial_db, report, partial) =
            DataDir::open_columns(&root, &BaseColumnSelection::default()).unwrap();
        assert_eq!(report.replayed, 0);
        // customers: region + score deferred; orders: note deferred.
        assert_eq!(partial.deferred_columns, 3);
        assert_eq!(partial.partial_tables, 2);
        assert!(partial.deferred_bytes > 0);
        let customers = partial_db.table("customers").unwrap();
        assert!(customers.is_partially_loaded());
        assert_eq!(customers.deferred_columns(), ["region", "score"]);
        assert_eq!(customers.len(), 5);
        // Placeholders are all-NULL but correctly typed and sized; loaded
        // columns (keys, time) are real.
        assert_eq!(customers.value_by_name(2, "region").unwrap(), Value::Null);
        assert_eq!(customers.value_by_name(2, "score").unwrap(), Value::Null);
        assert_eq!(
            customers.value_by_name(2, "customer_id").unwrap(),
            Value::Int(2)
        );
        assert_eq!(customers.row_by_key(&Value::Int(4)), Some(4));
        assert_eq!(customers.time_span(), Some((0, 400)));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn partially_loaded_tables_refuse_ingest() {
        let root = tmp("partial-refuse");
        let db = wide_shop();
        drop(DataDir::create(&root, &db).unwrap());
        let (mut dd, mut partial_db, _report, _partial) =
            DataDir::open_columns(&root, &BaseColumnSelection::default()).unwrap();
        let batch = RowBatch::new().with(
            "customers",
            Row::new()
                .push(9i64)
                .push(Value::Timestamp(900))
                .push(Value::Null)
                .push(Value::Null),
        );
        let err = dd
            .ingest(&mut partial_db, batch, &IngestPolicy::default())
            .unwrap_err();
        assert!(
            matches!(err, StoreError::PartiallyLoaded { ref table, .. } if table == "customers")
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn wal_touched_tables_load_fully() {
        let root = tmp("partial-wal");
        let mut db = wide_shop();
        let mut dd = DataDir::create(&root, &db).unwrap();
        dd.ingest(&mut db, wide_order(1, 0, 500), &IngestPolicy::default())
            .unwrap();
        drop(dd);

        let (_dd, partial_db, report, partial) =
            DataDir::open_columns(&root, &BaseColumnSelection::default()).unwrap();
        assert_eq!(report.replayed, 1);
        // orders is WAL-touched, so its `note` column is real, and the
        // replayed row landed; customers stays partial.
        let orders = partial_db.table("orders").unwrap();
        assert!(!orders.is_partially_loaded());
        assert_eq!(orders.len(), 1);
        assert!(partial_db.table("customers").unwrap().is_partially_loaded());
        assert_eq!(partial.deferred_columns, 2);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn extra_columns_and_expected_rows_widen_the_load() {
        let root = tmp("partial-extra");
        let db = wide_shop();
        drop(DataDir::create(&root, &db).unwrap());

        // Selecting `score` leaves only `region` deferred on customers.
        let sel = BaseColumnSelection {
            extra_columns: vec![("customers".into(), vec!["score".into()])],
            expected_rows: vec![("customers".into(), 5), ("orders".into(), 0)],
            ..Default::default()
        };
        let (_dd, pdb, _report, partial) = DataDir::open_columns(&root, &sel).unwrap();
        let customers = pdb.table("customers").unwrap();
        assert_eq!(customers.deferred_columns(), ["region"]);
        assert_eq!(
            customers.value_by_name(3, "score").unwrap(),
            Value::Float(1.5)
        );
        assert_eq!(partial.deferred_columns, 2); // region + orders.note

        // An expected-rows mismatch forces the table full: the base holds 5
        // customers, not 3, so its tail is not covered by the caller's
        // baked state.
        let sel = BaseColumnSelection {
            expected_rows: vec![("customers".into(), 3)],
            ..Default::default()
        };
        let (_dd, pdb, _report, _partial) = DataDir::open_columns(&root, &sel).unwrap();
        let customers = pdb.table("customers").unwrap();
        assert!(!customers.is_partially_loaded());
        assert_eq!(
            customers.value_by_name(0, "region").unwrap(),
            Value::Text("region-0".into())
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn partial_load_matches_full_load_on_selected_columns() {
        let root = tmp("partial-match");
        let mut db = wide_shop();
        let mut dd = DataDir::create(&root, &db).unwrap();
        dd.ingest(&mut db, wide_order(1, 2, 500), &IngestPolicy::default())
            .unwrap();
        drop(dd);

        let (_dd, full_db, _r) = DataDir::open(&root).unwrap();
        let sel = BaseColumnSelection {
            extra_columns: vec![("customers".into(), vec!["region".into(), "score".into()])],
            ..Default::default()
        };
        let (_dd2, partial_db, _r2, partial) = DataDir::open_columns(&root, &sel).unwrap();
        // Everything was selected (or WAL-forced), so the two opens agree
        // bit-for-bit.
        assert_eq!(partial.deferred_columns, 0);
        assert_eq!(partial_db, full_db);
        assert_eq!(full_db, db);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
