//! The ingest write-ahead log: framed, checksummed, torn-tail tolerant.
//!
//! Every [`Database::ingest`](crate::Database::ingest) call through a
//! [`DataDir`](super::DataDir) first appends one record — the serialized
//! [`IngestPolicy`] plus the full
//! [`RowBatch`] — and flushes it to disk *before* the
//! batch is applied in memory. Because ingest is deterministic (DESIGN.md
//! §10), replaying the committed records against the base snapshot
//! reproduces the database bit for bit; a crash mid-append leaves a torn
//! tail that the frame checksums detect and recovery truncates.
//!
//! Record framing (after a 16-byte file header, see DESIGN.md §14.4):
//!
//! ```text
//! [u32 payload_len][u32 crc32(payload)][payload]
//! kind 1 (single ingest):
//!   payload = u64 seq · u8 1 · policy (4 bytes) · batch
//! kind 2 (group commit):
//!   payload = u64 first_seq · u8 2 · u32 count · count × (policy · batch)
//! ```
//!
//! A record is **committed** iff its full frame is on disk and the CRC
//! matches; everything after the first non-committed byte is the torn tail.
//! A group frame ([`Wal::append_group`]) carries `count` consecutive
//! batches (`first_seq`, `first_seq + 1`, …) under **one** CRC and one
//! `sync_data` — so a crash anywhere inside the frame fails the checksum
//! and recovery drops the *whole* group. Acknowledged groups are
//! all-or-nothing by construction: there is no byte offset at which a
//! proper subset of a group survives (DESIGN.md §14.8).
//!
//! ```
//! use relgraph_store::persist::wal::Wal;
//! use relgraph_store::{IngestPolicy, Row, RowBatch};
//!
//! let dir = std::env::temp_dir().join(format!("relgraph-wal-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("wal.log");
//! let mut wal = Wal::open(&path).unwrap();
//! let batch = RowBatch::new().with("t", Row::new().push(1i64));
//! wal.append(1, &IngestPolicy::default(), &batch).unwrap();
//!
//! // Replay sees exactly the committed record.
//! let scan = Wal::scan(&path, 0).unwrap();
//! assert_eq!(scan.records.len(), 1);
//! assert_eq!(scan.records[0].seq, 1);
//! assert!(scan.torn.is_none());
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use relgraph_obs as obs;

use crate::error::{StoreError, StoreResult};
use crate::ingest::{IngestPolicy, RowBatch};

use super::format::{
    check_version, crc32, io_err, sync_dir, ByteReader, ByteWriter, FORMAT_VERSION, MAGIC_WAL,
};

/// Byte length of the WAL file header.
pub const WAL_HEADER_LEN: u64 = 16;
/// Hard ceiling on a single record's payload (a length prefix beyond this
/// is treated as torn/corrupt rather than attempted).
pub const MAX_RECORD_LEN: u32 = 1 << 30;

const KIND_INGEST: u8 = 1;
const KIND_GROUP: u8 = 2;

/// Encode one `(policy, batch)` pair as the `policy · batch` byte run a
/// record payload carries — identical between the kind-1 layout and each
/// member of a kind-2 group. The commit pipeline encodes at submission
/// time (so its byte window measures real on-disk cost) and hands the
/// members to [`Wal::append_group_encoded`] at flush.
pub fn encode_member(policy: &IngestPolicy, batch: &RowBatch) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_policy(policy);
    w.put_batch(batch);
    w.into_bytes()
}

/// An append handle on a write-ahead log file.
#[derive(Debug)]
pub struct Wal {
    file: std::fs::File,
    path: PathBuf,
}

impl Wal {
    /// Open `path` for appending, creating it (with its header) if absent.
    /// Refuses a file whose header is malformed or from a newer version —
    /// run recovery first if the file may be damaged.
    pub fn open(path: &Path) -> StoreResult<Self> {
        let exists = path.exists();
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        if !exists || file.metadata().map_err(|e| io_err(path, e))?.len() == 0 {
            let mut header = [0u8; WAL_HEADER_LEN as usize];
            header[0..4].copy_from_slice(MAGIC_WAL);
            header[4..6].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
            file.write_all(&header).map_err(|e| io_err(path, e))?;
            file.sync_data().map_err(|e| io_err(path, e))?;
            // Make the file's directory entry durable too: without this, a
            // power loss could drop the whole file even after appends were
            // fsync-acknowledged.
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                sync_dir(parent)?;
            }
        } else {
            let mut header = [0u8; WAL_HEADER_LEN as usize];
            {
                use std::io::Seek;
                file.seek(std::io::SeekFrom::Start(0))
                    .map_err(|e| io_err(path, e))?;
            }
            file.read_exact(&mut header)
                .map_err(|_| StoreError::Corrupt {
                    file: path.display().to_string(),
                    message: "WAL header truncated".into(),
                })?;
            check_version(
                &path.display().to_string(),
                &header[0..4],
                MAGIC_WAL,
                u16::from_le_bytes([header[4], header[5]]),
            )?;
        }
        Ok(Wal {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Frame `payload`, append it, and flush to disk with one `sync_data`.
    /// Returns the frame length in bytes. `records` is how many logical
    /// ingest batches the frame covers (for observability).
    fn append_frame(&mut self, payload: Vec<u8>, records: u64) -> StoreResult<u64> {
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file
            .write_all(&frame)
            .map_err(|e| io_err(&self.path, e))?;
        self.file.sync_data().map_err(|e| io_err(&self.path, e))?;
        if obs::enabled() {
            obs::add("wal.append.records", records);
            obs::add("wal.append.bytes", frame.len() as u64);
            obs::add("persist.wal.sync_calls", 1);
            obs::add("persist.wal.group_bytes", frame.len() as u64);
            obs::observe("persist.wal.group_size", records as f64);
        }
        Ok(frame.len() as u64)
    }

    /// Append one ingest record and flush it to disk (write-ahead: the
    /// caller applies the batch in memory only after this returns).
    pub fn append(&mut self, seq: u64, policy: &IngestPolicy, batch: &RowBatch) -> StoreResult<()> {
        let mut payload = ByteWriter::new();
        payload.put_u64(seq);
        payload.put_u8(KIND_INGEST);
        payload.put_policy(policy);
        payload.put_batch(batch);
        self.append_frame(payload.into_bytes(), 1)?;
        Ok(())
    }

    /// Group commit: append `entries.len()` consecutive ingest batches
    /// (sequences `first_seq`, `first_seq + 1`, …) as **one** framed record
    /// under one CRC, flushed with **one** `sync_data`. Durability is
    /// all-or-nothing: a crash anywhere inside the frame fails the group
    /// checksum and recovery truncates the whole group, so no proper
    /// subset of the entries can ever be replayed. Returns the frame
    /// length in bytes.
    ///
    /// A single entry is written in the plain [`append`](Self::append)
    /// kind-1 layout — group framing never changes the on-disk format of a
    /// lone batch.
    pub fn append_group(
        &mut self,
        first_seq: u64,
        entries: &[(IngestPolicy, RowBatch)],
    ) -> StoreResult<u64> {
        let members: Vec<Vec<u8>> = entries
            .iter()
            .map(|(policy, batch)| encode_member(policy, batch))
            .collect();
        self.append_group_encoded(first_seq, &members)
    }

    /// [`append_group`](Self::append_group) over members already encoded
    /// with [`encode_member`] — the commit-pipeline path, which sizes its
    /// byte window on the encoded members and must not pay for a second
    /// serialization at flush time.
    pub fn append_group_encoded(
        &mut self,
        first_seq: u64,
        members: &[Vec<u8>],
    ) -> StoreResult<u64> {
        if members.is_empty() {
            return Ok(0);
        }
        let mut payload = ByteWriter::new();
        payload.put_u64(first_seq);
        if let [member] = members {
            payload.put_u8(KIND_INGEST);
            payload.put_raw(member);
            return self.append_frame(payload.into_bytes(), 1);
        }
        payload.put_u8(KIND_GROUP);
        payload.put_u32(members.len() as u32);
        for member in members {
            payload.put_raw(member);
        }
        self.append_frame(payload.into_bytes(), members.len() as u64)
    }

    /// Current file length in bytes.
    pub fn len(&self) -> StoreResult<u64> {
        Ok(self
            .file
            .metadata()
            .map_err(|e| io_err(&self.path, e))?
            .len())
    }

    /// True when the log holds no records (header only).
    pub fn is_empty(&self) -> StoreResult<bool> {
        Ok(self.len()? <= WAL_HEADER_LEN)
    }

    /// Scan `path`, decoding every committed record with `seq > from_seq`.
    /// Stops (without error) at the first torn or corrupt frame; the
    /// returned [`WalScan`] reports the valid prefix length and what ended
    /// it so recovery can truncate.
    pub fn scan(path: &Path, from_seq: u64) -> StoreResult<WalScan> {
        let file_name = path.display().to_string();
        let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
        if bytes.len() < WAL_HEADER_LEN as usize {
            return Err(StoreError::Corrupt {
                file: file_name,
                message: format!("WAL header truncated at {} bytes", bytes.len()),
            });
        }
        check_version(
            &file_name,
            &bytes[0..4],
            MAGIC_WAL,
            u16::from_le_bytes([bytes[4], bytes[5]]),
        )?;
        let mut records = Vec::new();
        let mut pos = WAL_HEADER_LEN as usize;
        let mut torn = None;
        while pos < bytes.len() {
            let start = pos;
            if bytes.len() - pos < 8 {
                torn = Some(format!(
                    "torn frame header at offset {start} ({} trailing bytes)",
                    bytes.len() - pos
                ));
                pos = start;
                break;
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
            let want_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
            pos += 8;
            if len > MAX_RECORD_LEN {
                torn = Some(format!("implausible record length {len} at offset {start}"));
                pos = start;
                break;
            }
            if bytes.len() - pos < len as usize {
                torn = Some(format!(
                    "torn record payload at offset {start}: wanted {len} bytes, have {}",
                    bytes.len() - pos
                ));
                pos = start;
                break;
            }
            let payload = &bytes[pos..pos + len as usize];
            if crc32(payload) != want_crc {
                torn = Some(format!("record checksum mismatch at offset {start}"));
                pos = start;
                break;
            }
            pos += len as usize;
            let mut r = ByteReader::new(payload, &file_name);
            let seq = r.take_u64()?;
            let kind = r.take_u8()?;
            let count = match kind {
                KIND_INGEST => 1u64,
                KIND_GROUP => r.take_u32()? as u64,
                _ => {
                    return Err(StoreError::Corrupt {
                        file: file_name,
                        message: format!("unknown WAL record kind {kind} at offset {start}"),
                    })
                }
            };
            // A group frame expands into `count` consecutive records, all
            // sharing the frame's end offset: truncation points stay frame
            // boundaries, so a group can only be dropped whole.
            for i in 0..count {
                let policy = r.take_policy()?;
                let batch = r.take_batch()?;
                let seq = seq + i;
                if seq > from_seq {
                    records.push(WalRecord {
                        seq,
                        policy,
                        batch,
                        end_offset: pos as u64,
                    });
                }
            }
            if !r.is_empty() {
                return Err(StoreError::Corrupt {
                    file: file_name,
                    message: format!(
                        "{} trailing payload bytes in record at offset {start}",
                        r.remaining()
                    ),
                });
            }
        }
        Ok(WalScan {
            records,
            valid_len: pos as u64,
            file_len: bytes.len() as u64,
            torn,
        })
    }

    /// Truncate the file to `len` bytes (recovery: drop the torn tail).
    pub fn truncate_to(path: &Path, len: u64) -> StoreResult<()> {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        file.set_len(len).map_err(|e| io_err(path, e))?;
        file.sync_data().map_err(|e| io_err(path, e))?;
        Ok(())
    }

    /// Reset the log to just its header (after compaction has folded every
    /// record into the base snapshot).
    pub fn reset(&mut self) -> StoreResult<()> {
        self.file
            .set_len(WAL_HEADER_LEN)
            .map_err(|e| io_err(&self.path, e))?;
        self.file.sync_data().map_err(|e| io_err(&self.path, e))?;
        Ok(())
    }
}

/// One committed, decoded WAL record.
#[derive(Debug, Clone)]
pub struct WalRecord {
    /// Monotonic sequence number (1-based across the directory's lifetime).
    pub seq: u64,
    /// The policy the batch was ingested under.
    pub policy: IngestPolicy,
    /// The full batch, exactly as submitted.
    pub batch: RowBatch,
    /// Byte offset one past this record's frame (a valid truncation point).
    pub end_offset: u64,
}

/// Result of scanning a WAL file.
#[derive(Debug)]
pub struct WalScan {
    /// Committed records with `seq` beyond the requested floor, in order.
    pub records: Vec<WalRecord>,
    /// Length of the valid prefix (a safe truncation point).
    pub valid_len: u64,
    /// Total file length at scan time.
    pub file_len: u64,
    /// Why the scan stopped early, if it did (torn tail / bad checksum).
    pub torn: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("relgraph-wal-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn batch(k: i64) -> RowBatch {
        RowBatch::new().with("t", Row::new().push(k).push(format!("row-{k}")))
    }

    #[test]
    fn append_scan_round_trip() {
        let path = tmp("round-trip");
        let mut wal = Wal::open(&path).unwrap();
        for seq in 1..=3u64 {
            wal.append(seq, &IngestPolicy::coerce_all(), &batch(seq as i64))
                .unwrap();
        }
        let scan = Wal::scan(&path, 0).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert!(scan.torn.is_none());
        assert_eq!(scan.valid_len, scan.file_len);
        assert_eq!(scan.records[2].seq, 3);
        assert_eq!(scan.records[2].batch.rows()[0].1[0], crate::Value::Int(3));
        // A seq floor skips folded-in records.
        let scan = Wal::scan(&path, 2).unwrap();
        assert_eq!(scan.records.len(), 1);
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn every_truncation_point_is_recoverable() {
        let path = tmp("truncate");
        let mut wal = Wal::open(&path).unwrap();
        for seq in 1..=3u64 {
            wal.append(seq, &IngestPolicy::default(), &batch(seq as i64))
                .unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let ends: Vec<u64> = Wal::scan(&path, 0)
            .unwrap()
            .records
            .iter()
            .map(|r| r.end_offset)
            .collect();
        // Truncate at every byte offset: the scan must recover exactly the
        // records whose frames are complete, and flag the tail otherwise.
        for cut in WAL_HEADER_LEN as usize..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = Wal::scan(&path, 0).unwrap();
            let want = ends.iter().filter(|&&e| e <= cut as u64).count();
            assert_eq!(scan.records.len(), want, "cut at {cut}");
            if cut as u64 == WAL_HEADER_LEN || ends.contains(&(cut as u64)) {
                assert!(scan.torn.is_none(), "clean cut at {cut} flagged as torn");
            } else {
                assert!(scan.torn.is_some(), "torn cut at {cut} not flagged");
                assert_eq!(
                    scan.valid_len,
                    ends[..want].last().copied().unwrap_or(WAL_HEADER_LEN)
                );
            }
        }
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn group_append_scan_round_trip() {
        let path = tmp("group-round-trip");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(1, &IngestPolicy::default(), &batch(1)).unwrap();
        let entries: Vec<(IngestPolicy, RowBatch)> = (2..=4)
            .map(|k| (IngestPolicy::coerce_all(), batch(k)))
            .collect();
        wal.append_group(2, &entries).unwrap();
        let scan = Wal::scan(&path, 0).unwrap();
        assert!(scan.torn.is_none());
        assert_eq!(
            scan.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        for r in &scan.records[1..] {
            assert_eq!(r.batch.rows()[0].1[0], crate::Value::Int(r.seq as i64));
            // All group members share the group frame's end offset.
            assert_eq!(r.end_offset, scan.records[1].end_offset);
        }
        // The seq floor works inside a group too.
        let scan = Wal::scan(&path, 3).unwrap();
        assert_eq!(
            scan.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![4]
        );
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn single_entry_group_uses_plain_record_layout() {
        let path_a = tmp("group-single-a");
        let path_b = tmp("group-single-b");
        let mut a = Wal::open(&path_a).unwrap();
        let mut b = Wal::open(&path_b).unwrap();
        a.append(7, &IngestPolicy::coerce_all(), &batch(7)).unwrap();
        b.append_group(7, &[(IngestPolicy::coerce_all(), batch(7))])
            .unwrap();
        assert_eq!(
            std::fs::read(&path_a).unwrap(),
            std::fs::read(&path_b).unwrap()
        );
        std::fs::remove_dir_all(path_a.parent().unwrap()).unwrap();
        std::fs::remove_dir_all(path_b.parent().unwrap()).unwrap();
    }

    #[test]
    fn cut_inside_group_drops_whole_group() {
        // Acknowledged groups are all-or-nothing: truncating at *any* byte
        // offset inside the group frame must recover zero group members,
        // never a proper subset.
        let path = tmp("group-torn");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(1, &IngestPolicy::default(), &batch(1)).unwrap();
        let before_group = wal.len().unwrap();
        let entries: Vec<(IngestPolicy, RowBatch)> = (2..=5)
            .map(|k| (IngestPolicy::default(), batch(k)))
            .collect();
        wal.append_group(2, &entries).unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in before_group as usize..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = Wal::scan(&path, 0).unwrap();
            assert_eq!(
                scan.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
                vec![1],
                "cut at {cut} leaked part of an unacknowledged group"
            );
            assert_eq!(scan.valid_len, before_group, "cut at {cut}");
            if cut as u64 != before_group {
                assert!(scan.torn.is_some(), "torn cut at {cut} not flagged");
            }
        }
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn bit_flip_in_group_payload_drops_whole_group() {
        let path = tmp("group-bitflip");
        let mut wal = Wal::open(&path).unwrap();
        let entries: Vec<(IngestPolicy, RowBatch)> = (1..=3)
            .map(|k| (IngestPolicy::default(), batch(k)))
            .collect();
        wal.append_group(1, &entries).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit in the *first* member's region: even the already-read
        // prefix of the group must not survive a failed group CRC.
        let tweak = WAL_HEADER_LEN as usize + 8 + 16;
        bytes[tweak] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let scan = Wal::scan(&path, 0).unwrap();
        assert_eq!(scan.records.len(), 0);
        assert!(scan.torn.unwrap().contains("checksum"));
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn bit_flip_in_payload_is_detected() {
        let path = tmp("bitflip");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(1, &IngestPolicy::default(), &batch(1)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let tweak = bytes.len() - 3;
        bytes[tweak] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let scan = Wal::scan(&path, 0).unwrap();
        assert_eq!(scan.records.len(), 0);
        assert!(scan.torn.unwrap().contains("checksum"));
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }
}
