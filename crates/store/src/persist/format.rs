//! The binary on-disk format: byte codec, checksums, column files, string
//! dictionaries and the versioned manifest.
//!
//! Everything here is normatively specified in DESIGN.md §14 ("Storage
//! model"); this module is the reference implementation. The format is
//! deliberately mmap-friendly — fixed-width little-endian arrays behind a
//! 32-byte aligned header — even though this implementation reads through
//! buffered `std::fs` (the toolchain has no mmap without external crates).
//!
//! ```
//! use relgraph_store::persist::format::{ByteReader, ByteWriter};
//! use relgraph_store::Value;
//!
//! // The codec round-trips every `Value` variant byte-exactly.
//! let mut w = ByteWriter::new();
//! w.put_value(&Value::Text("héllo".into()));
//! w.put_value(&Value::Null);
//! w.put_value(&Value::Float(-0.5));
//! let bytes = w.into_bytes();
//! let mut r = ByteReader::new(&bytes, "doc");
//! assert_eq!(r.take_value().unwrap(), Value::Text("héllo".into()));
//! assert_eq!(r.take_value().unwrap(), Value::Null);
//! assert_eq!(r.take_value().unwrap(), Value::Float(-0.5));
//! assert!(r.is_empty());
//! ```

use std::io::{Read, Write};
use std::path::Path;

use crate::column::Column;
use crate::error::{StoreError, StoreResult};
use crate::ingest::{IngestPolicy, PolicyAction, QuarantinedRow, RowBatch};
use crate::row::Row;
use crate::value::{DataType, Value};

/// Newest on-disk format version this build reads and writes. A major
/// bump means the layout changed incompatibly; readers must refuse newer
/// files with [`StoreError::UnsupportedVersion`].
pub const FORMAT_VERSION: u16 = 1;

/// Magic prefix of column segment files (`*.col`).
pub const MAGIC_COLUMN: &[u8; 4] = b"RGCF";
/// Magic prefix of string-dictionary files (`strings.dict`).
pub const MAGIC_DICT: &[u8; 4] = b"RGSD";
/// Magic prefix of the write-ahead log (`wal.log`).
pub const MAGIC_WAL: &[u8; 4] = b"RGWL";
/// Magic prefix of the quarantine sidecar (`quarantine.bin`).
pub const MAGIC_QUARANTINE: &[u8; 4] = b"RGQR";
/// Magic first line of the `MANIFEST` file.
pub const MANIFEST_MAGIC: &str = "relgraph-data";

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

/// Build the CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) lookup table.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// Incremental CRC-32 (IEEE) state. Feed bytes with [`update`](Self::update),
/// read the digest with [`finish`](Self::finish).
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Feed a byte slice.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.0;
        for &b in bytes {
            c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    /// Final digest.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

// ---------------------------------------------------------------------------
// Byte codec
// ---------------------------------------------------------------------------

/// Little-endian append-only byte encoder for variable-length payloads
/// (WAL records, snapshot sections).
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume into the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`, little-endian two's complement.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern, little-endian.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a length-prefixed (`u32`) UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append raw bytes with no length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a [`Value`] as a tag byte plus its payload.
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.put_u8(0),
            Value::Int(i) => {
                self.put_u8(1);
                self.put_i64(*i);
            }
            Value::Float(x) => {
                self.put_u8(2);
                self.put_f64(*x);
            }
            Value::Text(s) => {
                self.put_u8(3);
                self.put_str(s);
            }
            Value::Bool(b) => {
                self.put_u8(4);
                self.put_u8(*b as u8);
            }
            Value::Timestamp(t) => {
                self.put_u8(5);
                self.put_i64(*t);
            }
        }
    }

    /// Append a [`Row`] as a `u32` arity plus its cells.
    pub fn put_row(&mut self, row: &Row) {
        self.put_u32(row.arity() as u32);
        for v in row.values() {
            self.put_value(v);
        }
    }

    /// Append an [`IngestPolicy`] as four action tags.
    pub fn put_policy(&mut self, p: &IngestPolicy) {
        for a in [
            p.on_type_mismatch,
            p.on_fk_violation,
            p.on_out_of_order,
            p.on_duplicate_key,
        ] {
            self.put_u8(match a {
                PolicyAction::Reject => 0,
                PolicyAction::Quarantine => 1,
                PolicyAction::Coerce => 2,
            });
        }
    }

    /// Append a [`RowBatch`] as a `u32` count plus `(table, row)` pairs.
    pub fn put_batch(&mut self, batch: &RowBatch) {
        self.put_u32(batch.len() as u32);
        for (table, row) in batch.rows() {
            self.put_str(table);
            self.put_row(row);
        }
    }
}

/// Bounds-checked little-endian decoder over a byte slice. Every short
/// read is a structured [`StoreError::Corrupt`] naming the source file.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    file: String,
}

impl<'a> ByteReader<'a> {
    /// Decode from `buf`; `file` names the source in error messages.
    pub fn new(buf: &'a [u8], file: impl Into<String>) -> Self {
        ByteReader {
            buf,
            pos: 0,
            file: file.into(),
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn corrupt(&self, message: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            file: self.file.clone(),
            message: message.into(),
        }
    }

    /// Take `n` raw bytes.
    pub fn take_raw(&mut self, n: usize) -> StoreResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.corrupt(format!(
                "short read: wanted {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Take a single byte.
    pub fn take_u8(&mut self) -> StoreResult<u8> {
        Ok(self.take_raw(1)?[0])
    }

    /// Take a little-endian `u16`.
    pub fn take_u16(&mut self) -> StoreResult<u16> {
        Ok(u16::from_le_bytes(self.take_raw(2)?.try_into().unwrap()))
    }

    /// Take a little-endian `u32`.
    pub fn take_u32(&mut self) -> StoreResult<u32> {
        Ok(u32::from_le_bytes(self.take_raw(4)?.try_into().unwrap()))
    }

    /// Take a little-endian `u64`.
    pub fn take_u64(&mut self) -> StoreResult<u64> {
        Ok(u64::from_le_bytes(self.take_raw(8)?.try_into().unwrap()))
    }

    /// Take a little-endian `i64`.
    pub fn take_i64(&mut self) -> StoreResult<i64> {
        Ok(i64::from_le_bytes(self.take_raw(8)?.try_into().unwrap()))
    }

    /// Take a little-endian IEEE-754 `f64`.
    pub fn take_f64(&mut self) -> StoreResult<f64> {
        Ok(f64::from_le_bytes(self.take_raw(8)?.try_into().unwrap()))
    }

    /// Take a `u32`-length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> StoreResult<String> {
        let n = self.take_u32()? as usize;
        let bytes = self.take_raw(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| self.corrupt("string payload is not valid UTF-8"))
    }

    /// Take a [`Value`] (inverse of [`ByteWriter::put_value`]).
    pub fn take_value(&mut self) -> StoreResult<Value> {
        Ok(match self.take_u8()? {
            0 => Value::Null,
            1 => Value::Int(self.take_i64()?),
            2 => Value::Float(self.take_f64()?),
            3 => Value::Text(self.take_str()?),
            4 => Value::Bool(self.take_u8()? != 0),
            5 => Value::Timestamp(self.take_i64()?),
            t => return Err(self.corrupt(format!("unknown value tag {t}"))),
        })
    }

    /// Take a [`Row`] (inverse of [`ByteWriter::put_row`]).
    pub fn take_row(&mut self) -> StoreResult<Row> {
        let arity = self.take_u32()? as usize;
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(self.take_value()?);
        }
        Ok(Row::from(values))
    }

    /// Take an [`IngestPolicy`] (inverse of [`ByteWriter::put_policy`]).
    pub fn take_policy(&mut self) -> StoreResult<IngestPolicy> {
        let mut actions = [PolicyAction::Reject; 4];
        for a in actions.iter_mut() {
            *a = match self.take_u8()? {
                0 => PolicyAction::Reject,
                1 => PolicyAction::Quarantine,
                2 => PolicyAction::Coerce,
                t => return Err(self.corrupt(format!("unknown policy action tag {t}"))),
            };
        }
        Ok(IngestPolicy {
            on_type_mismatch: actions[0],
            on_fk_violation: actions[1],
            on_out_of_order: actions[2],
            on_duplicate_key: actions[3],
        })
    }

    /// Take a [`RowBatch`] (inverse of [`ByteWriter::put_batch`]).
    pub fn take_batch(&mut self) -> StoreResult<RowBatch> {
        let n = self.take_u32()? as usize;
        let mut batch = RowBatch::new();
        for _ in 0..n {
            let table = self.take_str()?;
            let row = self.take_row()?;
            batch.push(table, row);
        }
        Ok(batch)
    }
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

/// Map an `io::Error` on `path` to a structured [`StoreError::Io`].
pub(crate) fn io_err(path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Io(format!("{}: {e}", path.display()))
}

/// Write `bytes` to `path` and `sync_data` before returning, so the file's
/// *contents* survive a power loss. The file's directory *entry* is only
/// durable once the enclosing directory is fsynced too — callers finish
/// with [`sync_dir`] on the parent (or rely on a later `sync_dir` that
/// happens before anything depends on the file existing).
pub(crate) fn write_file_durable(path: &Path, bytes: &[u8]) -> StoreResult<()> {
    let mut file = std::fs::File::create(path).map_err(|e| io_err(path, e))?;
    file.write_all(bytes).map_err(|e| io_err(path, e))?;
    file.sync_data().map_err(|e| io_err(path, e))?;
    Ok(())
}

/// Fsync a directory, making the creations/renames inside it durable.
/// Required after `rename` for atomic file replacement and after creating
/// files that later durability steps (e.g. a WAL reset) assume exist.
pub(crate) fn sync_dir(path: &Path) -> StoreResult<()> {
    let dir = std::fs::File::open(path).map_err(|e| io_err(path, e))?;
    dir.sync_all().map_err(|e| io_err(path, e))?;
    Ok(())
}

/// Validate a file's magic + version header fields.
pub(crate) fn check_version(
    file: &str,
    magic_found: &[u8],
    magic: &[u8; 4],
    version: u16,
) -> StoreResult<()> {
    if magic_found != magic {
        return Err(StoreError::Corrupt {
            file: file.to_string(),
            message: format!(
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(magic),
                String::from_utf8_lossy(magic_found)
            ),
        });
    }
    if version == 0 || version > FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            file: file.to_string(),
            found: version as u32,
            supported: FORMAT_VERSION as u32,
        });
    }
    Ok(())
}

/// Length of the fixed header written by [`write_blob`].
pub const BLOB_HEADER_LEN: usize = 24;

/// Write a checksummed single-blob snapshot file: a 24-byte header
/// (`magic`, format version, body length, body CRC-32) followed by `body`.
/// Used by the graph/model warm-start snapshots, which serialize their
/// payload with [`ByteWriter`] and delegate framing here. Returns the
/// total file size in bytes.
pub fn write_blob(path: &Path, magic: &[u8; 4], body: &[u8]) -> StoreResult<u64> {
    let mut header = ByteWriter::new();
    header.put_raw(magic);
    header.put_u16(FORMAT_VERSION);
    header.put_u16(0); // reserved
    header.put_u64(body.len() as u64);
    header.put_u32(crc32(body));
    header.put_u32(0); // reserved
    let mut bytes = header.into_bytes();
    debug_assert_eq!(bytes.len(), BLOB_HEADER_LEN);
    bytes.extend_from_slice(body);
    let file = std::fs::File::create(path).map_err(|e| io_err(path, e))?;
    {
        use std::io::Write;
        let mut f = std::io::BufWriter::new(&file);
        f.write_all(&bytes).map_err(|e| io_err(path, e))?;
        f.flush().map_err(|e| io_err(path, e))?;
    }
    file.sync_data().map_err(|e| io_err(path, e))?;
    Ok(bytes.len() as u64)
}

/// Read a snapshot file written by [`write_blob`], verifying magic,
/// version, length and checksum; returns the body bytes.
pub fn read_blob(path: &Path, magic: &[u8; 4]) -> StoreResult<Vec<u8>> {
    let name = path.display().to_string();
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    if bytes.len() < BLOB_HEADER_LEN {
        return Err(StoreError::Corrupt {
            file: name,
            message: format!(
                "file is {} byte(s), shorter than the {BLOB_HEADER_LEN}-byte header",
                bytes.len()
            ),
        });
    }
    let mut r = ByteReader::new(&bytes[..BLOB_HEADER_LEN], &name);
    let found_magic = r.take_raw(4)?.to_vec();
    let version = r.take_u16()?;
    check_version(&name, &found_magic, magic, version)?;
    r.take_u16()?; // reserved
    let body_len = r.take_u64()? as usize;
    let crc = r.take_u32()?;
    let body = &bytes[BLOB_HEADER_LEN..];
    if body.len() != body_len {
        return Err(StoreError::Corrupt {
            file: name,
            message: format!("body is {} byte(s), header promises {body_len}", body.len()),
        });
    }
    if crc32(body) != crc {
        return Err(StoreError::Corrupt {
            file: name,
            message: "body checksum mismatch".to_string(),
        });
    }
    Ok(body.to_vec())
}

/// Round `n` up to the next multiple of 8 (section alignment).
pub(crate) fn pad8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

/// Data-type tag byte used in column-file headers.
pub(crate) fn type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Text => 2,
        DataType::Bool => 3,
        DataType::Timestamp => 4,
    }
}

/// Inverse of [`type_tag`].
pub(crate) fn tag_type(tag: u8, file: &str) -> StoreResult<DataType> {
    Ok(match tag {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Text,
        3 => DataType::Bool,
        4 => DataType::Timestamp,
        t => {
            return Err(StoreError::Corrupt {
                file: file.to_string(),
                message: format!("unknown column type tag {t}"),
            })
        }
    })
}

/// Fixed value width in bytes for a column data section.
pub(crate) fn type_width(ty: DataType) -> usize {
    match ty {
        DataType::Int | DataType::Timestamp => 8,
        DataType::Float => 8,
        DataType::Text => 4,
        DataType::Bool => 1,
    }
}

// ---------------------------------------------------------------------------
// String dictionary
// ---------------------------------------------------------------------------

/// Incremental per-table string dictionary: ids are assigned in first-
/// occurrence order, so the writer can stream rows without a second pass.
#[derive(Debug, Default)]
pub struct DictBuilder {
    by_string: std::collections::HashMap<String, u32>,
    strings: Vec<String>,
}

impl DictBuilder {
    /// Empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its stable id.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.by_string.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.by_string.insert(s.to_string(), id);
        self.strings.push(s.to_string());
        id
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Serialize to the `strings.dict` layout (see DESIGN.md §14.3).
    pub fn encode(&self) -> Vec<u8> {
        let bytes_len: usize = self.strings.iter().map(String::len).sum();
        let mut body = Vec::with_capacity((self.strings.len() + 1) * 8 + bytes_len);
        let mut off = 0u64;
        for s in &self.strings {
            body.extend_from_slice(&off.to_le_bytes());
            off += s.len() as u64;
        }
        body.extend_from_slice(&off.to_le_bytes());
        for s in &self.strings {
            body.extend_from_slice(s.as_bytes());
        }
        let mut out = Vec::with_capacity(32 + body.len());
        out.extend_from_slice(MAGIC_DICT);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&[0u8; 2]);
        out.extend_from_slice(&(self.strings.len() as u64).to_le_bytes());
        out.extend_from_slice(&(bytes_len as u64).to_le_bytes());
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&[0u8; 4]);
        out.extend_from_slice(&body);
        out
    }

    /// Write the encoded dictionary to `path`, synced to disk.
    pub fn write_to(&self, path: &Path) -> StoreResult<u64> {
        let bytes = self.encode();
        write_file_durable(path, &bytes)?;
        Ok(bytes.len() as u64)
    }
}

/// Decode a `strings.dict` file into its string table.
pub fn read_dict(path: &Path) -> StoreResult<Vec<String>> {
    let file = path.display().to_string();
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    if bytes.len() < 32 {
        return Err(StoreError::Corrupt {
            file,
            message: format!("dictionary header truncated at {} bytes", bytes.len()),
        });
    }
    check_version(
        &file,
        &bytes[0..4],
        MAGIC_DICT,
        u16::from_le_bytes([bytes[4], bytes[5]]),
    )?;
    let count = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    let bytes_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
    let want_crc = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
    let body = &bytes[32..];
    // `count` and `bytes_len` live in the header, outside the body CRC, so
    // a bit flip there must fail this structural check — with checked
    // arithmetic, since a flipped high bit would overflow the computation.
    let want_len = count
        .checked_add(1)
        .and_then(|n| n.checked_mul(8))
        .and_then(|n| n.checked_add(bytes_len));
    if want_len != Some(body.len()) {
        return Err(StoreError::Corrupt {
            file,
            message: format!(
                "dictionary body is {} bytes, header promises {count} entries + {bytes_len} string bytes",
                body.len()
            ),
        });
    }
    if crc32(body) != want_crc {
        return Err(StoreError::Corrupt {
            file,
            message: "dictionary checksum mismatch".into(),
        });
    }
    let mut offsets = Vec::with_capacity(count + 1);
    for i in 0..=count {
        offsets.push(u64::from_le_bytes(body[i * 8..i * 8 + 8].try_into().unwrap()) as usize);
    }
    let blob = &body[(count + 1) * 8..];
    let mut strings = Vec::with_capacity(count);
    for w in offsets.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if lo > hi || hi > blob.len() {
            return Err(StoreError::Corrupt {
                file,
                message: format!("dictionary offsets out of order or out of range ({lo}..{hi})"),
            });
        }
        let s = std::str::from_utf8(&blob[lo..hi]).map_err(|_| StoreError::Corrupt {
            file: file.clone(),
            message: "dictionary entry is not valid UTF-8".into(),
        })?;
        strings.push(s.to_string());
    }
    Ok(strings)
}

// ---------------------------------------------------------------------------
// Column segment files
// ---------------------------------------------------------------------------

/// Streaming writer for one column segment file. Values append straight to
/// disk (the running CRC and the validity bitmap stay in memory — 1 bit per
/// row); [`finish`](Self::finish) writes the bitmap, patches the header and
/// syncs. Peak memory is O(rows / 8) regardless of column width.
#[derive(Debug)]
pub struct ColumnFileWriter {
    file: std::fs::File,
    path: std::path::PathBuf,
    ty: DataType,
    rows: u64,
    data_crc: Crc32,
    bitmap: Vec<u8>,
}

impl ColumnFileWriter {
    /// Create `path`, writing a placeholder header.
    pub fn create(path: &Path, ty: DataType) -> StoreResult<Self> {
        let mut file = std::fs::File::create(path).map_err(|e| io_err(path, e))?;
        file.write_all(&[0u8; 32]).map_err(|e| io_err(path, e))?;
        Ok(ColumnFileWriter {
            file,
            path: path.to_path_buf(),
            ty,
            rows: 0,
            data_crc: Crc32::new(),
            bitmap: Vec::new(),
        })
    }

    fn put(&mut self, bytes: &[u8], valid: bool) -> StoreResult<()> {
        self.data_crc.update(bytes);
        self.file
            .write_all(bytes)
            .map_err(|e| io_err(&self.path, e))?;
        let i = self.rows as usize;
        if i / 8 >= self.bitmap.len() {
            self.bitmap.push(0);
        }
        if valid {
            self.bitmap[i / 8] |= 1 << (i % 8);
        }
        self.rows += 1;
        Ok(())
    }

    /// Append one cell. `id` carries the dictionary id for `Text` columns
    /// (ignored otherwise); the cell's raw in-memory value and its validity
    /// bit are both preserved so reload is bit-exact.
    pub fn push_parts(
        &mut self,
        i64v: i64,
        f64v: f64,
        boolv: bool,
        id: u32,
        valid: bool,
    ) -> StoreResult<()> {
        match self.ty {
            DataType::Int | DataType::Timestamp => self.put(&i64v.to_le_bytes(), valid),
            DataType::Float => self.put(&f64v.to_le_bytes(), valid),
            DataType::Bool => self.put(&[boolv as u8], valid),
            DataType::Text => self.put(&id.to_le_bytes(), valid),
        }
    }

    /// Pad the data section, append the validity bitmap, patch the header
    /// with the final counts and checksums, and sync to disk. Returns the
    /// file's total size in bytes.
    pub fn finish(mut self) -> StoreResult<u64> {
        use std::io::Seek;
        let width = type_width(self.ty);
        let data_len = self.rows as usize * width;
        let pad = pad8(data_len) - data_len;
        self.file
            .write_all(&[0u8; 8][..pad])
            .map_err(|e| io_err(&self.path, e))?;
        let valid_crc = crc32(&self.bitmap);
        self.file
            .write_all(&self.bitmap)
            .map_err(|e| io_err(&self.path, e))?;
        let mut header = [0u8; 32];
        header[0..4].copy_from_slice(MAGIC_COLUMN);
        header[4..6].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        header[6] = type_tag(self.ty);
        header[7] = width as u8;
        header[8..16].copy_from_slice(&self.rows.to_le_bytes());
        header[16..20].copy_from_slice(&self.data_crc.finish().to_le_bytes());
        header[20..24].copy_from_slice(&valid_crc.to_le_bytes());
        self.file
            .seek(std::io::SeekFrom::Start(0))
            .map_err(|e| io_err(&self.path, e))?;
        self.file
            .write_all(&header)
            .map_err(|e| io_err(&self.path, e))?;
        self.file.sync_data().map_err(|e| io_err(&self.path, e))?;
        Ok((32 + pad8(data_len) + self.bitmap.len()) as u64)
    }
}

/// Write an in-memory [`Column`] to `path`, interning text into `dict`.
pub fn write_column_file(path: &Path, col: &Column, dict: &mut DictBuilder) -> StoreResult<u64> {
    let mut w = ColumnFileWriter::create(path, col.data_type())?;
    match col {
        Column::Int { data, valid } | Column::Timestamp { data, valid } => {
            for (v, &ok) in data.iter().zip(valid) {
                w.push_parts(*v, 0.0, false, 0, ok)?;
            }
        }
        Column::Float { data, valid } => {
            for (v, &ok) in data.iter().zip(valid) {
                w.push_parts(0, *v, false, 0, ok)?;
            }
        }
        Column::Bool { data, valid } => {
            for (v, &ok) in data.iter().zip(valid) {
                w.push_parts(0, 0.0, *v, 0, ok)?;
            }
        }
        Column::Text { data, valid } => {
            for (v, &ok) in data.iter().zip(valid) {
                let id = dict.intern(v);
                w.push_parts(0, 0.0, false, id, ok)?;
            }
        }
    }
    w.finish()
}

/// Decoded column-file header.
#[derive(Debug, Clone, Copy)]
pub struct ColumnHeader {
    /// Column data type.
    pub ty: DataType,
    /// Number of rows.
    pub rows: u64,
    /// CRC-32 of the (unpadded) data section.
    pub data_crc: u32,
    /// CRC-32 of the validity bitmap.
    pub valid_crc: u32,
}

/// Parse and validate the 32-byte header of a column file.
pub fn read_column_header(file: &str, header: &[u8]) -> StoreResult<ColumnHeader> {
    if header.len() < 32 {
        return Err(StoreError::Corrupt {
            file: file.to_string(),
            message: format!("column header truncated at {} bytes", header.len()),
        });
    }
    check_version(
        file,
        &header[0..4],
        MAGIC_COLUMN,
        u16::from_le_bytes([header[4], header[5]]),
    )?;
    let ty = tag_type(header[6], file)?;
    if header[7] as usize != type_width(ty) {
        return Err(StoreError::Corrupt {
            file: file.to_string(),
            message: format!(
                "declared width {} does not match type {ty} (expected {})",
                header[7],
                type_width(ty)
            ),
        });
    }
    Ok(ColumnHeader {
        ty,
        rows: u64::from_le_bytes(header[8..16].try_into().unwrap()),
        data_crc: u32::from_le_bytes(header[16..20].try_into().unwrap()),
        valid_crc: u32::from_le_bytes(header[20..24].try_into().unwrap()),
    })
}

/// Read a column file fully into an in-memory [`Column`], resolving text
/// ids through `dict`. Verifies both section checksums.
pub fn read_column_file(path: &Path, dict: &[String]) -> StoreResult<Column> {
    let file = path.display().to_string();
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    if bytes.len() < 32 {
        return Err(StoreError::Corrupt {
            file,
            message: format!("column file truncated at {} bytes", bytes.len()),
        });
    }
    let h = read_column_header(&file, &bytes[0..32])?;
    let n = h.rows as usize;
    let width = type_width(h.ty);
    let data_len = n * width;
    let valid_len = n.div_ceil(8);
    let want = 32 + pad8(data_len) + valid_len;
    if bytes.len() != want {
        return Err(StoreError::Corrupt {
            file,
            message: format!(
                "column file is {} bytes, header promises {want}",
                bytes.len()
            ),
        });
    }
    let data = &bytes[32..32 + data_len];
    let bitmap = &bytes[32 + pad8(data_len)..];
    if crc32(data) != h.data_crc {
        return Err(StoreError::Corrupt {
            file,
            message: "data-section checksum mismatch".into(),
        });
    }
    if crc32(bitmap) != h.valid_crc {
        return Err(StoreError::Corrupt {
            file,
            message: "validity-bitmap checksum mismatch".into(),
        });
    }
    let valid: Vec<bool> = (0..n)
        .map(|i| bitmap[i / 8] & (1 << (i % 8)) != 0)
        .collect();
    let take_i64 = |i: usize| i64::from_le_bytes(data[i * 8..i * 8 + 8].try_into().unwrap());
    Ok(match h.ty {
        DataType::Int => Column::Int {
            data: (0..n).map(take_i64).collect(),
            valid,
        },
        DataType::Timestamp => Column::Timestamp {
            data: (0..n).map(take_i64).collect(),
            valid,
        },
        DataType::Float => Column::Float {
            data: (0..n)
                .map(|i| f64::from_le_bytes(data[i * 8..i * 8 + 8].try_into().unwrap()))
                .collect(),
            valid,
        },
        DataType::Bool => Column::Bool {
            data: (0..n).map(|i| data[i] != 0).collect(),
            valid,
        },
        DataType::Text => {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let id = u32::from_le_bytes(data[i * 4..i * 4 + 4].try_into().unwrap()) as usize;
                let s = dict.get(id).ok_or_else(|| StoreError::Corrupt {
                    file: file.clone(),
                    message: format!(
                        "text id {id} out of dictionary range ({} entries)",
                        dict.len()
                    ),
                })?;
                out.push(s.clone());
            }
            Column::Text { data: out, valid }
        }
    })
}

/// Read and validate only the 32-byte header of a column file — magic,
/// version, type tag, declared width and row count — without touching the
/// body. The partial-load path ([`DataDir::open_columns`]) uses this to
/// size a deferred all-NULL placeholder for columns it skips, paying one
/// small read instead of the full segment.
///
/// [`DataDir::open_columns`]: super::DataDir::open_columns
pub fn peek_column_header(path: &Path) -> StoreResult<ColumnHeader> {
    let file = path.display().to_string();
    let mut header = [0u8; 32];
    let mut f = std::fs::File::open(path).map_err(|e| io_err(path, e))?;
    f.read_exact(&mut header).map_err(|_| StoreError::Corrupt {
        file: file.clone(),
        message: "column file shorter than its 32-byte header".into(),
    })?;
    read_column_header(&file, &header)
}

/// Stream a column file in fixed-size chunks, verifying checksums without
/// materializing the column. Returns the row count. This is the out-of-core
/// read path used by the scale harness: peak memory is one chunk.
pub fn verify_column_file(path: &Path) -> StoreResult<u64> {
    let file = path.display().to_string();
    let mut f = std::fs::File::open(path).map_err(|e| io_err(path, e))?;
    let mut header = [0u8; 32];
    f.read_exact(&mut header).map_err(|_| StoreError::Corrupt {
        file: file.clone(),
        message: "column header truncated".into(),
    })?;
    let h = read_column_header(&file, &header)?;
    let n = h.rows as usize;
    let width = type_width(h.ty);
    let data_len = n * width;
    let mut crc = Crc32::new();
    let mut left = data_len;
    let mut chunk = vec![0u8; 1 << 20];
    while left > 0 {
        let take = left.min(chunk.len());
        f.read_exact(&mut chunk[..take])
            .map_err(|_| StoreError::Corrupt {
                file: file.clone(),
                message: "data section truncated".into(),
            })?;
        crc.update(&chunk[..take]);
        left -= take;
    }
    if crc.finish() != h.data_crc {
        return Err(StoreError::Corrupt {
            file,
            message: "data-section checksum mismatch".into(),
        });
    }
    let mut pad = vec![0u8; pad8(data_len) - data_len];
    f.read_exact(&mut pad).map_err(|_| StoreError::Corrupt {
        file: file.clone(),
        message: "padding truncated".into(),
    })?;
    let mut bitmap = vec![0u8; n.div_ceil(8)];
    f.read_exact(&mut bitmap).map_err(|_| StoreError::Corrupt {
        file: file.clone(),
        message: "validity bitmap truncated".into(),
    })?;
    if crc32(&bitmap) != h.valid_crc {
        return Err(StoreError::Corrupt {
            file,
            message: "validity-bitmap checksum mismatch".into(),
        });
    }
    Ok(h.rows)
}

// ---------------------------------------------------------------------------
// Quarantine sidecar
// ---------------------------------------------------------------------------

/// Serialize the quarantine buffer (part of a base snapshot: compaction
/// folds WAL batches into the base, so their quarantined rows must survive
/// alongside the accepted ones).
pub fn encode_quarantine(rows: &[QuarantinedRow]) -> Vec<u8> {
    let mut body = ByteWriter::new();
    for q in rows {
        body.put_str(&q.table);
        body.put_u64(q.batch_row as u64);
        body.put_row(&q.row);
        body.put_str(&q.reason);
    }
    let body = body.into_bytes();
    let mut out = Vec::with_capacity(24 + body.len());
    out.extend_from_slice(MAGIC_QUARANTINE);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&[0u8; 2]);
    out.extend_from_slice(&(rows.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]);
    out.extend_from_slice(&body);
    out
}

/// Inverse of [`encode_quarantine`].
pub fn decode_quarantine(file: &str, bytes: &[u8]) -> StoreResult<Vec<QuarantinedRow>> {
    if bytes.len() < 24 {
        return Err(StoreError::Corrupt {
            file: file.to_string(),
            message: format!("quarantine header truncated at {} bytes", bytes.len()),
        });
    }
    check_version(
        file,
        &bytes[0..4],
        MAGIC_QUARANTINE,
        u16::from_le_bytes([bytes[4], bytes[5]]),
    )?;
    let count = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    let want_crc = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
    let body = &bytes[24..];
    if crc32(body) != want_crc {
        return Err(StoreError::Corrupt {
            file: file.to_string(),
            message: "quarantine checksum mismatch".into(),
        });
    }
    // The count lives in the header, outside the body CRC: a bit flip
    // there passes the checksum, so bound it against the body before
    // trusting it as an allocation size. Each record is at least 20 bytes
    // (two length-prefixed strings, a u64, a row arity).
    const MIN_RECORD_LEN: usize = 20;
    if count
        .checked_mul(MIN_RECORD_LEN)
        .is_none_or(|n| n > body.len())
    {
        return Err(StoreError::Corrupt {
            file: file.to_string(),
            message: format!(
                "quarantine header promises {count} records, body is only {} bytes",
                body.len()
            ),
        });
    }
    let mut r = ByteReader::new(body, file);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let table = r.take_str()?;
        let batch_row = r.take_u64()? as usize;
        let row = r.take_row()?;
        let reason = r.take_str()?;
        out.push(QuarantinedRow {
            table,
            batch_row,
            row,
            reason,
        });
    }
    if !r.is_empty() {
        return Err(StoreError::Corrupt {
            file: file.to_string(),
            message: format!("{} trailing bytes after quarantine records", r.remaining()),
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// The versioned `MANIFEST` at a data directory's root: names the live base
/// generation and how far the WAL had been folded in when that base was
/// written. Text with a trailing CRC line so corruption (including an
/// interrupted rewrite) is always detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Database name (restored on open; part of database equality).
    pub name: String,
    /// Live base generation; the base snapshot lives in `base-<generation>/`.
    pub generation: u64,
    /// Highest WAL sequence number already folded into the base. Recovery
    /// replays only records with `seq > applied_seq`.
    pub applied_seq: u64,
}

impl Manifest {
    /// Render to the on-disk text form (including the CRC line).
    pub fn render(&self) -> String {
        let mut body = format!(
            "{MANIFEST_MAGIC} v1\nname {}\ngeneration {}\napplied_seq {}\n",
            self.name, self.generation, self.applied_seq
        );
        let crc = crc32(body.as_bytes());
        body.push_str(&format!("crc32 {crc:08X}\n"));
        body
    }

    /// Parse and validate the on-disk text form.
    pub fn parse(file: &str, text: &str) -> StoreResult<Self> {
        let corrupt = |message: String| StoreError::Corrupt {
            file: file.to_string(),
            message,
        };
        let crc_at = text
            .rfind("crc32 ")
            .ok_or_else(|| corrupt("missing crc32 line".into()))?;
        let (body, crc_line) = text.split_at(crc_at);
        let want = u32::from_str_radix(crc_line.trim_start_matches("crc32 ").trim(), 16)
            .map_err(|_| corrupt("malformed crc32 line".into()))?;
        if crc32(body.as_bytes()) != want {
            return Err(corrupt("manifest checksum mismatch".into()));
        }
        let mut lines = body.lines();
        let head = lines
            .next()
            .ok_or_else(|| corrupt("empty manifest".into()))?;
        let (magic, version) = head
            .split_once(" v")
            .ok_or_else(|| corrupt(format!("malformed header line `{head}`")))?;
        if magic != MANIFEST_MAGIC {
            return Err(corrupt(format!("bad magic `{magic}`")));
        }
        let version: u32 = version
            .parse()
            .map_err(|_| corrupt(format!("malformed version in `{head}`")))?;
        if version == 0 || version > FORMAT_VERSION as u32 {
            return Err(StoreError::UnsupportedVersion {
                file: file.to_string(),
                found: version,
                supported: FORMAT_VERSION as u32,
            });
        }
        let mut name = None;
        let mut generation = None;
        let mut applied_seq = None;
        for line in lines {
            match line.split_once(' ') {
                Some(("name", v)) => name = Some(v.to_string()),
                Some(("generation", v)) => {
                    generation = Some(
                        v.parse()
                            .map_err(|_| corrupt(format!("bad generation `{v}`")))?,
                    )
                }
                Some(("applied_seq", v)) => {
                    applied_seq = Some(
                        v.parse()
                            .map_err(|_| corrupt(format!("bad applied_seq `{v}`")))?,
                    )
                }
                // Unknown keys are ignored: minor (same-major) format
                // revisions may add fields without breaking old readers.
                _ => {}
            }
        }
        Ok(Manifest {
            name: name.ok_or_else(|| corrupt("missing `name`".into()))?,
            generation: generation.ok_or_else(|| corrupt("missing `generation`".into()))?,
            applied_seq: applied_seq.ok_or_else(|| corrupt("missing `applied_seq`".into()))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn codec_round_trips_rows_policies_batches() {
        let row = Row::from(vec![
            Value::Int(-5),
            Value::Null,
            Value::Text("a,b\"c\n".into()),
            Value::Bool(true),
            Value::Float(f64::MIN_POSITIVE),
            Value::Timestamp(86_400),
        ]);
        let policy = IngestPolicy {
            on_type_mismatch: PolicyAction::Coerce,
            on_fk_violation: PolicyAction::Quarantine,
            on_out_of_order: PolicyAction::Reject,
            on_duplicate_key: PolicyAction::Coerce,
        };
        let batch = RowBatch::new()
            .with("t1", row.clone())
            .with("t2", Row::new().push(1i64));
        let mut w = ByteWriter::new();
        w.put_row(&row);
        w.put_policy(&policy);
        w.put_batch(&batch);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "test");
        assert_eq!(r.take_row().unwrap(), row);
        assert_eq!(r.take_policy().unwrap(), policy);
        let got = r.take_batch().unwrap();
        assert_eq!(got.rows(), batch.rows());
        assert!(r.is_empty());
    }

    #[test]
    fn manifest_round_trip_and_corruption() {
        let m = Manifest {
            name: "shop".into(),
            generation: 3,
            applied_seq: 17,
        };
        let text = m.render();
        assert_eq!(Manifest::parse("MANIFEST", &text).unwrap(), m);
        // Flip a byte in the body: checksum must catch it.
        let bad = text.replace("generation 3", "generation 4");
        assert!(matches!(
            Manifest::parse("MANIFEST", &bad),
            Err(StoreError::Corrupt { .. })
        ));
        // Future major version must be refused.
        let future = format!("{MANIFEST_MAGIC} v99\nname x\ngeneration 1\napplied_seq 0\n");
        let crc = crc32(future.as_bytes());
        let future = format!("{future}crc32 {crc:08X}\n");
        assert!(matches!(
            Manifest::parse("MANIFEST", &future),
            Err(StoreError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn short_reads_are_structured_errors() {
        let mut r = ByteReader::new(&[1, 2, 3], "short");
        let err = r.take_u64().unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }));
        assert!(err.to_string().contains("short"));
    }
}
