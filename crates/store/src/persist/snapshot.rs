//! Base snapshots: a whole [`Database`] as columnar files on disk.
//!
//! A base snapshot is a directory `base-<generation>/` holding
//!
//! * `schema.ddl` — every table schema, in creation order, in the same DDL
//!   dialect [`parse_ddl`] reads;
//! * one subdirectory per table with a `.col` segment file per column and a
//!   shared `strings.dict` for all of the table's `TEXT` columns;
//! * `quarantine.bin` — rows set aside by ingest quarantine policies.
//!
//! Reload is **bit-exact**: every cell, every validity bit, every
//! quarantined row and the primary-key index come back `==` to the
//! original (asserted by `tests/persist_props.rs`).
//!
//! ```
//! use relgraph_store::persist::snapshot::{read_base, write_base};
//! use relgraph_store::{Database, DataType, Row, TableSchema, Value};
//!
//! let mut db = Database::new("shop");
//! db.create_table(
//!     TableSchema::builder("customers")
//!         .column("customer_id", DataType::Int)
//!         .nullable_column("region", DataType::Text)
//!         .primary_key("customer_id")
//!         .build()
//!         .unwrap(),
//! )
//! .unwrap();
//! db.insert("customers", Row::new().push(1i64).push("north")).unwrap();
//! db.insert("customers", Row::from(vec![Value::Int(2), Value::Null])).unwrap();
//!
//! let dir = std::env::temp_dir().join(format!("relgraph-base-doc-{}", std::process::id()));
//! write_base(&dir, &db).unwrap();
//! let back = read_base(&dir, "shop").unwrap();
//! assert_eq!(back, db); // bit-exact round trip
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

use std::path::{Path, PathBuf};

use crate::database::Database;
use crate::ddl::{parse_ddl, render_ddl};
use crate::error::{StoreError, StoreResult};
use crate::row::Row;
use crate::schema::TableSchema;
use crate::table::Table;
use crate::value::{DataType, Value};

use super::format::{
    decode_quarantine, encode_quarantine, io_err, peek_column_header, read_column_file, read_dict,
    sync_dir, write_column_file, write_file_durable, ColumnFileWriter, DictBuilder,
};
use crate::column::Column;

/// File name of a column segment inside a table directory.
fn col_file_name(index: usize, name: &str) -> String {
    // The index prefix keeps file order canonical even if a future schema
    // revision renames columns.
    format!("{index:03}_{name}.col")
}

/// Write `db` as a base snapshot under `dir` (created if needed). Every
/// file and directory is fsynced before this returns, so the snapshot as a
/// whole is durable once the caller fsyncs `dir`'s parent (which
/// `write_manifest_atomic` does before any manifest points at
/// it). Returns total bytes written.
pub fn write_base(dir: &Path, db: &Database) -> StoreResult<u64> {
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    let schemas: Vec<TableSchema> = db.tables().iter().map(|t| t.schema().clone()).collect();
    let ddl = render_ddl(&schemas);
    write_file_durable(&dir.join("schema.ddl"), ddl.as_bytes())?;
    let mut bytes = ddl.len() as u64;
    for table in db.tables() {
        let tdir = dir.join(table.name());
        std::fs::create_dir_all(&tdir).map_err(|e| io_err(&tdir, e))?;
        let mut dict = DictBuilder::new();
        for (i, def) in table.schema().columns().iter().enumerate() {
            let col = table.column(i).expect("schema arity matches columns");
            let path = tdir.join(col_file_name(i, &def.name));
            bytes += write_column_file(&path, col, &mut dict)?;
        }
        bytes += dict.write_to(&tdir.join("strings.dict"))?;
        sync_dir(&tdir)?;
    }
    let quarantine = encode_quarantine(db.quarantine());
    bytes += quarantine.len() as u64;
    write_file_durable(&dir.join("quarantine.bin"), &quarantine)?;
    sync_dir(dir)?;
    relgraph_obs::add("snapshot.base.bytes", bytes);
    Ok(bytes)
}

/// Read a base snapshot back into a [`Database`] named `name`.
pub fn read_base(dir: &Path, name: &str) -> StoreResult<Database> {
    let ddl_path = dir.join("schema.ddl");
    let ddl = std::fs::read_to_string(&ddl_path).map_err(|e| io_err(&ddl_path, e))?;
    let schemas = parse_ddl(&ddl)?;
    let mut tables = Vec::with_capacity(schemas.len());
    for schema in schemas {
        let tdir = dir.join(schema.name());
        let dict = if schema
            .columns()
            .iter()
            .any(|c| c.data_type == DataType::Text)
        {
            read_dict(&tdir.join("strings.dict"))?
        } else {
            // Tables without TEXT columns still write an (empty) dictionary,
            // but tolerate its absence: nothing references it.
            let p = tdir.join("strings.dict");
            if p.exists() {
                read_dict(&p)?
            } else {
                Vec::new()
            }
        };
        let mut columns = Vec::with_capacity(schema.arity());
        let mut rows: Option<usize> = None;
        for (i, def) in schema.columns().iter().enumerate() {
            let path = tdir.join(col_file_name(i, &def.name));
            let col = read_column_file(&path, &dict)?;
            if col.data_type() != def.data_type {
                return Err(StoreError::Corrupt {
                    file: path.display().to_string(),
                    message: format!(
                        "column type {} does not match schema type {}",
                        col.data_type(),
                        def.data_type
                    ),
                });
            }
            match rows {
                None => rows = Some(col.len()),
                Some(n) if n != col.len() => {
                    return Err(StoreError::Corrupt {
                        file: path.display().to_string(),
                        message: format!("column has {} rows, siblings have {n}", col.len()),
                    })
                }
                _ => {}
            }
            columns.push(col);
        }
        tables.push(Table::from_parts(schema, columns)?);
    }
    let qpath = dir.join("quarantine.bin");
    let quarantine = if qpath.exists() {
        let bytes = std::fs::read(&qpath).map_err(|e| io_err(&qpath, e))?;
        decode_quarantine(&qpath.display().to_string(), &bytes)?
    } else {
        Vec::new()
    };
    Ok(Database::from_parts(name.to_string(), tables, quarantine))
}

/// Which base columns a partial load materializes (see
/// [`read_base_columns`]). Every table's primary-key, foreign-key and
/// time columns are always loaded — they back key lookup, FK validation
/// and temporal anchoring; this selection only widens the set.
#[derive(Debug, Clone, Default)]
pub struct BaseColumnSelection {
    /// Tables to materialize in full, rule-free (e.g. tables with
    /// unapplied WAL records, which must be growable and re-featurizable).
    pub full_tables: Vec<String>,
    /// `(table, columns)` to materialize beyond the always-loaded set —
    /// typically a feature spec's value columns.
    pub extra_columns: Vec<(String, Vec<String>)>,
    /// `(table, rows)` the caller expects the base to hold (e.g. a
    /// warm-start graph cursor). A table whose base disagrees is loaded in
    /// full: its unexpected tail is not covered by the caller's baked
    /// state and must be re-derivable from real values. Tables without an
    /// entry skip this check.
    pub expected_rows: Vec<(String, usize)>,
}

impl BaseColumnSelection {
    fn wants_full(&self, table: &str) -> bool {
        self.full_tables.iter().any(|t| t == table)
    }

    fn extra_for(&self, table: &str) -> &[String] {
        self.extra_columns
            .iter()
            .find(|(t, _)| t == table)
            .map(|(_, cols)| cols.as_slice())
            .unwrap_or(&[])
    }

    fn expected_for(&self, table: &str) -> Option<usize> {
        self.expected_rows
            .iter()
            .find(|(t, _)| t == table)
            .map(|&(_, n)| n)
    }
}

/// What a partial base load ([`read_base_columns`]) skipped and kept.
#[derive(Debug, Clone, Default)]
pub struct PartialLoadReport {
    /// Columns materialized from disk.
    pub loaded_columns: usize,
    /// Columns installed as deferred all-NULL placeholders.
    pub deferred_columns: usize,
    /// Body bytes skipped by deferring (file size minus the header read).
    pub deferred_bytes: u64,
    /// Tables left partially loaded (at least one deferred column).
    pub partial_tables: usize,
}

/// Read a base snapshot, materializing only the columns `selection` asks
/// for: every table's primary-key / foreign-key / time columns, any
/// per-table extras, and the full column set of tables forced full (by
/// name or by an [`expected_rows`](BaseColumnSelection::expected_rows)
/// mismatch). Skipped columns become deferred all-NULL placeholders of
/// the correct type and length — their 32-byte headers are still read and
/// validated (magic, version, type, row-count agreement), but their
/// bodies are never touched, which is what cuts warm-boot time and RSS on
/// wide tables. Tables carrying placeholders refuse ingest
/// ([`StoreError::PartiallyLoaded`]) so a fabricated NULL can never feed
/// derived state.
pub fn read_base_columns(
    dir: &Path,
    name: &str,
    selection: &BaseColumnSelection,
) -> StoreResult<(Database, PartialLoadReport)> {
    let ddl_path = dir.join("schema.ddl");
    let ddl = std::fs::read_to_string(&ddl_path).map_err(|e| io_err(&ddl_path, e))?;
    let schemas = parse_ddl(&ddl)?;
    let mut report = PartialLoadReport::default();
    let mut tables = Vec::with_capacity(schemas.len());
    for schema in schemas {
        let tdir = dir.join(schema.name());
        // Columns the load rule always wants: keys and time.
        let mut wanted = vec![false; schema.arity()];
        if let Some(pk) = schema.primary_key_index() {
            wanted[pk] = true;
        }
        if let Some(t) = schema.time_column_index() {
            wanted[t] = true;
        }
        for fk in schema.foreign_keys() {
            if let Some(i) = schema.column_index(&fk.column) {
                wanted[i] = true;
            }
        }
        for extra in selection.extra_for(schema.name()) {
            let i = schema
                .column_index(extra)
                .ok_or_else(|| StoreError::UnknownColumn {
                    table: schema.name().to_string(),
                    column: extra.clone(),
                })?;
            wanted[i] = true;
        }
        let mut full = selection.wants_full(schema.name()) || wanted.iter().all(|&w| w);
        // The expected-rows rule needs the base's row count before any
        // column body is read; the first column's header carries it.
        if !full {
            if let Some(expected) = selection.expected_for(schema.name()) {
                if let Some(def) = schema.columns().first() {
                    let path = tdir.join(col_file_name(0, &def.name));
                    let rows = peek_column_header(&path)?.rows as usize;
                    if rows != expected {
                        full = true;
                    }
                }
            }
        }
        let needs_dict = schema
            .columns()
            .iter()
            .enumerate()
            .any(|(i, c)| c.data_type == DataType::Text && (full || wanted[i]));
        let dict = if needs_dict {
            read_dict(&tdir.join("strings.dict"))?
        } else {
            Vec::new()
        };
        let mut columns = Vec::with_capacity(schema.arity());
        let mut deferred = Vec::new();
        let mut rows: Option<usize> = None;
        for (i, def) in schema.columns().iter().enumerate() {
            let path = tdir.join(col_file_name(i, &def.name));
            let (col_rows, col) = if full || wanted[i] {
                let col = read_column_file(&path, &dict)?;
                report.loaded_columns += 1;
                (col.len(), Some(col))
            } else {
                let header = peek_column_header(&path)?;
                if header.ty != def.data_type {
                    return Err(StoreError::Corrupt {
                        file: path.display().to_string(),
                        message: format!(
                            "column type {} does not match schema type {}",
                            header.ty, def.data_type
                        ),
                    });
                }
                report.deferred_columns += 1;
                report.deferred_bytes += std::fs::metadata(&path)
                    .map_err(|e| io_err(&path, e))?
                    .len()
                    .saturating_sub(32);
                deferred.push(def.name.clone());
                (header.rows as usize, None)
            };
            if let Some(col) = &col {
                if col.data_type() != def.data_type {
                    return Err(StoreError::Corrupt {
                        file: path.display().to_string(),
                        message: format!(
                            "column type {} does not match schema type {}",
                            col.data_type(),
                            def.data_type
                        ),
                    });
                }
            }
            match rows {
                None => rows = Some(col_rows),
                Some(n) if n != col_rows => {
                    return Err(StoreError::Corrupt {
                        file: path.display().to_string(),
                        message: format!("column has {col_rows} rows, siblings have {n}"),
                    })
                }
                _ => {}
            }
            columns.push((def.data_type, col));
        }
        let n = rows.unwrap_or(0);
        let columns: Vec<Column> = columns
            .into_iter()
            .map(|(ty, col)| col.unwrap_or_else(|| Column::nulls(ty, n)))
            .collect();
        let mut table = Table::from_parts(schema, columns)?;
        if !deferred.is_empty() {
            report.partial_tables += 1;
            table.set_deferred_columns(deferred);
        }
        tables.push(table);
    }
    let qpath = dir.join("quarantine.bin");
    let quarantine = if qpath.exists() {
        let bytes = std::fs::read(&qpath).map_err(|e| io_err(&qpath, e))?;
        decode_quarantine(&qpath.display().to_string(), &bytes)?
    } else {
        Vec::new()
    };
    if relgraph_obs::enabled() {
        relgraph_obs::add(
            "persist.partial.deferred_columns",
            report.deferred_columns as u64,
        );
        relgraph_obs::add("persist.partial.deferred_bytes", report.deferred_bytes);
    }
    Ok((
        Database::from_parts(name.to_string(), tables, quarantine),
        report,
    ))
}

// ---------------------------------------------------------------------------
// Streaming writer (out-of-core generation)
// ---------------------------------------------------------------------------

/// Streams one table's rows straight to its column files without ever
/// holding the table in memory. Peak memory is the validity bitmaps (one
/// bit per row per column) plus the string dictionary.
#[derive(Debug)]
pub struct TableStreamWriter {
    schema: TableSchema,
    writers: Vec<ColumnFileWriter>,
    dict: DictBuilder,
    dir: PathBuf,
    rows: u64,
}

impl TableStreamWriter {
    /// Create the table's directory and column files under `base_dir`.
    pub fn create(base_dir: &Path, schema: TableSchema) -> StoreResult<Self> {
        let tdir = base_dir.join(schema.name());
        std::fs::create_dir_all(&tdir).map_err(|e| io_err(&tdir, e))?;
        let mut writers = Vec::with_capacity(schema.arity());
        for (i, def) in schema.columns().iter().enumerate() {
            writers.push(ColumnFileWriter::create(
                &tdir.join(col_file_name(i, &def.name)),
                def.data_type,
            )?);
        }
        Ok(TableStreamWriter {
            dir: tdir,
            schema,
            writers,
            dict: DictBuilder::new(),
            rows: 0,
        })
    }

    /// Append one row. Cells must conform to the schema (NULLs allowed
    /// anywhere at this layer; the caller owns semantic validation).
    pub fn append(&mut self, row: &Row) -> StoreResult<()> {
        if row.arity() != self.schema.arity() {
            return Err(StoreError::ArityMismatch {
                table: self.schema.name().to_string(),
                expected: self.schema.arity(),
                got: row.arity(),
            });
        }
        for ((def, w), v) in self
            .schema
            .columns()
            .iter()
            .zip(self.writers.iter_mut())
            .zip(row.values())
        {
            if !v.is_null() && !v.conforms_to(def.data_type) {
                return Err(StoreError::TypeMismatch {
                    table: self.schema.name().to_string(),
                    column: def.name.clone(),
                    expected: def.data_type,
                    got: v.data_type(),
                });
            }
            match v {
                Value::Null => {
                    // Canonical default payloads, matching `Column::push`.
                    let id = if def.data_type == DataType::Text {
                        self.dict.intern("")
                    } else {
                        0
                    };
                    w.push_parts(0, 0.0, false, id, false)?;
                }
                Value::Int(i) => w.push_parts(*i, 0.0, false, 0, true)?,
                Value::Timestamp(t) => w.push_parts(*t, 0.0, false, 0, true)?,
                Value::Float(x) => w.push_parts(0, *x, false, 0, true)?,
                Value::Bool(b) => w.push_parts(0, 0.0, *b, 0, true)?,
                Value::Text(s) => {
                    let id = self.dict.intern(s);
                    w.push_parts(0, 0.0, false, id, true)?;
                }
            }
        }
        self.rows += 1;
        Ok(())
    }

    /// Rows appended so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Finalize every column file and the dictionary, fsyncing the table
    /// directory so all of it is durable. Returns bytes written.
    pub fn finish(self) -> StoreResult<u64> {
        let mut bytes = 0;
        for w in self.writers {
            bytes += w.finish()?;
        }
        bytes += self.dict.write_to(&self.dir.join("strings.dict"))?;
        sync_dir(&self.dir)?;
        Ok(bytes)
    }
}

/// Streams a whole multi-table database to a base-snapshot directory:
/// `schema.ddl` up front, then rows appended table-by-table in any
/// interleaving. Used by the out-of-core scale harness to write datasets
/// larger than RAM.
#[derive(Debug)]
pub struct DatabaseStreamWriter {
    tables: Vec<TableStreamWriter>,
    by_name: std::collections::HashMap<String, usize>,
    dir: PathBuf,
}

impl DatabaseStreamWriter {
    /// Create `dir` and its `schema.ddl`, plus one open stream per table.
    pub fn create(dir: &Path, schemas: Vec<TableSchema>) -> StoreResult<Self> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        write_file_durable(&dir.join("schema.ddl"), render_ddl(&schemas).as_bytes())?;
        let mut tables = Vec::with_capacity(schemas.len());
        let mut by_name = std::collections::HashMap::new();
        for schema in schemas {
            by_name.insert(schema.name().to_string(), tables.len());
            tables.push(TableStreamWriter::create(dir, schema)?);
        }
        Ok(DatabaseStreamWriter {
            tables,
            by_name,
            dir: dir.to_path_buf(),
        })
    }

    /// Append one row to the named table.
    pub fn append(&mut self, table: &str, row: &Row) -> StoreResult<()> {
        let &i = self
            .by_name
            .get(table)
            .ok_or_else(|| StoreError::UnknownTable(table.to_string()))?;
        self.tables[i].append(row)
    }

    /// Rows appended to the named table so far.
    pub fn rows(&self, table: &str) -> u64 {
        self.by_name
            .get(table)
            .map_or(0, |&i| self.tables[i].rows())
    }

    /// Finalize every table (plus an empty quarantine sidecar) and fsync
    /// the snapshot directory, making the whole base durable. Returns
    /// total bytes written, excluding `schema.ddl`.
    pub fn finish(self) -> StoreResult<u64> {
        let mut bytes = 0;
        for t in self.tables {
            bytes += t.finish()?;
        }
        let q = encode_quarantine(&[]);
        bytes += q.len() as u64;
        write_file_durable(&self.dir.join("quarantine.bin"), &q)?;
        sync_dir(&self.dir)?;
        Ok(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("relgraph-snap-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn shop() -> Database {
        let mut db = Database::new("shop");
        db.create_table(
            TableSchema::builder("customers")
                .column("customer_id", DataType::Int)
                .column("signup", DataType::Timestamp)
                .nullable_column("region", DataType::Text)
                .nullable_column("score", DataType::Float)
                .nullable_column("active", DataType::Bool)
                .primary_key("customer_id")
                .time_column("signup")
                .build()
                .unwrap(),
        )
        .unwrap();
        for i in 0..10i64 {
            let region = if i % 3 == 0 {
                Value::Null
            } else {
                Value::Text(format!("r{}", i % 2))
            };
            db.insert(
                "customers",
                Row::from(vec![
                    Value::Int(i),
                    Value::Timestamp(i * 10),
                    region,
                    if i % 4 == 0 {
                        Value::Null
                    } else {
                        Value::Float(i as f64 / 3.0)
                    },
                    Value::Bool(i % 2 == 0),
                ]),
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn base_round_trip_is_bit_exact() {
        let dir = tmp("roundtrip");
        let db = shop();
        write_base(&dir, &db).unwrap();
        let back = read_base(&dir, "shop").unwrap();
        assert_eq!(back, db);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streaming_writer_matches_full_writer() {
        let dir_a = tmp("stream-a");
        let dir_b = tmp("stream-b");
        let db = shop();
        write_base(&dir_a, &db).unwrap();
        let schemas: Vec<TableSchema> = db.tables().iter().map(|t| t.schema().clone()).collect();
        let mut w = DatabaseStreamWriter::create(&dir_b, schemas).unwrap();
        for t in db.tables() {
            for row in t.rows() {
                w.append(t.name(), &row).unwrap();
            }
        }
        w.finish().unwrap();
        // Both directories decode to the same database.
        assert_eq!(
            read_base(&dir_a, "x").unwrap(),
            read_base(&dir_b, "x").unwrap()
        );
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn short_column_file_is_structured_error() {
        let dir = tmp("short");
        let db = shop();
        write_base(&dir, &db).unwrap();
        let col = dir.join("customers").join(col_file_name(0, "customer_id"));
        let bytes = std::fs::read(&col).unwrap();
        std::fs::write(&col, &bytes[..bytes.len() - 5]).unwrap();
        match read_base(&dir, "shop") {
            Err(StoreError::Corrupt { message, .. }) => {
                assert!(message.contains("bytes"), "unhelpful message: {message}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
