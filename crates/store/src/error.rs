//! Error types for the store crate.

use std::fmt;

use crate::value::DataType;

/// Result alias for store operations.
pub type StoreResult<T> = Result<T, StoreError>;

/// Errors produced by the relational store.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// A table with this name already exists.
    TableExists(String),
    /// No table with this name.
    UnknownTable(String),
    /// No column with this name in the named table.
    UnknownColumn { table: String, column: String },
    /// A row's arity does not match the schema.
    ArityMismatch {
        table: String,
        expected: usize,
        got: usize,
    },
    /// A cell value does not conform to its column type.
    TypeMismatch {
        table: String,
        column: String,
        expected: DataType,
        got: Option<DataType>,
    },
    /// Duplicate primary key on insert.
    DuplicateKey { table: String, key: String },
    /// A primary-key cell was NULL.
    NullKey { table: String },
    /// Foreign-key violation: referenced row does not exist.
    ForeignKeyViolation {
        table: String,
        column: String,
        referenced_table: String,
        key: String,
    },
    /// Schema construction problem (bad PK/FK/time column definitions).
    InvalidSchema(String),
    /// CSV parsing problem.
    Csv { line: usize, message: String },
    /// A query referenced something invalid.
    InvalidQuery(String),
    /// A streaming-ingest batch was rejected by its validation policy.
    /// Nothing from the batch was applied.
    BatchRejected {
        /// Destination table of the offending row.
        table: String,
        /// Index of the offending row within the batch.
        batch_row: usize,
        /// What the row violated.
        reason: String,
    },
    /// A persistence-layer I/O failure (the message names the path).
    Io(String),
    /// An on-disk artifact failed structural validation: bad magic, short
    /// file, checksum mismatch, or a malformed section.
    Corrupt {
        /// The offending file (data-dir-relative where possible).
        file: String,
        /// What failed to validate.
        message: String,
    },
    /// An ingest batch targeted a table whose base columns were only
    /// partially materialized (`DataDir::open_columns`): its deferred
    /// placeholder columns hold NULLs, not data, so growing the table
    /// would derive state from fabricated values. Reopen the directory
    /// fully (or select the table's columns) to ingest into it.
    PartiallyLoaded {
        /// The partially-loaded destination table.
        table: String,
        /// Its deferred (placeholder) columns.
        deferred: Vec<String>,
    },
    /// An on-disk artifact was written by an incompatible format version.
    UnsupportedVersion {
        /// The offending file.
        file: String,
        /// The version recorded in the file.
        found: u32,
        /// The newest version this build can read.
        supported: u32,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::TableExists(t) => write!(f, "table `{t}` already exists"),
            StoreError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            StoreError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            StoreError::ArityMismatch { table, expected, got } => write!(
                f,
                "row arity mismatch for table `{table}`: expected {expected} values, got {got}"
            ),
            StoreError::TypeMismatch { table, column, expected, got } => match got {
                Some(g) => write!(
                    f,
                    "type mismatch in `{table}`.`{column}`: expected {expected}, got {g}"
                ),
                None => write!(
                    f,
                    "type mismatch in `{table}`.`{column}`: expected {expected}, got NULL"
                ),
            },
            StoreError::DuplicateKey { table, key } => {
                write!(f, "duplicate primary key `{key}` in table `{table}`")
            }
            StoreError::NullKey { table } => {
                write!(f, "NULL primary key in table `{table}`")
            }
            StoreError::ForeignKeyViolation { table, column, referenced_table, key } => write!(
                f,
                "foreign key violation: `{table}`.`{column}` = `{key}` has no match in `{referenced_table}`"
            ),
            StoreError::InvalidSchema(msg) => write!(f, "invalid schema: {msg}"),
            StoreError::Csv { line, message } => write!(f, "CSV error at line {line}: {message}"),
            StoreError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            StoreError::BatchRejected { table, batch_row, reason } => write!(
                f,
                "batch rejected at row {batch_row} (table `{table}`): {reason}"
            ),
            StoreError::Io(msg) => write!(f, "I/O error: {msg}"),
            StoreError::Corrupt { file, message } => {
                write!(f, "corrupt persistent data in `{file}`: {message}")
            }
            StoreError::PartiallyLoaded { table, deferred } => write!(
                f,
                "table `{table}` was partially loaded (deferred columns: {}); \
                 reopen the data directory with these columns selected before ingesting",
                deferred.join(", ")
            ),
            StoreError::UnsupportedVersion { file, found, supported } => write!(
                f,
                "`{file}` uses format version {found}, but this build supports at most {supported}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_identifiers() {
        let e = StoreError::UnknownColumn {
            table: "t".into(),
            column: "c".into(),
        };
        assert!(e.to_string().contains('t') && e.to_string().contains('c'));
        let e = StoreError::TypeMismatch {
            table: "t".into(),
            column: "c".into(),
            expected: DataType::Int,
            got: None,
        };
        assert!(e.to_string().contains("NULL"));
    }
}
