//! Columnar tables with primary-key lookup.

use std::collections::HashMap;

use crate::column::Column;
use crate::error::{StoreError, StoreResult};
use crate::row::Row;
use crate::schema::TableSchema;
use crate::value::{Timestamp, Value};

/// A single table: schema + typed columns + primary-key index.
///
/// Rows are append-only and identified by their insertion index
/// (`0..table.len()`); the graph layer uses that index as the node id.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: TableSchema,
    columns: Vec<Column>,
    /// Map from primary-key value (its [`Value::group_key`]) to row index.
    pk_index: HashMap<String, usize>,
    /// Names of columns whose cells are deferred all-NULL placeholders
    /// from a partial base load (`DataDir::open_columns`) rather than real
    /// data. Non-empty only on partially-loaded tables, which refuse
    /// ingest — see [`Table::deferred_columns`].
    deferred: Vec<String>,
}

impl Table {
    /// Create an empty table for `schema`.
    pub fn new(schema: TableSchema) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|c| Column::new(c.data_type))
            .collect();
        Table {
            schema,
            columns,
            pk_index: HashMap::new(),
            deferred: Vec::new(),
        }
    }

    /// Columns this table carries only as deferred all-NULL placeholders
    /// (partial base load). Empty on fully-materialized tables. A table
    /// with deferred columns is read-only:
    /// [`Database::ingest`](crate::Database::ingest) refuses batches that
    /// target it, so a
    /// placeholder NULL can never leak into freshly-derived state.
    pub fn deferred_columns(&self) -> &[String] {
        &self.deferred
    }

    /// True when any column is a deferred placeholder.
    pub fn is_partially_loaded(&self) -> bool {
        !self.deferred.is_empty()
    }

    /// Mark `names` as deferred placeholders (the partial-load path).
    pub(crate) fn set_deferred_columns(&mut self, names: Vec<String>) {
        self.deferred = names;
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserve capacity for `additional` more rows.
    pub fn reserve(&mut self, additional: usize) {
        // Columns grow independently; reserving on each avoids repeated
        // reallocation during bulk loads.
        let want = self.len() + additional;
        for (def, col) in self.schema.columns().iter().zip(self.columns.iter_mut()) {
            let mut fresh = Column::with_capacity(def.data_type, want);
            std::mem::swap(col, &mut fresh);
            // Re-append existing cells into the reserved column.
            for i in 0..fresh.len() {
                let v = fresh.get(i);
                col.push(&v);
            }
        }
        self.pk_index.reserve(additional);
    }

    /// Insert a row, validating arity, types, nullability and primary-key
    /// uniqueness. Returns the new row's index.
    pub fn insert(&mut self, row: Row) -> StoreResult<usize> {
        if row.arity() != self.schema.arity() {
            return Err(StoreError::ArityMismatch {
                table: self.name().to_string(),
                expected: self.schema.arity(),
                got: row.arity(),
            });
        }
        for (i, def) in self.schema.columns().iter().enumerate() {
            let v = &row[i];
            if !v.conforms_to(def.data_type) {
                return Err(StoreError::TypeMismatch {
                    table: self.name().to_string(),
                    column: def.name.clone(),
                    expected: def.data_type,
                    got: v.data_type(),
                });
            }
            if v.is_null() && !def.nullable && Some(i) != self.schema.primary_key_index() {
                return Err(StoreError::TypeMismatch {
                    table: self.name().to_string(),
                    column: def.name.clone(),
                    expected: def.data_type,
                    got: None,
                });
            }
        }
        if let Some(pk) = self.schema.primary_key_index() {
            let key = &row[pk];
            if key.is_null() {
                return Err(StoreError::NullKey {
                    table: self.name().to_string(),
                });
            }
            let gk = key.group_key();
            if self.pk_index.contains_key(&gk) {
                return Err(StoreError::DuplicateKey {
                    table: self.name().to_string(),
                    key: key.to_string(),
                });
            }
            self.pk_index.insert(gk, self.len());
        }
        let idx = self.len();
        for (col, v) in self.columns.iter_mut().zip(row.values()) {
            col.push(v);
        }
        Ok(idx)
    }

    /// Reassemble a table from decoded columns (the persistence reload
    /// path). The primary-key index is rebuilt by scanning the key column,
    /// exactly as a sequence of [`insert`](Self::insert)s would have built
    /// it; duplicate or NULL keys mean the file is corrupt.
    pub(crate) fn from_parts(schema: TableSchema, columns: Vec<Column>) -> StoreResult<Self> {
        if columns.len() != schema.arity() {
            return Err(StoreError::ArityMismatch {
                table: schema.name().to_string(),
                expected: schema.arity(),
                got: columns.len(),
            });
        }
        let n = columns.first().map_or(0, Column::len);
        if columns.iter().any(|c| c.len() != n) {
            return Err(StoreError::InvalidSchema(format!(
                "table `{}` has ragged columns",
                schema.name()
            )));
        }
        let mut pk_index = HashMap::new();
        if let Some(pk) = schema.primary_key_index() {
            pk_index.reserve(n);
            for i in 0..n {
                let key = columns[pk].get(i);
                if key.is_null() {
                    return Err(StoreError::NullKey {
                        table: schema.name().to_string(),
                    });
                }
                if pk_index.insert(key.group_key(), i).is_some() {
                    return Err(StoreError::DuplicateKey {
                        table: schema.name().to_string(),
                        key: key.to_string(),
                    });
                }
            }
        }
        Ok(Table {
            schema,
            columns,
            pk_index,
            deferred: Vec::new(),
        })
    }

    /// Column by index.
    pub fn column(&self, i: usize) -> Option<&Column> {
        self.columns.get(i)
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.schema
            .column_index(name)
            .and_then(|i| self.columns.get(i))
    }

    /// Cell value at (`row`, `column` index).
    pub fn value(&self, row: usize, column: usize) -> Value {
        self.columns.get(column).map_or(Value::Null, |c| c.get(row))
    }

    /// Cell value at (`row`, named column).
    pub fn value_by_name(&self, row: usize, column: &str) -> StoreResult<Value> {
        let i = self
            .schema
            .column_index(column)
            .ok_or_else(|| StoreError::UnknownColumn {
                table: self.name().to_string(),
                column: column.to_string(),
            })?;
        Ok(self.value(row, i))
    }

    /// Materialize row `i`.
    pub fn row(&self, i: usize) -> Option<Row> {
        if i >= self.len() {
            return None;
        }
        Some(Row::from(self.columns.iter().map(|c| c.get(i)).collect()))
    }

    /// Iterate over all rows (materializing each).
    pub fn rows(&self) -> impl Iterator<Item = Row> + '_ {
        (0..self.len()).map(move |i| self.row(i).expect("index in range"))
    }

    /// Look up the row index holding primary key `key`.
    pub fn row_by_key(&self, key: &Value) -> Option<usize> {
        self.pk_index.get(&key.group_key()).copied()
    }

    /// The event/creation timestamp of row `i`, if the table has a time
    /// column and the cell is non-null.
    pub fn row_timestamp(&self, i: usize) -> Option<Timestamp> {
        let tc = self.schema.time_column_index()?;
        self.columns[tc].get_timestamp(i)
    }

    /// Minimum and maximum non-null timestamps over the time column.
    pub fn time_span(&self) -> Option<(Timestamp, Timestamp)> {
        let tc = self.schema.time_column_index()?;
        let col = &self.columns[tc];
        let mut span: Option<(Timestamp, Timestamp)> = None;
        for i in 0..col.len() {
            if let Some(t) = col.get_timestamp(i) {
                span = Some(match span {
                    None => (t, t),
                    Some((lo, hi)) => (lo.min(t), hi.max(t)),
                });
            }
        }
        span
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::value::DataType;

    fn orders() -> Table {
        Table::new(
            TableSchema::builder("orders")
                .column("order_id", DataType::Int)
                .column("customer_id", DataType::Int)
                .nullable_column("note", DataType::Text)
                .column("placed_at", DataType::Timestamp)
                .primary_key("order_id")
                .time_column("placed_at")
                .build()
                .unwrap(),
        )
    }

    fn row(id: i64, cust: i64, t: i64) -> Row {
        Row::from(vec![
            Value::Int(id),
            Value::Int(cust),
            Value::Null,
            Value::Timestamp(t),
        ])
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = orders();
        assert_eq!(t.insert(row(10, 1, 5)).unwrap(), 0);
        assert_eq!(t.insert(row(11, 2, 9)).unwrap(), 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.row_by_key(&Value::Int(11)), Some(1));
        assert_eq!(t.row_by_key(&Value::Int(99)), None);
        assert_eq!(t.value_by_name(0, "customer_id").unwrap(), Value::Int(1));
        assert_eq!(t.row_timestamp(1), Some(9));
        assert_eq!(t.time_span(), Some((5, 9)));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = orders();
        let err = t.insert(Row::from(vec![Value::Int(1)])).unwrap_err();
        assert!(matches!(
            err,
            StoreError::ArityMismatch {
                expected: 4,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut t = orders();
        let err = t
            .insert(Row::from(vec![
                Value::Text("x".into()),
                Value::Int(1),
                Value::Null,
                Value::Timestamp(0),
            ]))
            .unwrap_err();
        assert!(matches!(err, StoreError::TypeMismatch { .. }));
    }

    #[test]
    fn null_in_non_nullable_column_rejected() {
        let mut t = orders();
        let err = t
            .insert(Row::from(vec![
                Value::Int(1),
                Value::Null,
                Value::Null,
                Value::Timestamp(0),
            ]))
            .unwrap_err();
        assert!(matches!(err, StoreError::TypeMismatch { .. }));
    }

    #[test]
    fn duplicate_key_rejected_and_table_unchanged() {
        let mut t = orders();
        t.insert(row(1, 1, 0)).unwrap();
        let err = t.insert(row(1, 2, 1)).unwrap_err();
        assert!(matches!(err, StoreError::DuplicateKey { .. }));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn null_key_rejected() {
        let mut t = orders();
        let err = t
            .insert(Row::from(vec![
                Value::Null,
                Value::Int(1),
                Value::Null,
                Value::Timestamp(0),
            ]))
            .unwrap_err();
        assert!(matches!(err, StoreError::NullKey { .. }));
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn rows_iterator_materializes_everything() {
        let mut t = orders();
        t.insert(row(1, 1, 0)).unwrap();
        t.insert(row(2, 1, 3)).unwrap();
        let rows: Vec<Row> = t.rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1][0], Value::Int(2));
    }

    #[test]
    fn reserve_preserves_rows() {
        let mut t = orders();
        t.insert(row(1, 1, 0)).unwrap();
        t.reserve(100);
        assert_eq!(t.len(), 1);
        assert_eq!(t.value_by_name(0, "order_id").unwrap(), Value::Int(1));
        t.insert(row(2, 1, 1)).unwrap();
        assert_eq!(t.len(), 2);
    }
}
