//! Minimal CSV import/export (RFC-4180 subset: quoted fields, embedded
//! commas, doubled quotes; no embedded newlines inside fields).

use std::io::{BufRead, Write};

use crate::error::{StoreError, StoreResult};
use crate::row::Row;
use crate::table::Table;
use crate::value::{DataType, Value};

/// Split one CSV line into `(field, was_quoted)` pairs, honouring double
/// quotes. Quoting matters semantically: an unquoted empty field is NULL,
/// a quoted empty field is the empty string.
pub fn split_line_quoted(line: &str) -> Vec<(String, bool)> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => {
                in_quotes = true;
                quoted = true;
            }
            ',' if !in_quotes => {
                fields.push((std::mem::take(&mut cur), quoted));
                quoted = false;
            }
            _ => cur.push(c),
        }
    }
    fields.push((cur, quoted));
    fields
}

/// Split one CSV line into fields, honouring double quotes.
pub fn split_line(line: &str) -> Vec<String> {
    split_line_quoted(line)
        .into_iter()
        .map(|(f, _)| f)
        .collect()
}

/// Quote a field if it needs quoting. Empty fields are quoted so they stay
/// distinguishable from NULL; carriage returns are quoted because line-based
/// readers strip a trailing `\r`, which would truncate an unquoted one at
/// end-of-line.
pub fn quote_field(field: &str) -> String {
    if field.is_empty() || field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Parse a textual field into a value of type `ty`. An *unquoted* empty
/// field is NULL; a quoted empty field is the empty string (text columns
/// only).
pub fn parse_field_quoted(
    field: &str,
    quoted: bool,
    ty: DataType,
    line: usize,
) -> StoreResult<Value> {
    if field.is_empty() && !quoted {
        return Ok(Value::Null);
    }
    if field.is_empty() && ty != DataType::Text {
        return Ok(Value::Null);
    }
    let err = |msg: String| StoreError::Csv { line, message: msg };
    match ty {
        DataType::Int => field
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| err(format!("`{field}` is not an INT"))),
        DataType::Float => field
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| err(format!("`{field}` is not a FLOAT"))),
        DataType::Text => Ok(Value::Text(field.to_string())),
        DataType::Bool => match field {
            "true" | "TRUE" | "1" | "t" => Ok(Value::Bool(true)),
            "false" | "FALSE" | "0" | "f" => Ok(Value::Bool(false)),
            _ => Err(err(format!("`{field}` is not a BOOL"))),
        },
        DataType::Timestamp => field
            .parse::<i64>()
            .map(Value::Timestamp)
            .map_err(|_| err(format!("`{field}` is not a TIMESTAMP"))),
    }
}

/// Parse a textual field into a value of type `ty`. Empty string is NULL.
pub fn parse_field(field: &str, ty: DataType, line: usize) -> StoreResult<Value> {
    parse_field_quoted(field, false, ty, line)
}

/// Load CSV data from `reader` into `table`.
///
/// The first line must be a header naming a subset-free permutation of the
/// table's columns. Returns the number of rows inserted.
pub fn load_csv<R: BufRead>(table: &mut Table, reader: R) -> StoreResult<usize> {
    let mut lines = reader.lines().enumerate();
    let header = match lines.next() {
        Some((_, Ok(h))) => h,
        Some((i, Err(e))) => {
            return Err(StoreError::Csv {
                line: i + 1,
                message: e.to_string(),
            })
        }
        None => return Ok(0),
    };
    let names = split_line(header.trim_end_matches('\r'));
    let schema = table.schema().clone();
    if names.len() != schema.arity() {
        return Err(StoreError::Csv {
            line: 1,
            message: format!(
                "header has {} columns, table `{}` has {}",
                names.len(),
                schema.name(),
                schema.arity()
            ),
        });
    }
    // Map header position -> schema column index.
    let mut mapping = Vec::with_capacity(names.len());
    for n in &names {
        let idx = schema.column_index(n).ok_or_else(|| StoreError::Csv {
            line: 1,
            message: format!("header column `{n}` not in table `{}`", schema.name()),
        })?;
        if mapping.contains(&idx) {
            return Err(StoreError::Csv {
                line: 1,
                message: format!("duplicate header column `{n}`"),
            });
        }
        mapping.push(idx);
    }
    let mut inserted = 0;
    for (i, line) in lines {
        let lineno = i + 1;
        let line = line.map_err(|e| StoreError::Csv {
            line: lineno,
            message: e.to_string(),
        })?;
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        let fields = split_line_quoted(line);
        if fields.len() != mapping.len() {
            return Err(StoreError::Csv {
                line: lineno,
                message: format!("expected {} fields, got {}", mapping.len(), fields.len()),
            });
        }
        let mut cells = vec![Value::Null; schema.arity()];
        for (pos, (field, quoted)) in fields.iter().enumerate() {
            let col = mapping[pos];
            cells[col] =
                parse_field_quoted(field, *quoted, schema.columns()[col].data_type, lineno)?;
        }
        table.insert(Row::from(cells))?;
        inserted += 1;
    }
    Ok(inserted)
}

/// Read CSV rows *leniently* for streaming ingest: structural problems
/// (unreadable input, bad header, wrong field count) are still hard
/// [`StoreError::Csv`] errors, but a field that fails to parse as its
/// column's type is kept as raw [`Value::Text`] so the ingest policy can
/// decide its fate (coerce, quarantine, or reject the batch).
///
/// The first line must be a header naming a permutation of `schema`'s
/// columns, exactly as for [`load_csv`].
pub fn read_csv_batch<R: BufRead>(
    schema: &crate::schema::TableSchema,
    reader: R,
) -> StoreResult<Vec<Row>> {
    let mut lines = reader.lines().enumerate();
    let header = match lines.next() {
        Some((_, Ok(h))) => h,
        Some((i, Err(e))) => {
            return Err(StoreError::Csv {
                line: i + 1,
                message: e.to_string(),
            })
        }
        None => return Ok(Vec::new()),
    };
    let names = split_line(header.trim_end_matches('\r'));
    if names.len() != schema.arity() {
        return Err(StoreError::Csv {
            line: 1,
            message: format!(
                "header has {} columns, table `{}` has {}",
                names.len(),
                schema.name(),
                schema.arity()
            ),
        });
    }
    let mut mapping = Vec::with_capacity(names.len());
    for n in &names {
        let idx = schema.column_index(n).ok_or_else(|| StoreError::Csv {
            line: 1,
            message: format!("header column `{n}` not in table `{}`", schema.name()),
        })?;
        if mapping.contains(&idx) {
            return Err(StoreError::Csv {
                line: 1,
                message: format!("duplicate header column `{n}`"),
            });
        }
        mapping.push(idx);
    }
    let mut rows = Vec::new();
    for (i, line) in lines {
        let lineno = i + 1;
        let line = line.map_err(|e| StoreError::Csv {
            line: lineno,
            message: e.to_string(),
        })?;
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        let fields = split_line_quoted(line);
        if fields.len() != mapping.len() {
            return Err(StoreError::Csv {
                line: lineno,
                message: format!("expected {} fields, got {}", mapping.len(), fields.len()),
            });
        }
        let mut cells = vec![Value::Null; schema.arity()];
        for (pos, (field, quoted)) in fields.iter().enumerate() {
            let col = mapping[pos];
            let ty = schema.columns()[col].data_type;
            cells[col] = match parse_field_quoted(field, *quoted, ty, lineno) {
                Ok(v) => v,
                // Keep the raw text; the ingest policy decides.
                Err(_) => Value::Text(field.clone()),
            };
        }
        rows.push(Row::from(cells));
    }
    Ok(rows)
}

/// Write `table` to `writer` as CSV (header + one line per row).
pub fn write_csv<W: Write>(table: &Table, writer: &mut W) -> std::io::Result<()> {
    let header: Vec<String> = table
        .schema()
        .columns()
        .iter()
        .map(|c| quote_field(&c.name))
        .collect();
    writeln!(writer, "{}", header.join(","))?;
    for i in 0..table.len() {
        let mut fields = Vec::with_capacity(table.schema().arity());
        for c in 0..table.schema().arity() {
            let v = table.value(i, c);
            // NULL stays a bare empty field; everything else is quoted as
            // needed (including the empty string, which must stay distinct
            // from NULL).
            let s = match v {
                Value::Null => String::new(),
                Value::Timestamp(t) => quote_field(&t.to_string()),
                other => quote_field(&other.to_string()),
            };
            fields.push(s);
        }
        writeln!(writer, "{}", fields.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;

    fn people() -> Table {
        Table::new(
            TableSchema::builder("people")
                .column("id", DataType::Int)
                .nullable_column("name", DataType::Text)
                .nullable_column("score", DataType::Float)
                .column("joined", DataType::Timestamp)
                .primary_key("id")
                .time_column("joined")
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn split_handles_quotes_and_commas() {
        assert_eq!(split_line("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(split_line(r#""a,b",c"#), vec!["a,b", "c"]);
        assert_eq!(split_line(r#""say ""hi""",x"#), vec![r#"say "hi""#, "x"]);
        assert_eq!(split_line(""), vec![""]);
        assert_eq!(split_line(",,"), vec!["", "", ""]);
    }

    #[test]
    fn quote_round_trip() {
        for s in ["plain", "a,b", "q\"q", ""] {
            let quoted = quote_field(s);
            let back = split_line(&quoted);
            assert_eq!(back, vec![s.to_string()]);
        }
    }

    #[test]
    fn load_basic() {
        let mut t = people();
        let data = "id,name,score,joined\n1,ann,2.5,100\n2,\"bo,b\",,200\n";
        let n = load_csv(&mut t, data.as_bytes()).unwrap();
        assert_eq!(n, 2);
        assert_eq!(
            t.value_by_name(1, "name").unwrap(),
            Value::Text("bo,b".into())
        );
        assert_eq!(t.value_by_name(1, "score").unwrap(), Value::Null);
        assert_eq!(t.row_timestamp(0), Some(100));
    }

    #[test]
    fn load_permuted_header() {
        let mut t = people();
        let data = "joined,id,score,name\n100,7,1.0,x\n";
        load_csv(&mut t, data.as_bytes()).unwrap();
        assert_eq!(t.value_by_name(0, "id").unwrap(), Value::Int(7));
        assert_eq!(t.value_by_name(0, "name").unwrap(), Value::Text("x".into()));
    }

    #[test]
    fn bad_header_rejected() {
        let mut t = people();
        assert!(load_csv(&mut t, "id,nope,score,joined\n".as_bytes()).is_err());
        let mut t = people();
        assert!(load_csv(&mut t, "id,name\n".as_bytes()).is_err());
        let mut t = people();
        assert!(load_csv(&mut t, "id,id,score,joined\n".as_bytes()).is_err());
    }

    #[test]
    fn bad_field_reports_line() {
        let mut t = people();
        let err = load_csv(&mut t, "id,name,score,joined\nxyz,a,1.0,0\n".as_bytes()).unwrap_err();
        match err {
            StoreError::Csv { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn write_then_load_round_trip() {
        let mut t = people();
        let data = "id,name,score,joined\n1,ann,2.5,100\n2,\"bo,b\",,200\n";
        load_csv(&mut t, data.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let mut t2 = people();
        load_csv(&mut t2, buf.as_slice()).unwrap();
        assert_eq!(t2.len(), 2);
        assert_eq!(
            t2.value_by_name(1, "name").unwrap(),
            Value::Text("bo,b".into())
        );
        assert_eq!(t2.row_timestamp(1), Some(200));
    }
}
