//! A tiny relational-algebra layer: predicates, equi-joins and grouped
//! aggregation over [`Table`]s.
//!
//! This is not a general query engine — it covers exactly what the
//! predictive-query planner and the feature-engineering baseline need:
//! column-vs-constant filters, FK hash joins, and per-group aggregates with
//! optional time-window restrictions.

use std::cmp::Ordering;
use std::collections::HashMap;

use crate::error::{StoreError, StoreResult};
use crate::table::Table;
use crate::value::{Timestamp, Value};

/// Comparison operators usable in predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Evaluate this operator on an `Ordering`.
    pub fn eval(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A boolean predicate over a single table's row.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `column op constant`; NULL cells never match (SQL semantics).
    Compare {
        column: String,
        op: CmpOp,
        value: Value,
    },
    /// `column IS NULL`.
    IsNull(String),
    /// `column IS NOT NULL`.
    IsNotNull(String),
    And(Box<Predicate>, Box<Predicate>),
    Or(Box<Predicate>, Box<Predicate>),
    Not(Box<Predicate>),
    /// Always true.
    True,
}

impl Predicate {
    /// Convenience constructor for `column op value`.
    pub fn cmp(column: impl Into<String>, op: CmpOp, value: impl Into<Value>) -> Self {
        Predicate::Compare {
            column: column.into(),
            op,
            value: value.into(),
        }
    }

    /// Evaluate against row `i` of `table`.
    pub fn eval(&self, table: &Table, i: usize) -> StoreResult<bool> {
        match self {
            Predicate::True => Ok(true),
            Predicate::Compare { column, op, value } => {
                let cell = table.value_by_name(i, column)?;
                if cell.is_null() || value.is_null() {
                    return Ok(false);
                }
                match cell.partial_cmp_value(value) {
                    Some(ord) => Ok(op.eval(ord)),
                    None => Err(StoreError::InvalidQuery(format!(
                        "cannot compare `{}` ({cell}) with {value}",
                        column
                    ))),
                }
            }
            Predicate::IsNull(column) => Ok(table.value_by_name(i, column)?.is_null()),
            Predicate::IsNotNull(column) => Ok(!table.value_by_name(i, column)?.is_null()),
            Predicate::And(a, b) => Ok(a.eval(table, i)? && b.eval(table, i)?),
            Predicate::Or(a, b) => Ok(a.eval(table, i)? || b.eval(table, i)?),
            Predicate::Not(p) => Ok(!p.eval(table, i)?),
        }
    }

    /// Row indices of `table` satisfying the predicate.
    pub fn filter(&self, table: &Table) -> StoreResult<Vec<usize>> {
        let mut out = Vec::new();
        for i in 0..table.len() {
            if self.eval(table, i)? {
                out.push(i);
            }
        }
        Ok(out)
    }
}

/// Result of an equi-join: matched (left-row, right-row) index pairs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JoinedRows {
    /// `(left_row_index, right_row_index)` pairs.
    pub pairs: Vec<(usize, usize)>,
}

/// Hash equi-join of `left.left_col = right.right_col`. NULLs never join.
pub fn hash_join(
    left: &Table,
    left_col: &str,
    right: &Table,
    right_col: &str,
) -> StoreResult<JoinedRows> {
    let lcol = left
        .column_by_name(left_col)
        .ok_or_else(|| StoreError::UnknownColumn {
            table: left.name().to_string(),
            column: left_col.to_string(),
        })?;
    let rcol = right
        .column_by_name(right_col)
        .ok_or_else(|| StoreError::UnknownColumn {
            table: right.name().to_string(),
            column: right_col.to_string(),
        })?;
    // Build on the smaller side.
    let mut index: HashMap<String, Vec<usize>> = HashMap::with_capacity(right.len());
    for j in 0..rcol.len() {
        let v = rcol.get(j);
        if v.is_null() {
            continue;
        }
        index.entry(v.group_key()).or_default().push(j);
    }
    let mut pairs = Vec::new();
    for i in 0..lcol.len() {
        let v = lcol.get(i);
        if v.is_null() {
            continue;
        }
        if let Some(matches) = index.get(&v.group_key()) {
            for &j in matches {
                pairs.push((i, j));
            }
        }
    }
    Ok(JoinedRows { pairs })
}

/// Aggregate functions for grouped queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Number of rows in the group.
    Count,
    /// Number of distinct non-null values of the aggregated column.
    CountDistinct,
    /// Sum of the numeric column (NULLs skipped).
    Sum,
    /// Mean of the numeric column (NULLs skipped; empty ⇒ NULL).
    Avg,
    Min,
    Max,
    /// 1.0 if the group is non-empty else 0.0.
    Exists,
}

impl std::fmt::Display for Aggregation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Aggregation::Count => "COUNT",
            Aggregation::CountDistinct => "COUNT_DISTINCT",
            Aggregation::Sum => "SUM",
            Aggregation::Avg => "AVG",
            Aggregation::Min => "MIN",
            Aggregation::Max => "MAX",
            Aggregation::Exists => "EXISTS",
        };
        f.write_str(s)
    }
}

/// A grouped aggregation over one table:
/// `SELECT group_col, AGG(value_col) FROM table [WHERE time ∈ window] GROUP BY group_col`.
#[derive(Debug, Clone)]
pub struct GroupQuery {
    /// Column whose values partition the rows.
    pub group_column: String,
    /// Column fed to the aggregate (ignored by `Count`/`Exists`).
    pub value_column: Option<String>,
    /// The aggregate to compute.
    pub aggregation: Aggregation,
    /// Optional half-open time window `(lo, hi]` applied to the table's time
    /// column before grouping.
    pub time_window: Option<(Timestamp, Timestamp)>,
}

impl GroupQuery {
    /// Run the query, returning `group-key → aggregate value` keyed by the
    /// group value's [`Value::group_key`]. Groups with no rows are absent.
    pub fn run(&self, table: &Table) -> StoreResult<HashMap<String, f64>> {
        let gcol =
            table
                .column_by_name(&self.group_column)
                .ok_or_else(|| StoreError::UnknownColumn {
                    table: table.name().to_string(),
                    column: self.group_column.clone(),
                })?;
        let vcol = match &self.value_column {
            Some(name) => {
                Some(
                    table
                        .column_by_name(name)
                        .ok_or_else(|| StoreError::UnknownColumn {
                            table: table.name().to_string(),
                            column: name.clone(),
                        })?,
                )
            }
            None => None,
        };
        if vcol.is_none() && !matches!(self.aggregation, Aggregation::Count | Aggregation::Exists) {
            return Err(StoreError::InvalidQuery(format!(
                "{} requires a value column",
                self.aggregation
            )));
        }
        // Accumulators per group.
        #[derive(Default)]
        struct Acc {
            count: f64,
            sum: f64,
            n_numeric: f64,
            min: f64,
            max: f64,
            seen_any_numeric: bool,
            distinct: std::collections::HashSet<String>,
        }
        let mut groups: HashMap<String, Acc> = HashMap::new();
        for i in 0..table.len() {
            if let Some((lo, hi)) = self.time_window {
                match table.row_timestamp(i) {
                    Some(t) if t > lo && t <= hi => {}
                    _ => continue,
                }
            }
            let g = gcol.get(i);
            if g.is_null() {
                continue;
            }
            let acc = groups.entry(g.group_key()).or_default();
            acc.count += 1.0;
            if let Some(vc) = vcol {
                let v = vc.get(i);
                if v.is_null() {
                    continue;
                }
                if self.aggregation == Aggregation::CountDistinct {
                    acc.distinct.insert(v.group_key());
                }
                if let Some(x) = v.as_f64() {
                    if !acc.seen_any_numeric {
                        acc.min = x;
                        acc.max = x;
                        acc.seen_any_numeric = true;
                    } else {
                        acc.min = acc.min.min(x);
                        acc.max = acc.max.max(x);
                    }
                    acc.sum += x;
                    acc.n_numeric += 1.0;
                }
            }
        }
        let mut out = HashMap::with_capacity(groups.len());
        for (k, acc) in groups {
            let v = match self.aggregation {
                Aggregation::Count => acc.count,
                Aggregation::CountDistinct => acc.distinct.len() as f64,
                Aggregation::Sum => acc.sum,
                Aggregation::Avg => {
                    if acc.n_numeric > 0.0 {
                        acc.sum / acc.n_numeric
                    } else {
                        continue;
                    }
                }
                Aggregation::Min => {
                    if acc.seen_any_numeric {
                        acc.min
                    } else {
                        continue;
                    }
                }
                Aggregation::Max => {
                    if acc.seen_any_numeric {
                        acc.max
                    } else {
                        continue;
                    }
                }
                Aggregation::Exists => 1.0,
            };
            out.insert(k, v);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;
    use crate::schema::TableSchema;
    use crate::value::DataType;

    fn events() -> Table {
        let mut t = Table::new(
            TableSchema::builder("events")
                .column("id", DataType::Int)
                .column("user", DataType::Int)
                .nullable_column("amount", DataType::Float)
                .column("at", DataType::Timestamp)
                .primary_key("id")
                .time_column("at")
                .build()
                .unwrap(),
        );
        let rows = [
            (1, 10, Some(5.0), 100),
            (2, 10, Some(3.0), 200),
            (3, 11, None, 150),
            (4, 11, Some(7.0), 260),
            (5, 12, Some(1.0), 300),
        ];
        for (id, user, amount, at) in rows {
            let amount = amount.map_or(Value::Null, Value::Float);
            t.insert(Row::from(vec![
                Value::Int(id),
                Value::Int(user),
                amount,
                Value::Timestamp(at),
            ]))
            .unwrap();
        }
        t
    }

    #[test]
    fn cmp_op_semantics() {
        assert!(CmpOp::Le.eval(Ordering::Equal));
        assert!(CmpOp::Le.eval(Ordering::Less));
        assert!(!CmpOp::Le.eval(Ordering::Greater));
        assert!(CmpOp::Ne.eval(Ordering::Less));
    }

    #[test]
    fn predicate_filter() {
        let t = events();
        let p = Predicate::cmp("user", CmpOp::Eq, 10i64);
        assert_eq!(p.filter(&t).unwrap(), vec![0, 1]);
        let p = Predicate::And(
            Box::new(Predicate::cmp("user", CmpOp::Ge, 11i64)),
            Box::new(Predicate::IsNotNull("amount".into())),
        );
        assert_eq!(p.filter(&t).unwrap(), vec![3, 4]);
        let p = Predicate::Not(Box::new(Predicate::IsNull("amount".into())));
        assert_eq!(p.filter(&t).unwrap().len(), 4);
    }

    #[test]
    fn null_never_matches_compare() {
        let t = events();
        // Row 2 has NULL amount; neither < nor >= matches it.
        let lt = Predicate::cmp("amount", CmpOp::Lt, 100.0)
            .filter(&t)
            .unwrap();
        let ge = Predicate::cmp("amount", CmpOp::Ge, 100.0)
            .filter(&t)
            .unwrap();
        assert_eq!(lt.len() + ge.len(), 4);
    }

    #[test]
    fn incomparable_types_error() {
        let t = events();
        let p = Predicate::cmp("user", CmpOp::Eq, "ten");
        assert!(p.filter(&t).is_err());
    }

    #[test]
    fn join_pairs() {
        let t = events();
        // Self-join events on user: each user's rows pair with each other.
        let j = hash_join(&t, "user", &t, "user").unwrap();
        // user 10: 2×2, user 11: 2×2, user 12: 1×1 → 9 pairs.
        assert_eq!(j.pairs.len(), 9);
    }

    #[test]
    fn group_count_and_sum() {
        let t = events();
        let q = GroupQuery {
            group_column: "user".into(),
            value_column: None,
            aggregation: Aggregation::Count,
            time_window: None,
        };
        let r = q.run(&t).unwrap();
        assert_eq!(r[&Value::Int(10).group_key()], 2.0);
        assert_eq!(r[&Value::Int(12).group_key()], 1.0);

        let q = GroupQuery {
            group_column: "user".into(),
            value_column: Some("amount".into()),
            aggregation: Aggregation::Sum,
            time_window: None,
        };
        let r = q.run(&t).unwrap();
        assert_eq!(r[&Value::Int(10).group_key()], 8.0);
        // user 11 has one NULL amount; SUM skips it.
        assert_eq!(r[&Value::Int(11).group_key()], 7.0);
    }

    #[test]
    fn group_with_time_window_is_half_open() {
        let t = events();
        let q = GroupQuery {
            group_column: "user".into(),
            value_column: None,
            aggregation: Aggregation::Count,
            // (100, 200]: excludes t=100, includes t=200.
            time_window: Some((100, 200)),
        };
        let r = q.run(&t).unwrap();
        assert_eq!(r.get(&Value::Int(10).group_key()), Some(&1.0));
        assert_eq!(r.get(&Value::Int(11).group_key()), Some(&1.0));
        assert_eq!(r.get(&Value::Int(12).group_key()), None);
    }

    #[test]
    fn group_min_max_avg_distinct() {
        let t = events();
        let mk = |agg| GroupQuery {
            group_column: "user".into(),
            value_column: Some("amount".into()),
            aggregation: agg,
            time_window: None,
        };
        let key = Value::Int(10).group_key();
        assert_eq!(mk(Aggregation::Min).run(&t).unwrap()[&key], 3.0);
        assert_eq!(mk(Aggregation::Max).run(&t).unwrap()[&key], 5.0);
        assert_eq!(mk(Aggregation::Avg).run(&t).unwrap()[&key], 4.0);
        assert_eq!(mk(Aggregation::CountDistinct).run(&t).unwrap()[&key], 2.0);
        assert_eq!(mk(Aggregation::Exists).run(&t).unwrap()[&key], 1.0);
    }

    #[test]
    fn sum_without_value_column_errors() {
        let t = events();
        let q = GroupQuery {
            group_column: "user".into(),
            value_column: None,
            aggregation: Aggregation::Sum,
            time_window: None,
        };
        assert!(q.run(&t).is_err());
    }
}
