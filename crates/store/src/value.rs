//! Scalar values and their types.

use std::cmp::Ordering;
use std::fmt;

/// Seconds since the dataset epoch. All temporal reasoning in relgraph is in
/// terms of this scalar; generators and loaders choose the epoch.
pub type Timestamp = i64;

/// Number of seconds in one day, the unit used by predictive-query windows.
pub const SECONDS_PER_DAY: i64 = 86_400;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Bool,
    /// Seconds since the dataset epoch.
    Timestamp,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
            DataType::Timestamp => "TIMESTAMP",
        };
        f.write_str(s)
    }
}

impl DataType {
    /// Whether values of this type can be used in arithmetic aggregates
    /// (`SUM`, `AVG`, …).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float | DataType::Timestamp)
    }
}

/// A dynamically-typed scalar cell value.
///
/// `Null` is a member of every type; all other variants carry their type.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL (typed by its column).
    Null,
    Int(i64),
    Float(f64),
    Text(String),
    Bool(bool),
    Timestamp(Timestamp),
}

impl Value {
    /// The data type of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    /// True if this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this value may be stored in a column of type `ty`.
    pub fn conforms_to(&self, ty: DataType) -> bool {
        match self.data_type() {
            None => true,
            Some(t) => t == ty,
        }
    }

    /// Numeric view of the value: ints, floats, timestamps and bools map to
    /// `f64`; text and null map to `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Timestamp(t) => Some(*t as f64),
            Value::Null | Value::Text(_) => None,
        }
    }

    /// Integer view (ints and timestamps only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Timestamp(t) => Some(*t),
            _ => None,
        }
    }

    /// Timestamp view (timestamps and ints).
    pub fn as_timestamp(&self) -> Option<Timestamp> {
        match self {
            Value::Timestamp(t) => Some(*t),
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Text view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Total ordering used for comparisons in predicates: `Null` sorts first,
    /// numerics compare numerically, text lexicographically. Values of
    /// incomparable types return `None`.
    pub fn partial_cmp_value(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, Null) => Some(Ordering::Equal),
            (Null, _) => Some(Ordering::Less),
            (_, Null) => Some(Ordering::Greater),
            (Text(a), Text(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// A stable key string used for grouping and distinct-counting.
    pub fn group_key(&self) -> String {
        match self {
            Value::Null => "\u{0}null".to_string(),
            Value::Int(v) => format!("i{v}"),
            Value::Float(v) => format!("f{v}"),
            Value::Text(s) => format!("t{s}"),
            Value::Bool(b) => format!("b{b}"),
            Value::Timestamp(t) => format!("s{t}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Timestamp(t) => write!(f, "@{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_of_values() {
        assert_eq!(Value::Int(3).data_type(), Some(DataType::Int));
        assert_eq!(Value::Float(1.5).data_type(), Some(DataType::Float));
        assert_eq!(Value::Text("x".into()).data_type(), Some(DataType::Text));
        assert_eq!(Value::Bool(true).data_type(), Some(DataType::Bool));
        assert_eq!(Value::Timestamp(9).data_type(), Some(DataType::Timestamp));
        assert_eq!(Value::Null.data_type(), None);
    }

    #[test]
    fn null_conforms_to_every_type() {
        for ty in [
            DataType::Int,
            DataType::Float,
            DataType::Text,
            DataType::Bool,
            DataType::Timestamp,
        ] {
            assert!(Value::Null.conforms_to(ty));
        }
    }

    #[test]
    fn conformance_is_exact() {
        assert!(Value::Int(1).conforms_to(DataType::Int));
        assert!(!Value::Int(1).conforms_to(DataType::Float));
        assert!(!Value::Text("a".into()).conforms_to(DataType::Int));
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(2).as_f64(), Some(2.0));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Text("a".into()).as_f64(), None);
        assert_eq!(Value::Timestamp(5).as_timestamp(), Some(5));
        assert_eq!(Value::Int(5).as_timestamp(), Some(5));
        assert_eq!(Value::Float(5.0).as_timestamp(), None);
    }

    #[test]
    fn ordering_across_numeric_types() {
        assert_eq!(
            Value::Int(2).partial_cmp_value(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Null.partial_cmp_value(&Value::Int(-100)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Text("b".into()).partial_cmp_value(&Value::Text("a".into())),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Text("b".into()).partial_cmp_value(&Value::Int(1)),
            None
        );
    }

    #[test]
    fn group_keys_distinguish_types() {
        assert_ne!(Value::Int(1).group_key(), Value::Float(1.0).group_key());
        assert_ne!(Value::Int(1).group_key(), Value::Timestamp(1).group_key());
        assert_eq!(Value::Int(1).group_key(), Value::Int(1).group_key());
    }

    #[test]
    fn display_round_trips_visually() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Timestamp(7).to_string(), "@7");
    }
}
