//! A named collection of tables with referential-integrity checking.

use std::collections::HashMap;

use crate::error::{StoreError, StoreResult};
use crate::ingest::QuarantinedRow;
use crate::row::Row;
use crate::schema::TableSchema;
use crate::table::Table;
use crate::value::Timestamp;

/// An in-memory relational database: a set of tables plus their schemas.
#[derive(Debug, Clone, PartialEq)]
pub struct Database {
    name: String,
    tables: Vec<Table>,
    by_name: HashMap<String, usize>,
    /// Rows set aside by [`Database::ingest`] quarantine policies.
    quarantine: Vec<QuarantinedRow>,
}

impl Database {
    /// Create an empty database.
    pub fn new(name: impl Into<String>) -> Self {
        Database {
            name: name.into(),
            tables: Vec::new(),
            by_name: HashMap::new(),
            quarantine: Vec::new(),
        }
    }

    /// Database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Create a table from `schema`. Foreign keys may reference tables that
    /// do not exist yet; they are checked by [`validate`](Self::validate) and
    /// at graph-construction time.
    pub fn create_table(&mut self, schema: TableSchema) -> StoreResult<()> {
        if self.by_name.contains_key(schema.name()) {
            return Err(StoreError::TableExists(schema.name().to_string()));
        }
        self.by_name
            .insert(schema.name().to_string(), self.tables.len());
        self.tables.push(Table::new(schema));
        Ok(())
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// All tables, in creation order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Names of all tables, in creation order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.iter().map(Table::name).collect()
    }

    /// Table by name.
    pub fn table(&self, name: &str) -> StoreResult<&Table> {
        self.by_name
            .get(name)
            .map(|&i| &self.tables[i])
            .ok_or_else(|| StoreError::UnknownTable(name.to_string()))
    }

    /// Mutable table by name.
    pub fn table_mut(&mut self, name: &str) -> StoreResult<&mut Table> {
        match self.by_name.get(name) {
            Some(&i) => Ok(&mut self.tables[i]),
            None => Err(StoreError::UnknownTable(name.to_string())),
        }
    }

    /// Insert a row into the named table.
    pub fn insert(&mut self, table: &str, row: Row) -> StoreResult<usize> {
        self.table_mut(table)?.insert(row)
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::len).sum()
    }

    /// Total number of foreign-key constraints across all schemas.
    pub fn total_foreign_keys(&self) -> usize {
        self.tables
            .iter()
            .map(|t| t.schema().foreign_keys().len())
            .sum()
    }

    /// The minimum and maximum timestamps present in any time column.
    pub fn time_span(&self) -> Option<(Timestamp, Timestamp)> {
        let mut span: Option<(Timestamp, Timestamp)> = None;
        for t in &self.tables {
            if let Some((lo, hi)) = t.time_span() {
                span = Some(match span {
                    None => (lo, hi),
                    Some((a, b)) => (a.min(lo), b.max(hi)),
                });
            }
        }
        span
    }

    /// Check referential integrity: every foreign key must reference an
    /// existing table with a primary key, and every non-null FK cell must
    /// match an existing referenced row. Returns the number of checked FK
    /// cells.
    pub fn validate(&self) -> StoreResult<usize> {
        let mut checked = 0;
        for t in &self.tables {
            for fk in t.schema().foreign_keys() {
                let target = self.table(&fk.referenced_table)?;
                if target.schema().primary_key().is_none() {
                    return Err(StoreError::InvalidSchema(format!(
                        "foreign key `{}`.`{}` references table `{}` which has no primary key",
                        t.name(),
                        fk.column,
                        fk.referenced_table
                    )));
                }
                let col = t
                    .column_by_name(&fk.column)
                    .expect("schema guarantees the FK column exists");
                for i in 0..col.len() {
                    let v = col.get(i);
                    if v.is_null() {
                        continue;
                    }
                    if target.row_by_key(&v).is_none() {
                        return Err(StoreError::ForeignKeyViolation {
                            table: t.name().to_string(),
                            column: fk.column.clone(),
                            referenced_table: fk.referenced_table.clone(),
                            key: v.to_string(),
                        });
                    }
                    checked += 1;
                }
            }
        }
        Ok(checked)
    }

    /// Rows set aside by ingest quarantine policies, oldest first.
    pub fn quarantine(&self) -> &[QuarantinedRow] {
        &self.quarantine
    }

    /// Drain the quarantine buffer (e.g. to repair rows and re-ingest).
    pub fn take_quarantine(&mut self) -> Vec<QuarantinedRow> {
        std::mem::take(&mut self.quarantine)
    }

    /// Record quarantined rows from an ingest call.
    pub(crate) fn push_quarantine(&mut self, rows: Vec<QuarantinedRow>) {
        self.quarantine.extend(rows);
    }

    /// Reassemble a database from persisted parts (the reload path).
    pub(crate) fn from_parts(
        name: String,
        tables: Vec<Table>,
        quarantine: Vec<QuarantinedRow>,
    ) -> Self {
        let by_name = tables
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name().to_string(), i))
            .collect();
        Database {
            name,
            tables,
            by_name,
            quarantine,
        }
    }

    /// A human-readable multi-line summary (used by the dataset-inventory
    /// experiment and `EXPLAIN`).
    pub fn summary(&self) -> String {
        let mut out = format!(
            "DATABASE {} ({} tables, {} rows)\n",
            self.name,
            self.table_count(),
            self.total_rows()
        );
        for t in &self.tables {
            out.push_str(&format!("  {} [{} rows]\n", t.schema(), t.len()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Value};

    fn shop() -> Database {
        let mut db = Database::new("shop");
        db.create_table(
            TableSchema::builder("customers")
                .column("customer_id", DataType::Int)
                .column("signup_time", DataType::Timestamp)
                .primary_key("customer_id")
                .time_column("signup_time")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("orders")
                .column("order_id", DataType::Int)
                .column("customer_id", DataType::Int)
                .column("placed_at", DataType::Timestamp)
                .primary_key("order_id")
                .time_column("placed_at")
                .foreign_key("customer_id", "customers")
                .build()
                .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn create_and_insert() {
        let mut db = shop();
        db.insert("customers", Row::new().push(1i64).push(Value::Timestamp(0)))
            .unwrap();
        db.insert(
            "orders",
            Row::new().push(10i64).push(1i64).push(Value::Timestamp(5)),
        )
        .unwrap();
        assert_eq!(db.total_rows(), 2);
        assert_eq!(db.validate().unwrap(), 1);
        assert_eq!(db.time_span(), Some((0, 5)));
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = shop();
        let schema = TableSchema::builder("orders")
            .column("x", DataType::Int)
            .build()
            .unwrap();
        assert!(matches!(
            db.create_table(schema),
            Err(StoreError::TableExists(_))
        ));
    }

    #[test]
    fn unknown_table_rejected() {
        let mut db = shop();
        assert!(matches!(
            db.insert("nope", Row::new().push(1i64)),
            Err(StoreError::UnknownTable(_))
        ));
        assert!(db.table("nope").is_err());
    }

    #[test]
    fn dangling_fk_detected() {
        let mut db = shop();
        db.insert(
            "orders",
            Row::new().push(10i64).push(42i64).push(Value::Timestamp(5)),
        )
        .unwrap();
        assert!(matches!(
            db.validate(),
            Err(StoreError::ForeignKeyViolation { .. })
        ));
    }

    #[test]
    fn null_fk_cells_are_allowed() {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::builder("a")
                .column("id", DataType::Int)
                .primary_key("id")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("b")
                .column("id", DataType::Int)
                .nullable_column("a_id", DataType::Int)
                .primary_key("id")
                .foreign_key("a_id", "a")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert("b", Row::new().push(1i64).push(Value::Null))
            .unwrap();
        assert_eq!(db.validate().unwrap(), 0);
    }

    #[test]
    fn fk_to_table_without_pk_rejected() {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::builder("a")
                .column("x", DataType::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("b")
                .column("id", DataType::Int)
                .column("a_x", DataType::Int)
                .primary_key("id")
                .foreign_key("a_x", "a")
                .build()
                .unwrap(),
        )
        .unwrap();
        assert!(matches!(db.validate(), Err(StoreError::InvalidSchema(_))));
    }

    #[test]
    fn summary_lists_tables() {
        let db = shop();
        let s = db.summary();
        assert!(s.contains("customers"));
        assert!(s.contains("orders"));
    }
}
