//! Table schemas: columns, primary keys, foreign keys and time columns.

use std::fmt;

use crate::error::{StoreError, StoreResult};
use crate::value::DataType;

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name, unique within the table.
    pub name: String,
    /// Declared type.
    pub data_type: DataType,
    /// Whether NULLs are allowed. Primary-key columns are implicitly
    /// non-nullable regardless of this flag.
    pub nullable: bool,
}

/// A foreign-key constraint: `column` in this table references the primary
/// key of `referenced_table`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing column in the owning table.
    pub column: String,
    /// Table whose primary key is referenced.
    pub referenced_table: String,
}

/// Schema of a single table.
///
/// Invariants (enforced by [`TableSchemaBuilder::build`]):
/// * column names are unique;
/// * the primary key, if declared, names an existing column;
/// * the time column, if declared, names an existing `Timestamp` column;
/// * each foreign key names an existing column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    name: String,
    columns: Vec<ColumnDef>,
    primary_key: Option<usize>,
    time_column: Option<usize>,
    foreign_keys: Vec<ForeignKey>,
}

impl TableSchema {
    /// Start building a schema for a table called `name`.
    pub fn builder(name: impl Into<String>) -> TableSchemaBuilder {
        TableSchemaBuilder {
            name: name.into(),
            columns: Vec::new(),
            primary_key: None,
            time_column: None,
            foreign_keys: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All column definitions, in declaration order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the named column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Definition of the named column.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Index of the primary-key column, if any.
    pub fn primary_key_index(&self) -> Option<usize> {
        self.primary_key
    }

    /// Name of the primary-key column, if any.
    pub fn primary_key(&self) -> Option<&str> {
        self.primary_key.map(|i| self.columns[i].name.as_str())
    }

    /// Index of the time column, if any.
    pub fn time_column_index(&self) -> Option<usize> {
        self.time_column
    }

    /// Name of the time column, if any.
    pub fn time_column(&self) -> Option<&str> {
        self.time_column.map(|i| self.columns[i].name.as_str())
    }

    /// Declared foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// The foreign key on the named column, if any.
    pub fn foreign_key_on(&self, column: &str) -> Option<&ForeignKey> {
        self.foreign_keys.iter().find(|fk| fk.column == column)
    }
}

impl fmt::Display for TableSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TABLE {} (", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{} {}", c.name, c.data_type)?;
            if Some(i) == self.primary_key {
                f.write_str(" PRIMARY KEY")?;
            }
            if Some(i) == self.time_column {
                f.write_str(" TIME")?;
            }
            if let Some(fk) = self.foreign_key_on(&c.name) {
                write!(f, " REFERENCES {}", fk.referenced_table)?;
            }
        }
        f.write_str(")")
    }
}

/// Builder for [`TableSchema`]; validates invariants at [`build`](Self::build).
#[derive(Debug, Clone)]
pub struct TableSchemaBuilder {
    name: String,
    columns: Vec<ColumnDef>,
    primary_key: Option<String>,
    time_column: Option<String>,
    foreign_keys: Vec<ForeignKey>,
}

impl TableSchemaBuilder {
    /// Add a non-nullable column.
    pub fn column(mut self, name: impl Into<String>, data_type: DataType) -> Self {
        self.columns.push(ColumnDef {
            name: name.into(),
            data_type,
            nullable: false,
        });
        self
    }

    /// Add a nullable column.
    pub fn nullable_column(mut self, name: impl Into<String>, data_type: DataType) -> Self {
        self.columns.push(ColumnDef {
            name: name.into(),
            data_type,
            nullable: true,
        });
        self
    }

    /// Declare the primary-key column.
    pub fn primary_key(mut self, name: impl Into<String>) -> Self {
        self.primary_key = Some(name.into());
        self
    }

    /// Declare the time column (creation/event time of each row).
    pub fn time_column(mut self, name: impl Into<String>) -> Self {
        self.time_column = Some(name.into());
        self
    }

    /// Declare a foreign key from `column` to the primary key of `table`.
    pub fn foreign_key(mut self, column: impl Into<String>, table: impl Into<String>) -> Self {
        self.foreign_keys.push(ForeignKey {
            column: column.into(),
            referenced_table: table.into(),
        });
        self
    }

    /// Validate and produce the schema.
    pub fn build(self) -> StoreResult<TableSchema> {
        if self.name.is_empty() {
            return Err(StoreError::InvalidSchema(
                "table name must be non-empty".into(),
            ));
        }
        if self.columns.is_empty() {
            return Err(StoreError::InvalidSchema(format!(
                "table `{}` must have at least one column",
                self.name
            )));
        }
        for (i, c) in self.columns.iter().enumerate() {
            if c.name.is_empty() {
                return Err(StoreError::InvalidSchema(format!(
                    "table `{}` has an empty column name",
                    self.name
                )));
            }
            if self.columns[..i].iter().any(|p| p.name == c.name) {
                return Err(StoreError::InvalidSchema(format!(
                    "duplicate column `{}` in table `{}`",
                    c.name, self.name
                )));
            }
        }
        let find = |col: &str| self.columns.iter().position(|c| c.name == col);

        let primary_key = match &self.primary_key {
            Some(pk) => Some(find(pk).ok_or_else(|| {
                StoreError::InvalidSchema(format!(
                    "primary key `{pk}` is not a column of `{}`",
                    self.name
                ))
            })?),
            None => None,
        };
        let time_column = match &self.time_column {
            Some(tc) => {
                let idx = find(tc).ok_or_else(|| {
                    StoreError::InvalidSchema(format!(
                        "time column `{tc}` is not a column of `{}`",
                        self.name
                    ))
                })?;
                if self.columns[idx].data_type != DataType::Timestamp {
                    return Err(StoreError::InvalidSchema(format!(
                        "time column `{tc}` of `{}` must have type TIMESTAMP",
                        self.name
                    )));
                }
                Some(idx)
            }
            None => None,
        };
        for fk in &self.foreign_keys {
            if find(&fk.column).is_none() {
                return Err(StoreError::InvalidSchema(format!(
                    "foreign-key column `{}` is not a column of `{}`",
                    fk.column, self.name
                )));
            }
        }
        let mut seen_fk: Vec<&str> = Vec::new();
        for fk in &self.foreign_keys {
            if seen_fk.contains(&fk.column.as_str()) {
                return Err(StoreError::InvalidSchema(format!(
                    "column `{}` of `{}` has more than one foreign key",
                    fk.column, self.name
                )));
            }
            seen_fk.push(&fk.column);
        }
        Ok(TableSchema {
            name: self.name,
            columns: self.columns,
            primary_key,
            time_column,
            foreign_keys: self.foreign_keys,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> TableSchema {
        TableSchema::builder("orders")
            .column("order_id", DataType::Int)
            .column("customer_id", DataType::Int)
            .nullable_column("note", DataType::Text)
            .column("placed_at", DataType::Timestamp)
            .primary_key("order_id")
            .time_column("placed_at")
            .foreign_key("customer_id", "customers")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_expected_schema() {
        let s = demo();
        assert_eq!(s.name(), "orders");
        assert_eq!(s.arity(), 4);
        assert_eq!(s.primary_key(), Some("order_id"));
        assert_eq!(s.time_column(), Some("placed_at"));
        assert_eq!(s.column_index("customer_id"), Some(1));
        assert_eq!(
            s.foreign_key_on("customer_id").unwrap().referenced_table,
            "customers"
        );
        assert!(s.foreign_key_on("order_id").is_none());
    }

    #[test]
    fn duplicate_column_rejected() {
        let err = TableSchema::builder("t")
            .column("a", DataType::Int)
            .column("a", DataType::Int)
            .build()
            .unwrap_err();
        assert!(matches!(err, StoreError::InvalidSchema(_)));
    }

    #[test]
    fn missing_pk_column_rejected() {
        let err = TableSchema::builder("t")
            .column("a", DataType::Int)
            .primary_key("b")
            .build()
            .unwrap_err();
        assert!(matches!(err, StoreError::InvalidSchema(_)));
    }

    #[test]
    fn non_timestamp_time_column_rejected() {
        let err = TableSchema::builder("t")
            .column("a", DataType::Int)
            .time_column("a")
            .build()
            .unwrap_err();
        assert!(matches!(err, StoreError::InvalidSchema(_)));
    }

    #[test]
    fn fk_on_unknown_column_rejected() {
        let err = TableSchema::builder("t")
            .column("a", DataType::Int)
            .foreign_key("missing", "other")
            .build()
            .unwrap_err();
        assert!(matches!(err, StoreError::InvalidSchema(_)));
    }

    #[test]
    fn duplicate_fk_rejected() {
        let err = TableSchema::builder("t")
            .column("a", DataType::Int)
            .foreign_key("a", "x")
            .foreign_key("a", "y")
            .build()
            .unwrap_err();
        assert!(matches!(err, StoreError::InvalidSchema(_)));
    }

    #[test]
    fn empty_table_rejected() {
        assert!(TableSchema::builder("t").build().is_err());
        assert!(TableSchema::builder("")
            .column("a", DataType::Int)
            .build()
            .is_err());
    }

    #[test]
    fn display_includes_constraints() {
        let s = demo().to_string();
        assert!(s.contains("PRIMARY KEY"));
        assert!(s.contains("REFERENCES customers"));
        assert!(s.contains("TIME"));
    }
}
