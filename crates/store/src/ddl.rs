//! A tiny DDL dialect for declaring schemas in text files, plus
//! directory-level database I/O (one `schema.ddl` + one CSV per table).
//!
//! The dialect is exactly what [`TableSchema`]'s `Display` prints, so
//! schemas round-trip:
//!
//! ```text
//! -- comments start with `--` or `#`
//! TABLE customers (
//!     customer_id INT PRIMARY KEY,
//!     signup_time TIMESTAMP TIME,
//!     region TEXT,
//!     nickname TEXT NULL
//! )
//! TABLE orders (
//!     order_id INT PRIMARY KEY,
//!     customer_id INT REFERENCES customers,
//!     amount FLOAT,
//!     placed_at TIMESTAMP TIME
//! )
//! ```
//!
//! Column modifiers: `PRIMARY KEY`, `TIME` (the table's event-time column),
//! `REFERENCES <table>`, `NULL` (nullable; columns default to non-null).

use std::fs;
use std::io::BufReader;
use std::path::Path;

use crate::csv::{load_csv, write_csv};
use crate::database::Database;
use crate::error::{StoreError, StoreResult};
use crate::schema::TableSchema;
use crate::value::DataType;

fn strip_comments(text: &str) -> String {
    text.lines()
        .map(|l| {
            let l = match l.find("--") {
                Some(i) => &l[..i],
                None => l,
            };
            match l.find('#') {
                Some(i) => &l[..i],
                None => l,
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Parse a DDL document into table schemas (in declaration order).
pub fn parse_ddl(text: &str) -> StoreResult<Vec<TableSchema>> {
    let text = strip_comments(text);
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        match c {
            '(' | ')' | ',' => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
                tokens.push(c.to_string());
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }

    let err = |msg: String| StoreError::InvalidSchema(msg);
    let mut schemas = Vec::new();
    let mut pos = 0usize;
    let peek = |pos: usize| tokens.get(pos).map(String::as_str);
    while pos < tokens.len() {
        if !tokens[pos].eq_ignore_ascii_case("table") {
            return Err(err(format!("expected TABLE, found `{}`", tokens[pos])));
        }
        pos += 1;
        let name = tokens
            .get(pos)
            .ok_or_else(|| err("expected a table name after TABLE".into()))?
            .clone();
        pos += 1;
        if peek(pos) != Some("(") {
            return Err(err(format!("expected `(` after table name `{name}`")));
        }
        pos += 1;
        let mut builder = TableSchema::builder(&name);
        loop {
            let col = tokens
                .get(pos)
                .ok_or_else(|| err(format!("unterminated column list in `{name}`")))?
                .clone();
            if col == ")" {
                pos += 1;
                break;
            }
            pos += 1;
            let ty = tokens
                .get(pos)
                .ok_or_else(|| err(format!("column `{col}` needs a type")))?;
            let data_type = match ty.to_ascii_uppercase().as_str() {
                "INT" | "INTEGER" | "BIGINT" => DataType::Int,
                "FLOAT" | "DOUBLE" | "REAL" => DataType::Float,
                "TEXT" | "STRING" | "VARCHAR" => DataType::Text,
                "BOOL" | "BOOLEAN" => DataType::Bool,
                "TIMESTAMP" | "TIME_COLUMN" => DataType::Timestamp,
                other => return Err(err(format!("unknown type `{other}` for `{name}`.`{col}`"))),
            };
            pos += 1;
            // Modifiers until `,` or `)`.
            let mut nullable = false;
            let mut is_pk = false;
            let mut is_time = false;
            let mut references: Option<String> = None;
            loop {
                match peek(pos).map(str::to_ascii_uppercase).as_deref() {
                    Some(",") => {
                        pos += 1;
                        break;
                    }
                    Some(")") => break,
                    Some("PRIMARY") => {
                        pos += 1;
                        if peek(pos).map(str::to_ascii_uppercase).as_deref() != Some("KEY") {
                            return Err(err("PRIMARY must be followed by KEY".into()));
                        }
                        pos += 1;
                        is_pk = true;
                    }
                    Some("TIME") => {
                        pos += 1;
                        is_time = true;
                    }
                    Some("NULL") => {
                        pos += 1;
                        nullable = true;
                    }
                    Some("NOT") => {
                        pos += 1;
                        if peek(pos).map(str::to_ascii_uppercase).as_deref() != Some("NULL") {
                            return Err(err("NOT must be followed by NULL".into()));
                        }
                        pos += 1;
                    }
                    Some("REFERENCES") => {
                        pos += 1;
                        let t = tokens
                            .get(pos)
                            .ok_or_else(|| err("REFERENCES needs a table name".into()))?;
                        references = Some(t.clone());
                        pos += 1;
                    }
                    Some(other) => {
                        return Err(err(format!(
                            "unexpected token `{other}` in column `{name}`.`{col}`"
                        )))
                    }
                    None => return Err(err(format!("unterminated column list in `{name}`"))),
                }
            }
            builder = if nullable {
                builder.nullable_column(&col, data_type)
            } else {
                builder.column(&col, data_type)
            };
            if is_pk {
                builder = builder.primary_key(&col);
            }
            if is_time {
                builder = builder.time_column(&col);
            }
            if let Some(t) = references {
                builder = builder.foreign_key(&col, t);
            }
        }
        schemas.push(builder.build()?);
    }
    if schemas.is_empty() {
        return Err(err("DDL document declares no tables".into()));
    }
    Ok(schemas)
}

/// Render schemas back to DDL text (inverse of [`parse_ddl`]).
pub fn render_ddl(schemas: &[TableSchema]) -> String {
    let mut out = String::new();
    for s in schemas {
        out.push_str(&format!("TABLE {} (\n", s.name()));
        for (i, c) in s.columns().iter().enumerate() {
            out.push_str(&format!("    {} {}", c.name, c.data_type));
            if Some(c.name.as_str()) == s.primary_key() {
                out.push_str(" PRIMARY KEY");
            }
            if Some(c.name.as_str()) == s.time_column() {
                out.push_str(" TIME");
            }
            if let Some(fk) = s.foreign_key_on(&c.name) {
                out.push_str(&format!(" REFERENCES {}", fk.referenced_table));
            }
            if c.nullable {
                out.push_str(" NULL");
            }
            if i + 1 < s.columns().len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str(")\n\n");
    }
    out
}

/// Load a database from a directory: `schema.ddl` plus one
/// `<table>.csv` per declared table (missing CSVs mean empty tables).
/// Runs referential-integrity validation before returning.
pub fn load_database_dir(dir: impl AsRef<Path>) -> StoreResult<Database> {
    let dir = dir.as_ref();
    let ddl_path = dir.join("schema.ddl");
    let text = fs::read_to_string(&ddl_path).map_err(|e| {
        StoreError::InvalidSchema(format!("cannot read {}: {e}", ddl_path.display()))
    })?;
    let name = dir
        .file_name()
        .map(|n| n.to_string_lossy().to_string())
        .unwrap_or_else(|| "database".to_string());
    let mut db = Database::new(name);
    for schema in parse_ddl(&text)? {
        db.create_table(schema)?;
    }
    for table_name in db
        .table_names()
        .into_iter()
        .map(str::to_string)
        .collect::<Vec<_>>()
    {
        let csv_path = dir.join(format!("{table_name}.csv"));
        if !csv_path.exists() {
            continue;
        }
        let file = fs::File::open(&csv_path).map_err(|e| StoreError::Csv {
            line: 0,
            message: format!("cannot open {}: {e}", csv_path.display()),
        })?;
        load_csv(db.table_mut(&table_name)?, BufReader::new(file))?;
    }
    db.validate()?;
    Ok(db)
}

/// Save a database to a directory as `schema.ddl` + one CSV per table.
pub fn save_database_dir(db: &Database, dir: impl AsRef<Path>) -> StoreResult<()> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)
        .map_err(|e| StoreError::InvalidSchema(format!("cannot create {}: {e}", dir.display())))?;
    let schemas: Vec<TableSchema> = db.tables().iter().map(|t| t.schema().clone()).collect();
    fs::write(dir.join("schema.ddl"), render_ddl(&schemas))
        .map_err(|e| StoreError::InvalidSchema(format!("cannot write schema.ddl: {e}")))?;
    for table in db.tables() {
        let mut buf = Vec::new();
        write_csv(table, &mut buf).map_err(|e| StoreError::Csv {
            line: 0,
            message: format!("cannot serialize `{}`: {e}", table.name()),
        })?;
        fs::write(dir.join(format!("{}.csv", table.name())), buf).map_err(|e| StoreError::Csv {
            line: 0,
            message: format!("cannot write `{}`.csv: {e}", table.name()),
        })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;
    use crate::value::Value;

    const DDL: &str = "
        -- a shop
        TABLE customers (
            customer_id INT PRIMARY KEY,
            signup_time TIMESTAMP TIME,
            region TEXT,
            nickname TEXT NULL
        )
        TABLE orders (
            order_id INT PRIMARY KEY,
            customer_id INT REFERENCES customers,
            amount FLOAT,
            placed_at TIMESTAMP TIME  # event time
        )
    ";

    #[test]
    fn parses_tables_and_constraints() {
        let schemas = parse_ddl(DDL).unwrap();
        assert_eq!(schemas.len(), 2);
        let c = &schemas[0];
        assert_eq!(c.name(), "customers");
        assert_eq!(c.primary_key(), Some("customer_id"));
        assert_eq!(c.time_column(), Some("signup_time"));
        assert!(c.column("nickname").unwrap().nullable);
        assert!(!c.column("region").unwrap().nullable);
        let o = &schemas[1];
        assert_eq!(
            o.foreign_key_on("customer_id").unwrap().referenced_table,
            "customers"
        );
    }

    #[test]
    fn ddl_round_trips() {
        let schemas = parse_ddl(DDL).unwrap();
        let rendered = render_ddl(&schemas);
        let back = parse_ddl(&rendered).unwrap();
        assert_eq!(back, schemas);
    }

    #[test]
    fn rejects_malformed_ddl() {
        assert!(parse_ddl("").is_err());
        assert!(parse_ddl("TABLE t").is_err());
        assert!(parse_ddl("TABLE t (a WIBBLE)").is_err());
        assert!(parse_ddl("TABLE t (a INT PRIMARY)").is_err());
        assert!(parse_ddl("NOT_TABLE t (a INT)").is_err());
        assert!(parse_ddl("TABLE t (a INT").is_err());
    }

    #[test]
    fn directory_round_trip() {
        let dir = std::env::temp_dir().join(format!("relgraph_ddl_test_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut db = Database::new("shop");
        for s in parse_ddl(DDL).unwrap() {
            db.create_table(s).unwrap();
        }
        db.insert(
            "customers",
            Row::new()
                .push(1i64)
                .push(Value::Timestamp(5))
                .push("north")
                .push(Value::Null),
        )
        .unwrap();
        db.insert(
            "orders",
            Row::new()
                .push(10i64)
                .push(1i64)
                .push(9.5)
                .push(Value::Timestamp(8)),
        )
        .unwrap();
        save_database_dir(&db, &dir).unwrap();
        let loaded = load_database_dir(&dir).unwrap();
        assert_eq!(loaded.table_count(), 2);
        assert_eq!(loaded.table("customers").unwrap().len(), 1);
        assert_eq!(loaded.table("orders").unwrap().len(), 1);
        assert_eq!(
            loaded
                .table("orders")
                .unwrap()
                .value_by_name(0, "amount")
                .unwrap(),
            Value::Float(9.5)
        );
        loaded.validate().unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_detects_fk_violations() {
        let dir = std::env::temp_dir().join(format!("relgraph_ddl_bad_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("schema.ddl"), DDL).unwrap();
        fs::write(
            dir.join("customers.csv"),
            "customer_id,signup_time,region,nickname\n",
        )
        .unwrap();
        fs::write(
            dir.join("orders.csv"),
            "order_id,customer_id,amount,placed_at\n1,42,5.0,10\n",
        )
        .unwrap();
        assert!(matches!(
            load_database_dir(&dir),
            Err(StoreError::ForeignKeyViolation { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
