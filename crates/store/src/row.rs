//! Row values: a thin wrapper over a vector of cells.

use std::fmt;
use std::ops::Index;

use crate::value::Value;

/// A single row of cell values, in schema column order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// An empty row.
    pub fn new() -> Self {
        Row { values: Vec::new() }
    }

    /// Construct from cells.
    pub fn from(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// Number of cells.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Cell at position `i`.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// All cells.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume into cells.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Append a cell (builder style).
    pub fn push(mut self, v: impl Into<Value>) -> Self {
        self.values.push(v.into());
        self
    }

    /// Replace the cell at position `i` (used by ingest coercion).
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn set(&mut self, i: usize, v: impl Into<Value>) {
        self.values[i] = v.into();
    }
}

impl Index<usize> for Row {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.values[i]
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Row {
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_style_construction() {
        let r = Row::new().push(1i64).push("x").push(true);
        assert_eq!(r.arity(), 3);
        assert_eq!(r[0], Value::Int(1));
        assert_eq!(r[1], Value::Text("x".into()));
        assert_eq!(r[2], Value::Bool(true));
    }

    #[test]
    fn display_formats_tuple() {
        let r = Row::from(vec![Value::Int(1), Value::Null]);
        assert_eq!(r.to_string(), "(1, NULL)");
    }

    #[test]
    fn get_is_bounds_checked() {
        let r = Row::from(vec![Value::Int(1)]);
        assert!(r.get(0).is_some());
        assert!(r.get(1).is_none());
    }
}
