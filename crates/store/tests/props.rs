//! Property-based tests for the relational store.

use proptest::prelude::*;
use relgraph_store::{csv, DataType, Database, Row, Table, TableSchema, Value};

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        (-1e6f64..1e6).prop_map(Value::Float),
        "[a-z ,']{0,12}".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
        (0i64..1_000_000).prop_map(Value::Timestamp),
    ]
}

fn schema() -> TableSchema {
    TableSchema::builder("t")
        .column("id", DataType::Int)
        .nullable_column("num", DataType::Float)
        .nullable_column("txt", DataType::Text)
        .nullable_column("flag", DataType::Bool)
        .column("at", DataType::Timestamp)
        .primary_key("id")
        .time_column("at")
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn insert_then_read_back_exact(
        rows in proptest::collection::vec(
            (any::<i64>(), proptest::option::of(-1e6f64..1e6),
             proptest::option::of("[a-z]{0,8}"), proptest::option::of(any::<bool>()),
             0i64..1_000_000),
            1..30,
        )
    ) {
        let mut t = Table::new(schema());
        let mut expected = Vec::new();
        let mut seen_ids = std::collections::HashSet::new();
        for (id, num, txt, flag, at) in rows {
            if !seen_ids.insert(id) {
                continue; // duplicate PKs are rejected by design
            }
            let row = Row::from(vec![
                Value::Int(id),
                num.map_or(Value::Null, Value::Float),
                txt.clone().map_or(Value::Null, Value::Text),
                flag.map_or(Value::Null, Value::Bool),
                Value::Timestamp(at),
            ]);
            t.insert(row.clone()).unwrap();
            expected.push(row);
        }
        prop_assert_eq!(t.len(), expected.len());
        for (i, row) in expected.iter().enumerate() {
            prop_assert_eq!(&t.row(i).unwrap(), row);
            // PK index agrees.
            prop_assert_eq!(t.row_by_key(&row[0]), Some(i));
        }
    }

    #[test]
    fn csv_round_trip(
        rows in proptest::collection::vec(
            (0i64..10_000, proptest::option::of(-1e3f64..1e3),
             proptest::option::of("[a-z ,']{0,10}"), proptest::option::of(any::<bool>()),
             0i64..1_000_000),
            0..25,
        )
    ) {
        let mut t = Table::new(schema());
        let mut seen = std::collections::HashSet::new();
        for (id, num, txt, flag, at) in rows {
            if !seen.insert(id) {
                continue;
            }
            t.insert(Row::from(vec![
                Value::Int(id),
                num.map_or(Value::Null, Value::Float),
                txt.map_or(Value::Null, Value::Text),
                flag.map_or(Value::Null, Value::Bool),
                Value::Timestamp(at),
            ]))
            .unwrap();
        }
        let mut buf = Vec::new();
        csv::write_csv(&t, &mut buf).unwrap();
        let mut back = Table::new(schema());
        csv::load_csv(&mut back, buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), t.len());
        for i in 0..t.len() {
            prop_assert_eq!(back.row(i), t.row(i));
        }
    }

    #[test]
    fn csv_field_quoting_round_trips(s in "[ -~]{0,20}") {
        // Any printable-ASCII field survives quote/split.
        let quoted = csv::quote_field(&s);
        let back = csv::split_line(&quoted);
        prop_assert_eq!(back, vec![s]);
    }

    #[test]
    fn group_key_injective_within_sample(a in value_strategy(), b in value_strategy()) {
        if a.group_key() == b.group_key() {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn time_span_bounds_every_row(ts in proptest::collection::vec(0i64..1_000_000, 1..40)) {
        let mut t = Table::new(schema());
        for (i, &at) in ts.iter().enumerate() {
            t.insert(Row::from(vec![
                Value::Int(i as i64),
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Timestamp(at),
            ]))
            .unwrap();
        }
        let (lo, hi) = t.time_span().unwrap();
        prop_assert_eq!(lo, *ts.iter().min().unwrap());
        prop_assert_eq!(hi, *ts.iter().max().unwrap());
    }

    #[test]
    fn validate_accepts_consistent_fk_data(n_parents in 1usize..10, n_children in 0usize..30) {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::builder("p")
                .column("id", DataType::Int)
                .primary_key("id")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("c")
                .column("id", DataType::Int)
                .column("p_id", DataType::Int)
                .primary_key("id")
                .foreign_key("p_id", "p")
                .build()
                .unwrap(),
        )
        .unwrap();
        for i in 0..n_parents {
            db.insert("p", Row::new().push(i as i64)).unwrap();
        }
        for i in 0..n_children {
            db.insert("c", Row::new().push(i as i64).push((i % n_parents) as i64)).unwrap();
        }
        prop_assert_eq!(db.validate().unwrap(), n_children);
    }
}
