//! Corruption corpus for the on-disk format (mirrors `tests/pq_error_corpus.rs`
//! at the workspace root, which does the same for the query front end).
//!
//! Every damaged artifact a data directory can contain must surface as a
//! *structured* [`StoreError`] — naming the file and what is wrong with it —
//! and never a panic. The one deliberate exception is damage confined to
//! the WAL **body**: per-record checksums make that indistinguishable from
//! a torn tail after a crash, so `DataDir::open` succeeds and reports the
//! truncation instead (DESIGN.md §14.7).

use std::path::{Path, PathBuf};

use relgraph_store::persist::format::crc32;
use relgraph_store::{DataDir, DataType, Database, Row, StoreError, TableSchema, Value};

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "relgraph-persist-corpus-{tag}-{}",
        std::process::id()
    ))
}

/// A data dir whose base has both fixed-width and dictionary-encoded
/// (TEXT) columns, so every column-file shape is represented on disk.
fn fresh(tag: &str) -> PathBuf {
    let root = tmp(tag);
    let _ = std::fs::remove_dir_all(&root);
    let mut db = Database::new("corpus");
    db.create_table(
        TableSchema::builder("items")
            .column("id", DataType::Int)
            .column("label", DataType::Text)
            .column("at", DataType::Timestamp)
            .primary_key("id")
            .time_column("at")
            .build()
            .unwrap(),
    )
    .unwrap();
    for i in 0..20i64 {
        db.insert(
            "items",
            Row::new()
                .push(i)
                .push(Value::Text(format!("item-{}", i % 3)))
                .push(Value::Timestamp(1000 + i)),
        )
        .unwrap();
    }
    DataDir::create(&root, &db).unwrap();
    root
}

fn open_err(root: &Path) -> StoreError {
    match DataDir::open(root) {
        Ok(_) => panic!("corrupt data dir at {} opened cleanly", root.display()),
        Err(e) => e,
    }
}

/// The path of the first on-disk column segment of the `items` table.
fn first_col(root: &Path) -> PathBuf {
    let table_dir = root.join("base-000001").join("items");
    let mut cols: Vec<PathBuf> = std::fs::read_dir(&table_dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "col"))
        .collect();
    cols.sort();
    cols.into_iter().next().expect("at least one .col file")
}

#[test]
fn manifest_bad_crc_is_corrupt() {
    let root = fresh("manifest-crc");
    let path = root.join("MANIFEST");
    let mut text = std::fs::read_to_string(&path).unwrap();
    // Damage the name field; the recorded crc32 no longer matches.
    text = text.replace("name corpus", "name borpus");
    std::fs::write(&path, text).unwrap();
    let err = open_err(&root);
    assert!(
        matches!(&err, StoreError::Corrupt { file, .. } if file.contains("MANIFEST")),
        "want Corrupt(MANIFEST), got: {err}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn manifest_truncated_is_corrupt() {
    let root = fresh("manifest-trunc");
    std::fs::write(root.join("MANIFEST"), "relgraph-data v1\nname corpus\n").unwrap();
    assert!(
        matches!(open_err(&root), StoreError::Corrupt { .. }),
        "truncated manifest must be Corrupt"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn manifest_future_version_with_valid_crc_is_unsupported() {
    let root = fresh("manifest-ver");
    // The crc is validated before the version, so to reach the version
    // check the crafted body needs a *correct* trailer.
    let body = "relgraph-data v9\nname corpus\ngeneration 1\napplied_seq 0\n";
    let text = format!("{body}crc32 {:08X}\n", crc32(body.as_bytes()));
    std::fs::write(root.join("MANIFEST"), text).unwrap();
    let err = open_err(&root);
    assert!(
        matches!(
            &err,
            StoreError::UnsupportedVersion {
                found: 9,
                supported: 1,
                ..
            }
        ),
        "want UnsupportedVersion(found 9), got: {err}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn missing_manifest_is_an_error_not_a_panic() {
    let root = fresh("manifest-missing");
    std::fs::remove_file(root.join("MANIFEST")).unwrap();
    let _ = open_err(&root); // any structured error is fine; must not panic
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn column_file_shorter_than_header_is_corrupt() {
    let root = fresh("col-short");
    let col = first_col(&root);
    let bytes = std::fs::read(&col).unwrap();
    std::fs::write(&col, &bytes[..8.min(bytes.len())]).unwrap();
    assert!(
        matches!(open_err(&root), StoreError::Corrupt { .. }),
        "short column header must be Corrupt"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn column_file_truncated_mid_data_is_corrupt() {
    let root = fresh("col-trunc");
    let col = first_col(&root);
    let bytes = std::fs::read(&col).unwrap();
    std::fs::write(&col, &bytes[..bytes.len() - 5]).unwrap();
    assert!(
        matches!(open_err(&root), StoreError::Corrupt { .. }),
        "truncated column data must be Corrupt"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn column_file_bit_flip_is_corrupt() {
    let root = fresh("col-flip");
    let col = first_col(&root);
    let mut bytes = std::fs::read(&col).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&col, bytes).unwrap();
    assert!(
        matches!(open_err(&root), StoreError::Corrupt { .. }),
        "bit-flipped column data must fail its crc as Corrupt"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn dictionary_bit_flip_is_corrupt() {
    let root = fresh("dict-flip");
    let dict = root.join("base-000001").join("items").join("strings.dict");
    let mut bytes = std::fs::read(&dict).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&dict, bytes).unwrap();
    assert!(
        matches!(open_err(&root), StoreError::Corrupt { .. }),
        "bit-flipped string dictionary must be Corrupt"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn dictionary_count_header_bit_flip_is_corrupt() {
    let root = fresh("dict-count");
    let dict = root.join("base-000001").join("items").join("strings.dict");
    let mut bytes = std::fs::read(&dict).unwrap();
    // The u64 entry count at header bytes 8..16 is outside the body CRC;
    // setting its high byte makes it astronomically large. The reader must
    // reject it structurally, not overflow or attempt the allocation.
    bytes[15] = 0x80;
    std::fs::write(&dict, bytes).unwrap();
    assert!(
        matches!(open_err(&root), StoreError::Corrupt { .. }),
        "bit-flipped dictionary count must be Corrupt"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn quarantine_count_header_bit_flip_is_corrupt() {
    let root = fresh("quarantine-count");
    let qpath = root.join("base-000001").join("quarantine.bin");
    let mut bytes = std::fs::read(&qpath).unwrap();
    // The u64 record count at header bytes 8..16 is outside the body CRC;
    // a huge value must fail validation instead of panicking in
    // Vec::with_capacity.
    bytes[15] = 0x80;
    std::fs::write(&qpath, bytes).unwrap();
    assert!(
        matches!(open_err(&root), StoreError::Corrupt { .. }),
        "bit-flipped quarantine count must be Corrupt"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn wal_bad_magic_is_corrupt() {
    let root = fresh("wal-magic");
    let wal = root.join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes[0..4].copy_from_slice(b"NOPE");
    std::fs::write(&wal, bytes).unwrap();
    let err = open_err(&root);
    assert!(
        matches!(&err, StoreError::Corrupt { file, .. } if file.contains("wal")),
        "want Corrupt(wal), got: {err}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn wal_body_damage_recovers_instead_of_erroring() {
    use relgraph_store::{IngestPolicy, RowBatch};
    let root = fresh("wal-body");
    // Commit one batch, then flip a bit inside its record.
    let (mut dd, mut db, _) = DataDir::open(&root).unwrap();
    let before = db.clone();
    let batch = RowBatch::new().with(
        "items",
        Row::new()
            .push(100i64)
            .push(Value::Text("late".into()))
            .push(Value::Timestamp(5000)),
    );
    dd.ingest(&mut db, batch, &IngestPolicy::reject_all())
        .unwrap();
    drop(dd);
    let wal = root.join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x10;
    std::fs::write(&wal, bytes).unwrap();

    let (_, recovered, report) = DataDir::open(&root).unwrap();
    assert!(
        report.torn.is_some(),
        "body damage must be reported as torn"
    );
    assert_eq!(
        recovered, before,
        "damaged record must be dropped, earlier state intact"
    );
    let _ = std::fs::remove_dir_all(&root);
}
