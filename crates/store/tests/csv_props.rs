//! CSV round-trip properties: `quote_field` → `split_line_quoted` →
//! `parse_field_quoted` must be the identity on arbitrary field content,
//! and `write_csv` → `load_csv` must reproduce a table value-for-value.
//!
//! The generators deliberately draw from a hostile character pool (commas,
//! quotes, carriage returns, newlines, multi-byte characters) because the
//! quoting layer exists exactly for those.

use proptest::prelude::*;
use proptest::strategy::Just;
use relgraph_store::csv::{
    load_csv, parse_field_quoted, quote_field, split_line_quoted, write_csv,
};
use relgraph_store::{DataType, Row, Table, TableSchema, Value};

/// Strings over a pool of CSV-hostile characters.
fn nasty_string(pool: &'static [char], max_len: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..pool.len(), 0..max_len)
        .prop_map(move |ixs| ixs.into_iter().map(|i| pool[i]).collect())
}

/// Everything the quoting layer claims to handle, including newlines
/// (legal inside a *field* at the split level, even though the file
/// format is line-based).
const FULL_POOL: &[char] = &[',', '"', '\n', '\r', 'a', 'b', ' ', 'é', '7', '@'];

/// The subset valid inside a CSV *file*: no embedded newlines (the
/// documented RFC-4180 subset), but carriage returns are fair game —
/// line-based readers strip a trailing `\r`, so unquoted ones at
/// end-of-line are exactly where truncation bugs hide.
const FILE_POOL: &[char] = &[',', '"', '\r', 'a', 'b', ' ', 'é', '7', '@'];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// quote → split → parse is the identity on any single field: one
    /// field comes back, with the original content, and a text-typed
    /// parse reproduces it exactly (quoting keeps the empty string
    /// distinguishable from NULL).
    #[test]
    fn field_quote_split_parse_identity(s in nasty_string(FULL_POOL, 12)) {
        let encoded = quote_field(&s);
        let fields = split_line_quoted(&encoded);
        prop_assert_eq!(fields.len(), 1, "field split into multiple pieces");
        let (field, quoted) = &fields[0];
        prop_assert_eq!(field, &s);
        let parsed = parse_field_quoted(field, *quoted, DataType::Text, 1).unwrap();
        prop_assert_eq!(parsed, Value::Text(s));
    }

    /// A whole line of quoted fields splits back into the same fields in
    /// order, regardless of embedded commas/quotes/newlines.
    #[test]
    fn line_quote_split_identity(fields in proptest::collection::vec(nasty_string(FULL_POOL, 8), 1..6)) {
        let line: Vec<String> = fields.iter().map(|f| quote_field(f)).collect();
        let back: Vec<String> = split_line_quoted(&line.join(","))
            .into_iter()
            .map(|(f, _)| f)
            .collect();
        prop_assert_eq!(back, fields);
    }

    /// Encoding a typed value the way `write_csv` does, then parsing it
    /// back with the column's type, reproduces the value — for every data
    /// type including NULL.
    #[test]
    fn value_encode_parse_identity(v in value_strategy()) {
        let (value, ty) = v;
        let encoded = match &value {
            Value::Null => String::new(),
            Value::Timestamp(t) => quote_field(&t.to_string()),
            other => quote_field(&other.to_string()),
        };
        let fields = split_line_quoted(&encoded);
        prop_assert_eq!(fields.len(), 1);
        let (field, quoted) = &fields[0];
        let parsed = parse_field_quoted(field, *quoted, ty, 1).unwrap();
        prop_assert_eq!(parsed, value);
    }

    /// Full-file round trip: `write_csv` then `load_csv` reproduces every
    /// cell of a table whose text cells range over the file-legal pool —
    /// including carriage returns in the last column, where a line-based
    /// reader would silently truncate an unquoted trailing `\r`.
    #[test]
    fn table_write_load_round_trip(rows in proptest::collection::vec(row_strategy(), 0..12)) {
        let mut t = fixture();
        for (i, (score, flag, note)) in rows.iter().enumerate() {
            t.insert(
                Row::new()
                    .push(i as i64)
                    .push(score.map_or(Value::Null, Value::Float))
                    .push(flag.map_or(Value::Null, Value::Bool))
                    .push(Value::Timestamp(i as i64))
                    .push(note.clone().map_or(Value::Null, Value::Text)),
            )
            .unwrap();
        }
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let mut t2 = fixture();
        let n = load_csv(&mut t2, buf.as_slice()).unwrap();
        prop_assert_eq!(n, rows.len());
        for i in 0..t.len() {
            for c in 0..t.schema().arity() {
                prop_assert_eq!(
                    t.value(i, c),
                    t2.value(i, c),
                    "cell ({}, {}) changed across the round trip",
                    i,
                    c
                );
            }
        }
    }
}

/// `(value, declared column type)` pairs covering every [`DataType`].
fn value_strategy() -> impl Strategy<Value = (Value, DataType)> {
    prop_oneof![
        (-1_000_000_000_000i64..1_000_000_000_000).prop_map(|v| (Value::Int(v), DataType::Int)),
        (-1.0e12f64..1.0e12).prop_map(|v| (Value::Float(v), DataType::Float)),
        nasty_string(FULL_POOL, 10).prop_map(|s| (Value::Text(s), DataType::Text)),
        prop_oneof![Just(true), Just(false)].prop_map(|b| (Value::Bool(b), DataType::Bool)),
        (0i64..4_000_000_000).prop_map(|t| (Value::Timestamp(t), DataType::Timestamp)),
        prop_oneof![
            Just(DataType::Int),
            Just(DataType::Float),
            Just(DataType::Text),
            Just(DataType::Bool),
            Just(DataType::Timestamp),
        ]
        .prop_map(|ty| (Value::Null, ty)),
    ]
}

/// Optional score / flag / note cell contents for one row.
#[allow(clippy::type_complexity)]
fn row_strategy() -> impl Strategy<Value = (Option<f64>, Option<bool>, Option<String>)> {
    (
        proptest::option::of(-1.0e6f64..1.0e6),
        proptest::option::of(prop_oneof![Just(true), Just(false)]),
        proptest::option::of(nasty_string(FILE_POOL, 8)),
    )
}

/// Five columns, one per data type; the nullable text column sits *last*
/// so its encoding is adjacent to the line terminator.
fn fixture() -> Table {
    Table::new(
        TableSchema::builder("props")
            .column("id", DataType::Int)
            .nullable_column("score", DataType::Float)
            .nullable_column("flag", DataType::Bool)
            .column("at", DataType::Timestamp)
            .nullable_column("note", DataType::Text)
            .primary_key("id")
            .time_column("at")
            .build()
            .unwrap(),
    )
}
