//! Kill-point-injection properties for the durable data directory.
//!
//! The durability contract (DESIGN.md §14.7): a crash at **any byte
//! offset** of the WAL recovers to exactly the state after the last
//! committed ingest batch — bit-identical to an uninterrupted run that
//! stopped there. The property test drives random ingest schedules
//! (random batch sizes, values, timestamps, policies — some batches are
//! legitimately rejected), then simulates a crash by truncating the WAL
//! at an arbitrary fraction of its length and reopening.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use relgraph_store::persist::wal::{Wal, WAL_HEADER_LEN};
use relgraph_store::{
    CommitWindow, DataDir, DataType, Database, IngestPolicy, Row, RowBatch, TableSchema, Value,
};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "relgraph-persist-props-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A minimal time-columned table: timestamps interact with the ingest
/// watermark, so late batches genuinely get rejected under `reject_all`.
fn events_db() -> Database {
    let mut db = Database::new("props");
    db.create_table(
        TableSchema::builder("events")
            .column("id", DataType::Int)
            .column("val", DataType::Float)
            .column("at", DataType::Timestamp)
            .primary_key("id")
            .time_column("at")
            .build()
            .unwrap(),
    )
    .unwrap();
    // Seed rows so the base snapshot is non-trivial and a watermark exists.
    db.insert(
        "events",
        Row::new().push(0i64).push(1.5).push(Value::Timestamp(100)),
    )
    .unwrap();
    db.insert(
        "events",
        Row::new().push(1i64).push(-2.0).push(Value::Timestamp(200)),
    )
    .unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Crash anywhere → reopen lands on a committed prefix, bit-identical
    /// to the live database as it was right after that batch.
    #[test]
    fn any_crash_offset_recovers_a_committed_prefix(
        batches in proptest::collection::vec(
            proptest::collection::vec((0i64..1_000, -5.0f64..5.0), 0..4),
            1..4,
        ),
        coerce in any::<bool>(),
        cut_frac in 0.0f64..=1.0,
    ) {
        let root = tmp("crash");
        let _ = std::fs::remove_dir_all(&root);
        let mut db = events_db();
        let mut dd = DataDir::create(&root, &db).unwrap();
        let policy = if coerce {
            IngestPolicy::coerce_all()
        } else {
            IngestPolicy::reject_all()
        };

        // Apply the schedule, remembering the database after every batch.
        // Rejected batches (late timestamps under reject_all) leave the
        // database unchanged but still occupy a committed WAL record.
        let mut id = 100i64;
        let mut states = vec![db.clone()];
        for rows in &batches {
            let mut batch = RowBatch::new();
            for &(t, v) in rows {
                batch.push(
                    "events",
                    Row::new().push(id).push(v).push(Value::Timestamp(t)),
                );
                id += 1;
            }
            let _ = dd.ingest(&mut db, batch, &policy);
            states.push(db.clone());
        }
        drop(dd);

        // Crash: truncate the WAL at an arbitrary byte offset.
        let wal_path = root.join("wal.log");
        let bytes = std::fs::read(&wal_path).unwrap();
        let cut = ((bytes.len() as f64) * cut_frac).round() as usize;
        let cut = cut.min(bytes.len());
        // Committed prefix at the cut, from the untruncated log.
        let committed = Wal::scan(&wal_path, 0)
            .unwrap()
            .records
            .iter()
            .filter(|r| r.end_offset <= cut as u64)
            .count();
        std::fs::write(&wal_path, &bytes[..cut]).unwrap();

        if (cut as u64) < WAL_HEADER_LEN {
            // Not even a full header survives: that is a structured error
            // (the file's identity cannot be validated), never a panic.
            prop_assert!(DataDir::open(&root).is_err());
        } else {
            let (_, recovered, report) = DataDir::open(&root).unwrap();
            prop_assert_eq!(&recovered, &states[committed]);
            prop_assert_eq!(report.replayed, committed);
            // A second open must be clean: the torn tail was truncated.
            let (_, again, report2) = DataDir::open(&root).unwrap();
            prop_assert_eq!(&again, &recovered);
            prop_assert!(report2.torn.is_none());
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Crash *inside* a group-commit window (DESIGN.md §14.8): recovery
    /// yields exactly the batches whose covering fsync returned — an
    /// acknowledgement boundary. A group frame cut at any interior byte
    /// disappears whole (never a half-acknowledged group), and batches
    /// still buffered in the pipeline at the crash were never written,
    /// never acknowledged, and never reappear. Swept across the window
    /// shapes: per-batch (the legacy degenerate window), a 4-batch
    /// window, and a byte-capped window that flushes mid-run on payload
    /// size.
    #[test]
    fn crash_inside_group_window_recovers_acknowledged_groups_only(
        batches in proptest::collection::vec(
            proptest::collection::vec((0i64..1_000, -5.0f64..5.0), 0..4),
            1..8,
        ),
        window_sel in 0usize..3,
        coerce in any::<bool>(),
        cut_frac in 0.0f64..=1.0,
        flush_tail in any::<bool>(),
    ) {
        let root = tmp("group");
        let _ = std::fs::remove_dir_all(&root);
        let mut db = events_db();
        let mut dd = DataDir::create(&root, &db).unwrap();
        dd.set_commit_window(match window_sel {
            0 => CommitWindow::batches(1),
            1 => CommitWindow::batches(4),
            // Byte-capped: the batch cap never triggers; payload size
            // closes the window after one or two small batches.
            _ => CommitWindow {
                max_batches: 64,
                max_bytes: 96,
                max_delay: std::time::Duration::ZERO,
            },
        });
        let policy = if coerce {
            IngestPolicy::coerce_all()
        } else {
            IngestPolicy::reject_all()
        };

        // Submit the schedule, remembering the database at every
        // *acknowledgement* boundary (covering fsync returned), keyed by
        // how many batches were durable at that point. States inside an
        // open window are deliberately absent: no cut may produce them.
        let mut id = 100i64;
        let mut acked = 0usize;
        let mut boundary_states = std::collections::HashMap::new();
        boundary_states.insert(0usize, db.clone());
        for rows in &batches {
            let mut batch = RowBatch::new();
            for &(t, v) in rows {
                batch.push(
                    "events",
                    Row::new().push(id).push(v).push(Value::Timestamp(t)),
                );
                id += 1;
            }
            if let Some(flush) = dd.submit_ingest(&mut db, batch, &policy).unwrap() {
                acked += flush.reports.len();
                boundary_states.insert(acked, db.clone());
            }
        }
        if flush_tail {
            if let Some(flush) = dd.flush_ingest(&mut db).unwrap() {
                acked += flush.reports.len();
                boundary_states.insert(acked, db.clone());
            }
        }
        // Dropping with batches still buffered == crash before their
        // fsync: they were never acknowledged and must never reappear.
        drop(dd);

        let wal_path = root.join("wal.log");
        let bytes = std::fs::read(&wal_path).unwrap();
        let cut = (((bytes.len() as f64) * cut_frac).round() as usize).min(bytes.len());
        // Committed prefix at the cut, from the untruncated log. Group
        // members all share their frame's end offset, so a cut inside a
        // frame drops every member of that group.
        let committed = Wal::scan(&wal_path, 0)
            .unwrap()
            .records
            .iter()
            .filter(|r| r.end_offset <= cut as u64)
            .count();
        std::fs::write(&wal_path, &bytes[..cut]).unwrap();

        if (cut as u64) < WAL_HEADER_LEN {
            prop_assert!(DataDir::open(&root).is_err());
        } else {
            prop_assert!(
                boundary_states.contains_key(&committed),
                "cut at {cut} recovered {committed} batches — not an \
                 acknowledgement boundary (boundaries: {:?})",
                { let mut b: Vec<_> = boundary_states.keys().copied().collect(); b.sort(); b },
            );
            let (_, recovered, report) = DataDir::open(&root).unwrap();
            prop_assert_eq!(&recovered, &boundary_states[&committed]);
            prop_assert_eq!(report.replayed, committed);
            // A second open must be clean: the torn tail was truncated.
            let (_, again, report2) = DataDir::open(&root).unwrap();
            prop_assert_eq!(&again, &recovered);
            prop_assert!(report2.torn.is_none());
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Bit-flip anywhere in a WAL record's payload → the record (and
    /// everything after it) is discarded as torn; everything before it
    /// replays intact. No flipped bit may panic or corrupt earlier state.
    #[test]
    fn any_payload_bit_flip_truncates_not_corrupts(
        n_batches in 1usize..4,
        flip_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        let root = tmp("flip");
        let _ = std::fs::remove_dir_all(&root);
        let mut db = events_db();
        let mut dd = DataDir::create(&root, &db).unwrap();
        let mut states = vec![db.clone()];
        for i in 0..n_batches {
            let batch = RowBatch::new().with(
                "events",
                Row::new()
                    .push(500 + i as i64)
                    .push(i as f64)
                    .push(Value::Timestamp(300 + i as i64)),
            );
            dd.ingest(&mut db, batch, &IngestPolicy::reject_all()).unwrap();
            states.push(db.clone());
        }
        drop(dd);

        let wal_path = root.join("wal.log");
        let mut bytes = std::fs::read(&wal_path).unwrap();
        let body = bytes.len() - WAL_HEADER_LEN as usize;
        prop_assert!(body > 0, "n_batches >= 1 must leave WAL records");
        let at = WAL_HEADER_LEN as usize
            + ((body as f64 - 1.0) * flip_frac).round() as usize;
        bytes[at] ^= 1 << flip_bit;
        // Which record did the flip land in? Everything from that record
        // on is lost; everything before replays.
        let scan = Wal::scan(&wal_path, 0).unwrap();
        let intact = scan
            .records
            .iter()
            .take_while(|r| r.end_offset <= at as u64)
            .count();
        std::fs::write(&wal_path, &bytes).unwrap();

        let (_, recovered, report) = DataDir::open(&root).unwrap();
        prop_assert_eq!(&recovered, &states[intact]);
        prop_assert!(report.torn.is_some(), "flip at {at} not flagged as torn");
        let _ = std::fs::remove_dir_all(&root);
    }
}
