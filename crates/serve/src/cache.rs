//! Bounded LRU caches for the serving engine.
//!
//! [`Lru`] is an intrusive-list LRU over a slab: O(1) get/insert/remove,
//! no per-operation allocation once warm. The engine stacks two of them —
//! a small one for final per-entity predictions and a larger one for hop-ℓ
//! node embeddings ([`EmbeddingCache`], which implements
//! [`relgraph_gnn::EmbeddingStore`] so `predict_nodes` can consult it
//! mid-recursion). Since cached embeddings are pure functions of
//! `(type, node, level, anchor)`, the caches can only ever *skip* work,
//! never change a value — correctness reduces to evicting the right
//! entries when the graph underneath changes (see `engine::ServeEngine`).

use std::collections::HashMap;
use std::hash::Hash;

use relgraph_gnn::EmbeddingStore;

const NIL: usize = usize::MAX;

struct Slot<K, V> {
    key: K,
    val: V,
    prev: usize,
    next: usize,
}

/// A bounded least-recently-used map. `get` promotes, `insert` evicts the
/// coldest entry once `cap` is reached.
pub struct Lru<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    cap: usize,
    /// Entries displaced by capacity pressure since construction/`clear`.
    pub evictions: u64,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// An empty cache holding at most `cap` entries (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Lru {
            map: HashMap::with_capacity(cap.min(1 << 16)),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            cap,
            evictions: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Look up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let &i = self.map.get(key)?;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(&self.slots[i].val)
    }

    /// Insert (or overwrite) `key`, evicting the least-recently-used entry
    /// if the cache is full. The entry becomes most-recently-used.
    pub fn insert(&mut self, key: K, val: V) {
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].val = val;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return;
        }
        if self.map.len() >= self.cap {
            let coldest = self.tail;
            debug_assert_ne!(coldest, NIL);
            self.unlink(coldest);
            self.map.remove(&self.slots[coldest].key);
            self.free.push(coldest);
            self.evictions += 1;
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i].key = key.clone();
                self.slots[i].val = val;
                i
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    val,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
    }

    /// Drop `key` if present (precise invalidation). Returns whether an
    /// entry was removed. Does not count as an eviction.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.map.remove(key) {
            Some(i) => {
                self.unlink(i);
                self.free.push(i);
                true
            }
            None => false,
        }
    }

    /// Drop everything (anchor-advance flush). Eviction count resets too —
    /// a flush is accounted separately by the engine.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.evictions = 0;
    }
}

/// Hit/miss/eviction accounting across both cache tiers, exported into
/// run reports (`serve.cache.*` counters, schema version 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Prediction-tier lookups answered from cache.
    pub prediction_hits: u64,
    /// Prediction-tier lookups that fell through to inference.
    pub prediction_misses: u64,
    /// Prediction-tier entries displaced by capacity pressure.
    pub prediction_evictions: u64,
    /// Embedding-tier lookups answered from cache (mid-recursion).
    pub embedding_hits: u64,
    /// Embedding-tier lookups that had to be recomputed.
    pub embedding_misses: u64,
    /// Embedding-tier entries displaced by capacity pressure.
    pub embedding_evictions: u64,
    /// L1-miss embedding lookups answered by the shared L2 tier.
    pub l2_hits: u64,
    /// L1-miss embedding lookups the shared L2 tier missed too (the
    /// embedding was recomputed).
    pub l2_misses: u64,
    /// Embedding entries dropped by precise delta invalidation.
    pub invalidated_embeddings: u64,
    /// Prediction entries dropped by precise delta invalidation.
    pub invalidated_predictions: u64,
    /// Whole-cache flushes (anchor advanced or graph rebuilt).
    pub flushes: u64,
}

impl CacheStats {
    /// Prediction-tier hit rate in `[0, 1]`, or `None` before any lookup.
    pub fn prediction_hit_rate(&self) -> Option<f64> {
        let total = self.prediction_hits + self.prediction_misses;
        (total > 0).then(|| self.prediction_hits as f64 / total as f64)
    }

    /// Embedding-tier hit rate in `[0, 1]`, or `None` before any lookup.
    pub fn embedding_hit_rate(&self) -> Option<f64> {
        let total = self.embedding_hits + self.embedding_misses;
        (total > 0).then(|| self.embedding_hits as f64 / total as f64)
    }

    /// Shared-L2 hit rate among L1 misses that consulted the tier, in
    /// `[0, 1]`, or `None` when L2 was never consulted.
    pub fn l2_hit_rate(&self) -> Option<f64> {
        let total = self.l2_hits + self.l2_misses;
        (total > 0).then(|| self.l2_hits as f64 / total as f64)
    }

    /// Fold `other` into `self` field-wise. The sharded tier aggregates
    /// per-shard slices with this before publishing, so the run report's
    /// cache section is the sum over shards, counted exactly once.
    pub fn merge(&mut self, other: &CacheStats) {
        self.prediction_hits += other.prediction_hits;
        self.prediction_misses += other.prediction_misses;
        self.prediction_evictions += other.prediction_evictions;
        self.embedding_hits += other.embedding_hits;
        self.embedding_misses += other.embedding_misses;
        self.embedding_evictions += other.embedding_evictions;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
        self.invalidated_embeddings += other.invalidated_embeddings;
        self.invalidated_predictions += other.invalidated_predictions;
        self.flushes += other.flushes;
    }

    /// Publish these totals as the process's `serve.cache.*` counters and
    /// hit-rate gauges. Idempotent: counters are *set* to the absolute
    /// totals (via `relgraph_obs::counter_to`), never re-added, so calling
    /// at any cadence — or once per shard-aggregate — cannot double-count.
    /// Exactly one aggregator must own the `serve.cache.*` names per
    /// process (the engine, or the sharded tier summing its shards).
    pub fn publish(&self) {
        if !relgraph_obs::enabled() {
            return;
        }
        for (name, value) in [
            ("serve.cache.prediction.hits", self.prediction_hits),
            ("serve.cache.prediction.misses", self.prediction_misses),
            (
                "serve.cache.prediction.evictions",
                self.prediction_evictions,
            ),
            ("serve.cache.embedding.hits", self.embedding_hits),
            ("serve.cache.embedding.misses", self.embedding_misses),
            ("serve.cache.embedding.evictions", self.embedding_evictions),
            ("serve.l2.hits", self.l2_hits),
            ("serve.l2.misses", self.l2_misses),
        ] {
            relgraph_obs::counter_to(name, value);
        }
        if let Some(r) = self.prediction_hit_rate() {
            relgraph_obs::gauge("serve.cache.prediction.hit_rate", r);
        }
        if let Some(r) = self.embedding_hit_rate() {
            relgraph_obs::gauge("serve.cache.embedding.hit_rate", r);
        }
        if let Some(r) = self.l2_hit_rate() {
            relgraph_obs::gauge("serve.l2.hit_rate", r);
        }
    }
}

/// The embedding tier: an [`Lru`] keyed `(node type, node, level)` that
/// plugs into [`relgraph_gnn::predict_nodes`] as its [`EmbeddingStore`].
pub struct EmbeddingCache {
    lru: Lru<(usize, usize, usize), Vec<f64>>,
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
}

impl EmbeddingCache {
    /// An empty cache holding at most `cap` embeddings.
    pub fn new(cap: usize) -> Self {
        EmbeddingCache {
            lru: Lru::new(cap),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached embeddings.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Entries displaced by capacity pressure.
    pub fn evictions(&self) -> u64 {
        self.lru.evictions
    }

    /// Drop one `(type, node, level)` entry; true if it was present.
    pub fn invalidate(&mut self, ty: usize, node: usize, level: usize) -> bool {
        self.lru.remove(&(ty, node, level))
    }

    /// Drop everything (the hit/miss counters survive; they describe the
    /// engine's lifetime, not one anchor's).
    pub fn clear(&mut self) {
        self.lru.clear();
    }
}

impl EmbeddingStore for EmbeddingCache {
    fn get(&mut self, ty: usize, node: usize, level: usize) -> Option<Vec<f64>> {
        match self.lru.get(&(ty, node, level)) {
            Some(emb) => {
                self.hits += 1;
                Some(emb.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn put(&mut self, ty: usize, node: usize, level: usize, emb: Vec<f64>) {
        self.lru.insert((ty, node, level), emb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_promotes_and_insert_evicts_coldest() {
        let mut lru: Lru<u32, u32> = Lru::new(3);
        lru.insert(1, 10);
        lru.insert(2, 20);
        lru.insert(3, 30);
        assert_eq!(lru.get(&1), Some(&10)); // 1 is now hottest; 2 coldest
        lru.insert(4, 40);
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.evictions, 1);
        assert_eq!(lru.get(&2), None, "coldest entry evicted");
        assert_eq!(lru.get(&1), Some(&10));
        assert_eq!(lru.get(&3), Some(&30));
        assert_eq!(lru.get(&4), Some(&40));
    }

    #[test]
    fn overwrite_does_not_evict() {
        let mut lru: Lru<u32, u32> = Lru::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        lru.insert(1, 11);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.evictions, 0);
        assert_eq!(lru.get(&1), Some(&11));
        assert_eq!(lru.get(&2), Some(&20));
    }

    #[test]
    fn remove_frees_capacity_without_counting_eviction() {
        let mut lru: Lru<u32, u32> = Lru::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        assert!(lru.remove(&1));
        assert!(!lru.remove(&1));
        lru.insert(3, 30);
        assert_eq!(lru.evictions, 0);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&2), Some(&20));
        assert_eq!(lru.get(&3), Some(&30));
    }

    #[test]
    fn single_slot_cache_churns_correctly() {
        let mut lru: Lru<u32, u32> = Lru::new(1);
        for i in 0..10 {
            lru.insert(i, i);
            assert_eq!(lru.get(&i), Some(&i));
            assert_eq!(lru.len(), 1);
        }
        assert_eq!(lru.evictions, 9);
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.evictions, 0);
    }

    #[test]
    fn heavy_mixed_workload_matches_reference_model() {
        // Differential test against a naive Vec-based LRU.
        let cap = 8;
        let mut lru: Lru<u64, u64> = Lru::new(cap);
        let mut reference: Vec<(u64, u64)> = Vec::new(); // front = hottest
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..4000 {
            let op = next() % 3;
            let key = next() % 24;
            match op {
                0 => {
                    let got = lru.get(&key).copied();
                    let pos = reference.iter().position(|&(k, _)| k == key);
                    let want = pos.map(|p| {
                        let e = reference.remove(p);
                        reference.insert(0, e);
                        e.1
                    });
                    assert_eq!(got, want);
                }
                1 => {
                    let val = next();
                    lru.insert(key, val);
                    if let Some(p) = reference.iter().position(|&(k, _)| k == key) {
                        reference.remove(p);
                    } else if reference.len() >= cap {
                        reference.pop();
                    }
                    reference.insert(0, (key, val));
                }
                _ => {
                    let got = lru.remove(&key);
                    let pos = reference.iter().position(|&(k, _)| k == key);
                    assert_eq!(got, pos.is_some());
                    if let Some(p) = pos {
                        reference.remove(p);
                    }
                }
            }
            assert_eq!(lru.len(), reference.len());
        }
    }

    #[test]
    fn embedding_cache_counts_hits_and_misses() {
        let mut c = EmbeddingCache::new(4);
        assert!(c.get(0, 1, 0).is_none());
        c.put(0, 1, 0, vec![1.0, 2.0]);
        assert_eq!(c.get(0, 1, 0), Some(vec![1.0, 2.0]));
        assert_eq!((c.hits, c.misses), (1, 1));
        assert!(c.invalidate(0, 1, 0));
        assert!(!c.invalidate(0, 1, 0));
        assert!(c.get(0, 1, 0).is_none());
        assert_eq!((c.hits, c.misses), (1, 2));
    }
}
