//! The sharded concurrent serving tier: per-core engine shards over
//! epoch-swapped graph snapshots.
//!
//! # Shape
//!
//! A [`ShardedEngine`] splits the single-threaded
//! [`ServeEngine`](crate::ServeEngine) into three roles:
//!
//! * **Shards** — `N` worker threads, each exclusively owning one slice of
//!   the two-tier cache (a prediction [`Lru`] and an [`EmbeddingTier`]
//!   matching the configured serving precision).
//!   A shard drains its [`InboxSet`] inbox greedily (a lone job never
//!   waits, a backlog fuses into one inference batch) and scores against
//!   whatever graph snapshot it currently holds. Nothing a shard owns is shared, so
//!   the scoring path takes **no lock**: its only synchronization is one
//!   atomic epoch load per batch.
//! * **The writer** — [`ShardedEngine::ingest`] (serialized by a mutex,
//!   never contended by readers) appends rows, applies the graph delta to
//!   a *private* copy via `update_graph_snapshot`, derives an
//!   [`InvalidationPlan`], and publishes the next [`GraphSnapshot`]
//!   through an [`EpochCell`] — the hand-rolled arc-swap. A failed delta
//!   can only poison the writer's private copy; readers keep the old
//!   snapshot until the rebuild publishes.
//! * **The front-end** — `predict_batch_*` resolves keys against the
//!   current snapshot, scatters rows into per-shard [`InboxSet`] inboxes
//!   by hash, and gathers replies. Routing is **load balancing, not
//!   correctness**: every shard can score every row, and invalidation
//!   plans broadcast to all shards, so any shard count produces
//!   bit-identical predictions (`tests/serving_equivalence.rs` sweeps
//!   shard counts 1/2/4/8). Because placement is only preference, an
//!   idle shard *steals* from a backlogged one — a hot-keyed client
//!   cannot serialize the tier (`serve.steal.*` counters).
//!
//! Under the per-shard L1 caches sits one shared read-mostly
//! [`L2Tier`]: hub embeddings are computed once,
//! promoted, and read lock-free by every shard at a matching epoch —
//! see the [`l2`](crate::l2) module docs for the coherence protocol.
//! With `cfg.affinity`, each shard pins itself to one core
//! ([`pin_current_thread`](crate::affinity::pin_current_thread)) so its
//! L1 slabs and inbox stay local.
//!
//! # Catching up
//!
//! Each published snapshot carries the last [`PLAN_HISTORY`] plans. A
//! shard that slept through epochs `s+1..=e` applies exactly those plans
//! in order; if the snapshot no longer retains plan `s+1`, the shard
//! flushes its slice wholesale instead. A flush is always *safe* (caches
//! only skip work, never change values), so correctness never depends on
//! the history bound — only warm-hit rate does.

use std::collections::VecDeque;
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use relgraph_db2graph::{
    build_graph, update_graph_snapshot, ConvertOptions, GraphCursor, GraphMapping,
};
use relgraph_gnn::{InferModel32, NodeModel, Precision};
use relgraph_graph::{FeatureMatrix, HeteroGraph, NodeTypeId};
use relgraph_obs as obs;
use relgraph_pq::{ExecConfig, PreparedQuery};
use relgraph_store::{Database, IngestPolicy, RowBatch, Timestamp, Value};

use crate::cache::{CacheStats, Lru};
use crate::engine::{
    deploy_anchor, predict_batch_cached, predict_batch_cached32, GroupIngestOutcome, IngestOutcome,
    ServeConfig,
};
use crate::epoch::EpochCell;
use crate::error::{ServeError, ServeResult};
use crate::invalidate::{dirty_closure, evict_dirty, grown_tables, InvalidationPlan};
use crate::l2::{L2Tier, TieredStore, TieredStore32};
use crate::quant::EmbeddingTier;
use crate::steal::InboxSet;

/// How many invalidation plans a snapshot retains. A shard more than this
/// many epochs behind flushes its cache slice instead of replaying plans —
/// a hit-rate cost, never a correctness one.
pub const PLAN_HISTORY: usize = 8;

/// Preferred depth bound of each shard's inbox, in jobs. Pushes beyond
/// this spill to the least-loaded inbox (`serve.steal.spills`) — the
/// back-pressure valve that keeps a hot-keyed stream from piling work on
/// one shard faster than stealing can drain it.
pub const INBOX_CAP: usize = 128;

/// One published graph version: everything a reader needs, immutable.
pub struct GraphSnapshot {
    /// Version number; plans transition caches between consecutive epochs.
    pub epoch: u64,
    /// The database at this version (key resolution, deploy entities).
    pub db: Database,
    /// The compiled graph at this version.
    pub graph: HeteroGraph,
    /// Deploy anchor at this version.
    pub anchor: Timestamp,
    /// The last [`PLAN_HISTORY`] plans, ascending by epoch, ending at
    /// `epoch`. Empty at epoch 0.
    pub plans: Vec<InvalidationPlan>,
}

/// Immutable state every thread of the tier shares.
struct Shared {
    model: Arc<NodeModel>,
    /// Weights down-converted once at assembly; `None` in `F64` mode.
    model32: Option<Arc<InferModel32>>,
    node_type: NodeTypeId,
    entity_table: String,
    hops: usize,
    cell: EpochCell<GraphSnapshot>,
    /// The shared read-mostly L2 embedding tier under the per-shard L1s.
    l2: L2Tier,
    cfg: ServeConfig,
}

/// A scatter job: score `rows`, send `(tag, predictions)` back. `tag` is
/// the *routing bucket* the gather side indexed its positions by — it
/// identifies the reply regardless of which shard actually computed it
/// (stealing moves jobs between shards, never between buckets).
struct Job {
    rows: Vec<usize>,
    tag: usize,
    reply: Sender<(usize, Vec<f64>)>,
}

struct ShardHandle {
    stats: Arc<Mutex<CacheStats>>,
    thread: Option<JoinHandle<()>>,
}

/// Mutable writer-side state, touched only under the writer mutex.
///
/// Deliberately holds no graph: the previous graph version lives in the
/// published snapshot (immutable, and this writer is its only publisher),
/// so each ingest reads it from there and *moves* the freshly built graph
/// into the next snapshot — one graph copy per delta (inside
/// `update_graph_snapshot`), not two.
struct WriterState {
    db: Database,
    mapping: GraphMapping,
    cursor: GraphCursor,
    opts: ConvertOptions,
    query: PreparedQuery,
    anchor: Timestamp,
    epoch: u64,
    plans: VecDeque<InvalidationPlan>,
}

/// A concurrently served predictive query: `N` cache shards, one writer,
/// epoch-swapped snapshots. See the module docs for the full model.
pub struct ShardedEngine {
    shared: Arc<Shared>,
    inboxes: Arc<InboxSet<Job>>,
    shards: Vec<ShardHandle>,
    writer: Mutex<WriterState>,
    metrics: Vec<(String, f64)>,
}

impl ShardedEngine {
    /// Fit the query on `db` and serve it across `shards` worker threads.
    pub fn fit(
        db: Database,
        query_text: &str,
        exec: &ExecConfig,
        cfg: ServeConfig,
        shards: usize,
    ) -> ServeResult<Self> {
        let _span = obs::span("serve.fit");
        let opts = ConvertOptions::default();
        let (graph, mapping) = build_graph(&db, &opts)?;
        let query = PreparedQuery::prepare(&db, query_text, exec)?;
        let fitted = query.fit_node_model(&db, &graph, &mapping)?;
        Self::assemble(
            db,
            graph,
            mapping,
            opts,
            query,
            Arc::new(fitted.model),
            fitted.node_type,
            fitted.metrics,
            cfg,
            shards,
        )
    }

    /// Serve an already fitted model (see
    /// [`ServeEngine::from_fitted`](crate::ServeEngine::from_fitted) for
    /// why this is sound): rebuilds graph state over `db`, skips training.
    pub fn from_fitted(
        db: Database,
        query: PreparedQuery,
        model: Arc<NodeModel>,
        node_type: NodeTypeId,
        metrics: Vec<(String, f64)>,
        cfg: ServeConfig,
        shards: usize,
    ) -> ServeResult<Self> {
        let opts = ConvertOptions::default();
        let (graph, mapping) = build_graph(&db, &opts)?;
        Self::assemble(
            db, graph, mapping, opts, query, model, node_type, metrics, cfg, shards,
        )
    }

    /// Serve an already fitted model over an already compiled graph — the
    /// warm-restart path (see
    /// [`ServeEngine::from_fitted_graph`](crate::ServeEngine::from_fitted_graph)).
    /// `graph`/`mapping` must be current with respect to `db`.
    #[allow(clippy::too_many_arguments)]
    pub fn from_fitted_graph(
        db: Database,
        graph: HeteroGraph,
        mapping: GraphMapping,
        query: PreparedQuery,
        model: Arc<NodeModel>,
        node_type: NodeTypeId,
        metrics: Vec<(String, f64)>,
        cfg: ServeConfig,
        shards: usize,
    ) -> ServeResult<Self> {
        let opts = ConvertOptions::default();
        Self::assemble(
            db, graph, mapping, opts, query, model, node_type, metrics, cfg, shards,
        )
    }

    /// Persist this tier's warm-start state (graph + model snapshots) into
    /// `dir` — the writer mutex is held, so the saved state is one
    /// consistent epoch. `query_text` is stored alongside the model so a
    /// restart can re-prepare the query. Returns total bytes written.
    pub fn save_warm_start(&self, dir: &std::path::Path, query_text: &str) -> ServeResult<u64> {
        let writer = self.writer.lock().expect("writer mutex");
        let snapshot = self.shared.cell.load();
        let graph_bytes = crate::persist::save_graph_state(
            dir,
            &snapshot.graph,
            &writer.mapping,
            &writer.cursor,
        )?;
        let model_bytes = crate::persist::save_model(
            &dir.join(crate::persist::MODEL_SNAPSHOT_FILE),
            &crate::persist::ModelSnapshot {
                query_text: query_text.to_string(),
                node_type: self.shared.node_type,
                metrics: self.metrics.clone(),
                state: self.shared.model.export(),
                precision: self.shared.cfg.precision,
            },
        )?;
        Ok(graph_bytes + model_bytes)
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        db: Database,
        graph: HeteroGraph,
        mapping: GraphMapping,
        opts: ConvertOptions,
        query: PreparedQuery,
        model: Arc<NodeModel>,
        node_type: NodeTypeId,
        metrics: Vec<(String, f64)>,
        cfg: ServeConfig,
        shards: usize,
    ) -> ServeResult<Self> {
        let shards = shards.max(1);
        let cursor = GraphCursor::capture(&db);
        let anchor = deploy_anchor(&db);
        let hops = model.sampler_cfg().fanouts.len();
        let entity_table = query.analyzed().entity_table.clone();
        let snapshot = GraphSnapshot {
            epoch: 0,
            db: db.clone(),
            graph,
            anchor,
            plans: Vec::new(),
        };
        let model32 = match cfg.precision {
            Precision::F64 => None,
            Precision::F32 | Precision::Q8 => Some(Arc::new(InferModel32::from_model(&model))),
        };
        let shared = Arc::new(Shared {
            model,
            model32,
            node_type,
            entity_table,
            hops,
            cell: EpochCell::new(Arc::new(snapshot)),
            l2: L2Tier::new(cfg.l2_cache),
            cfg,
        });
        // Each shard owns an equal slice of the configured cache budget,
        // so total L1 cache memory is shard-count invariant. The L2 tier
        // is one shared structure and keeps its full budget.
        let pred_cap = (shared.cfg.prediction_cache / shards).max(1);
        let emb_cap = (shared.cfg.embedding_cache / shards).max(1);
        let inboxes = Arc::new(InboxSet::new(shards, INBOX_CAP));
        let handles = (0..shards)
            .map(|i| {
                let stats = Arc::new(Mutex::new(CacheStats::default()));
                let shared2 = Arc::clone(&shared);
                let inboxes2 = Arc::clone(&inboxes);
                let stats2 = Arc::clone(&stats);
                let thread = std::thread::Builder::new()
                    .name(format!("serve-shard-{i}"))
                    .spawn(move || shard_loop(i, shared2, inboxes2, stats2, pred_cap, emb_cap))
                    .expect("spawn shard worker");
                ShardHandle {
                    stats,
                    thread: Some(thread),
                }
            })
            .collect();
        Ok(ShardedEngine {
            shared,
            inboxes,
            shards: handles,
            metrics,
            writer: Mutex::new(WriterState {
                db,
                mapping,
                cursor,
                opts,
                query,
                anchor,
                epoch: 0,
                plans: VecDeque::new(),
            }),
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Test-split metrics from the fitting run (empty when built via
    /// [`from_fitted`](Self::from_fitted) without them).
    pub fn fit_metrics(&self) -> &[(String, f64)] {
        &self.metrics
    }

    /// Epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.shared.cell.epoch()
    }

    /// The currently published snapshot (readers hold it lock-free).
    pub fn snapshot(&self) -> Arc<GraphSnapshot> {
        self.shared.cell.load()
    }

    /// Per-shard inbox depths (jobs queued, not yet drained by a worker).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.inboxes.depths()
    }

    /// Jobs an idle shard took from another shard's inbox.
    pub fn steals(&self) -> u64 {
        self.inboxes.steals()
    }

    /// Pushes redirected off a full preferred inbox.
    pub fn spills(&self) -> u64 {
        self.inboxes.spills()
    }

    /// The shared L2 embedding tier (for inspection; shards and the
    /// writer drive it internally).
    pub fn l2(&self) -> &L2Tier {
        &self.shared.l2
    }

    /// Cache statistics summed across shards (each slice counted once).
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            let slice = *s.stats.lock().unwrap_or_else(|p| p.into_inner());
            total.merge(&slice);
        }
        total
    }

    /// Publish the shard-aggregated cache counters (idempotent; see
    /// [`CacheStats::publish`]) plus per-shard queue-depth gauges.
    pub fn publish_stats(&self) {
        if !obs::enabled() {
            return;
        }
        self.stats().publish();
        self.shared.l2.publish_stats();
        obs::counter_to("serve.steal.steals", self.inboxes.steals());
        obs::counter_to("serve.steal.spills", self.inboxes.spills());
        for (i, depth) in self.inboxes.depths().into_iter().enumerate() {
            obs::gauge(&format!("serve.shard.{i}.queue_depth"), depth as f64);
        }
    }

    /// The hash-preferred shard bucket for a row — where
    /// [`predict_batch_rows`](Self::predict_batch_rows) enqueues it before
    /// any stealing moves the job. Exposed so tests and capacity planning
    /// can construct deliberately hot-keyed workloads.
    pub fn shard_of(&self, row: usize) -> usize {
        shard_of_row(row, self.shards.len())
    }

    /// Entity rows that may legitimately be scored right now.
    pub fn deploy_entities(&self) -> ServeResult<Vec<usize>> {
        let w = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        Ok(w.query.deploy_entities(&w.db)?)
    }

    /// Score entity rows: scatter into the hash-preferred shard inboxes
    /// (stealing may move a job — the reply is keyed by routing bucket,
    /// not by who computed it), gather in input order. Callable from any
    /// number of threads at once.
    pub fn predict_batch_rows(&self, rows: &[usize]) -> Vec<f64> {
        let t0 = std::time::Instant::now();
        let n = self.shards.len();
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut positions: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, &row) in rows.iter().enumerate() {
            let s = shard_of_row(row, n);
            per_shard[s].push(row);
            positions[s].push(i);
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        let mut sent = 0usize;
        for (s, shard_rows) in per_shard.into_iter().enumerate() {
            if shard_rows.is_empty() {
                continue;
            }
            self.inboxes.push(
                s,
                Job {
                    rows: shard_rows,
                    tag: s,
                    reply: reply_tx.clone(),
                },
            );
            sent += 1;
        }
        drop(reply_tx);
        let mut out = vec![0.0f64; rows.len()];
        for _ in 0..sent {
            let (s, preds) = reply_rx.recv().expect("shard worker replies");
            for (&pos, p) in positions[s].iter().zip(preds) {
                out[pos] = p;
            }
        }
        if obs::enabled() {
            obs::add("serve.requests", rows.len() as u64);
            obs::observe("serve.batch.occupancy", rows.len() as f64);
            obs::record_ns("serve.predict", t0.elapsed().as_nanos() as u64);
        }
        out
    }

    /// Resolve primary keys against the current snapshot and score them.
    /// Unknown keys get per-request errors; the rest are still fused.
    pub fn predict_batch_keys(&self, keys: &[Value]) -> Vec<ServeResult<f64>> {
        let snap = self.shared.cell.load();
        let table = match snap.db.table(&self.shared.entity_table) {
            Ok(t) => t,
            Err(e) => {
                return keys
                    .iter()
                    .map(|_| Err(ServeError::from(e.clone())))
                    .collect()
            }
        };
        let rows: Vec<Option<usize>> = keys.iter().map(|k| table.row_by_key(k)).collect();
        let found: Vec<usize> = rows.iter().filter_map(|r| *r).collect();
        let preds = self.predict_batch_rows(&found);
        let mut it = preds.into_iter();
        keys.iter()
            .zip(rows)
            .map(|(key, row)| match row {
                Some(_) => Ok(it.next().expect("one prediction per resolved row")),
                None => Err(ServeError::UnknownEntity {
                    table: self.shared.entity_table.clone(),
                    key: key.to_string(),
                }),
            })
            .collect()
    }

    /// Append a validated batch and publish the next graph snapshot.
    ///
    /// The writer mutates only its private copies; readers keep serving
    /// the old snapshot until the single release-store in
    /// [`EpochCell::publish`] — they never block, and never observe a
    /// partially applied delta (`crates/serve/tests/sharded.rs` hammers
    /// this under sustained read load).
    pub fn ingest(&self, batch: RowBatch, policy: &IngestPolicy) -> ServeResult<IngestOutcome> {
        let mut group = self.ingest_group(vec![batch], policy)?;
        let report = group.reports.pop().expect("one report per batch")?;
        let mut outcome = group.outcome;
        outcome.report = report;
        Ok(outcome)
    }

    /// Append a *group* of validated batches under **one** writer-lock
    /// hold and publish **one** graph snapshot for the whole group: one
    /// delta application, one dirty closure, one [`InvalidationPlan`], one
    /// epoch bump — where N separate [`ingest`](Self::ingest) calls would
    /// broadcast N plans and swap N snapshots. Per-batch semantics are
    /// unchanged (a rejected batch is an `Err` in
    /// [`GroupIngestOutcome::reports`] and a no-op in the database), and
    /// the published state equals the one N individual ingests would have
    /// reached; only the maintenance cost is amortized. The serving-tier
    /// counterpart of store-level WAL group commit (DESIGN.md §14.8).
    pub fn ingest_group(
        &self,
        batches: Vec<RowBatch>,
        policy: &IngestPolicy,
    ) -> ServeResult<GroupIngestOutcome> {
        let mut w = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        let _span = obs::span("serve.ingest");
        // The previous graph version is read from the published snapshot:
        // it is immutable and this writer (serialized by the mutex above)
        // is its only publisher, so it matches the writer's cursor exactly.
        let prev = self.shared.cell.load();
        let pre_lens: Vec<usize> = w.db.tables().iter().map(|t| t.len()).collect();
        let mut group = GroupIngestOutcome {
            reports: Vec::with_capacity(batches.len()),
            ..Default::default()
        };
        for batch in batches {
            match w.db.ingest(batch, policy) {
                Ok(report) => {
                    group.outcome.report.accepted += report.accepted;
                    group.outcome.report.coerced += report.coerced;
                    group.outcome.report.late += report.late;
                    group.outcome.report.quarantined += report.quarantined;
                    group.reports.push(Ok(report));
                }
                Err(e) => group.reports.push(Err(e)),
            }
        }
        if group.accepted_batches() == 0 {
            // Nothing applied: readers keep the current snapshot; no epoch
            // is spent on a no-op group.
            return Ok(group);
        }
        if obs::enabled() && group.reports.len() > 1 {
            obs::add("serve.invalidate.coalesced", group.reports.len() as u64 - 1);
        }
        let outcome = &mut group.outcome;
        let grown = grown_tables(&w.db, &w.mapping, &pre_lens)?;
        let pre_features: Vec<FeatureMatrix> = grown
            .iter()
            .map(|g| prev.graph.features(g.node_type).clone())
            .collect();
        let next_epoch = w.epoch + 1;
        let (graph, plan) =
            match update_graph_snapshot(&w.db, &prev.graph, &w.mapping, &w.cursor, &w.opts) {
                Ok((graph, mapping, cursor, delta)) => {
                    outcome.delta = delta;
                    let new_anchor = deploy_anchor(&w.db);
                    let plan = if new_anchor != w.anchor {
                        // Anchor advance: every cached value took the anchor
                        // as an input; every shard flushes.
                        outcome.flushed = true;
                        InvalidationPlan::flush(next_epoch)
                    } else {
                        let dist = dirty_closure(
                            &w.db,
                            &graph,
                            &mapping,
                            &grown,
                            &pre_features,
                            self.shared.hops,
                        )?;
                        outcome.dirty_nodes = dist.len();
                        InvalidationPlan::precise(next_epoch, &dist)
                    };
                    w.mapping = mapping;
                    w.cursor = cursor;
                    w.anchor = new_anchor;
                    (graph, plan)
                }
                Err(_) => {
                    // The failed delta only touched its private clone; rebuild
                    // from the database and flush every shard.
                    let (graph, mapping) = build_graph(&w.db, &w.opts)?;
                    w.mapping = mapping;
                    w.cursor = GraphCursor::capture(&w.db);
                    w.anchor = deploy_anchor(&w.db);
                    outcome.rebuilt = true;
                    outcome.flushed = true;
                    (graph, InvalidationPlan::flush(next_epoch))
                }
            };
        // Evict and republish the shared L2 tier *before* the graph
        // snapshot below: a reader that acquires epoch `next_epoch` must
        // already see an L2 at `next_epoch` (never a stale one) — see the
        // coherence protocol in the `l2` module docs.
        self.shared.l2.apply_plan(&plan);
        w.epoch = next_epoch;
        w.plans.push_back(plan);
        while w.plans.len() > PLAN_HISTORY {
            w.plans.pop_front();
        }
        let snapshot = GraphSnapshot {
            epoch: next_epoch,
            db: w.db.clone(),
            graph, // moved, not cloned: the writer keeps no copy
            anchor: w.anchor,
            plans: w.plans.iter().cloned().collect(),
        };
        self.shared.cell.publish(Arc::new(snapshot));
        if obs::enabled() {
            obs::add("serve.ingest.dirty_nodes", outcome.dirty_nodes as u64);
            obs::add("serve.epoch.published", 1);
        }
        Ok(group)
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        // Workers drain what's queued, then `pop_batch` returns `None`.
        self.inboxes.close();
        for s in &mut self.shards {
            if let Some(t) = s.thread.take() {
                let _ = t.join();
            }
        }
    }
}

/// Route a row to a shard (splitmix64 finalizer). Pure load balancing:
/// any routing function is correct, this one is just well mixed.
fn shard_of_row(row: usize, shards: usize) -> usize {
    if shards == 1 {
        return 0;
    }
    let mut x = (row as u64) ^ 0x9e37_79b9_7f4a_7c15;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x % shards as u64) as usize
}

/// One shard's worker loop: drain jobs (own inbox first, steal on idle),
/// catch the cache slice up to the published epoch, fuse the jobs into
/// one scoring pass layered over the shared L2 tier, reply.
fn shard_loop(
    index: usize,
    shared: Arc<Shared>,
    inboxes: Arc<InboxSet<Job>>,
    stats_out: Arc<Mutex<CacheStats>>,
    pred_cap: usize,
    emb_cap: usize,
) {
    if shared.cfg.affinity {
        // Placement hint only; a Failed/Unsupported outcome changes
        // nothing but locality.
        let outcome = crate::affinity::pin_current_thread(index);
        if obs::enabled() && outcome.is_pinned() {
            obs::add("serve.affinity.pinned", 1);
        }
    }
    let quantized = matches!(shared.cfg.precision, Precision::Q8);
    let mut snap = shared.cell.load();
    let mut local_epoch = snap.epoch;
    let mut predictions: Lru<usize, f64> = Lru::new(pred_cap);
    let mut embeddings = EmbeddingTier::new(shared.cfg.precision, emb_cap);
    let mut stats = CacheStats::default();
    let requests_name = format!("serve.shard.{index}.requests");
    while let Some(drain) = inboxes.pop_batch(index, shared.cfg.max_batch) {
        if drain.saturated && obs::enabled() {
            obs::add("serve.batcher.full_drains", 1);
        }
        // One acquire load per drained batch; the slot lock inside
        // `load()` is touched only when the epoch actually moved.
        if shared.cell.epoch() != local_epoch {
            let next = shared.cell.load();
            catch_up(
                &shared,
                &next,
                local_epoch,
                &mut predictions,
                &mut embeddings,
                &mut stats,
            );
            local_epoch = next.epoch;
            snap = next;
        }
        // The shared L2 is consulted only at a matching epoch: the
        // writer republishes L2 *before* the graph, so a mismatch means
        // this shard's own snapshot is what's stale — skip, never cross.
        let l2snap = shared.l2.load();
        let l2 = (l2snap.graph_epoch == local_epoch).then_some(&*l2snap);
        // Fuse every drained job into one pass so concurrent clients'
        // single-row requests still share neighborhood work.
        let jobs = drain.items;
        let mut rows: Vec<usize> = Vec::new();
        let mut spans: Vec<usize> = Vec::with_capacity(jobs.len());
        for job in &jobs {
            rows.extend_from_slice(&job.rows);
            spans.push(job.rows.len());
        }
        let preds = match &shared.model32 {
            None => {
                let mut store = TieredStore::new(embeddings.as_f64_mut(), l2);
                let preds = predict_batch_cached(
                    &shared.model,
                    &snap.graph,
                    shared.node_type,
                    snap.anchor,
                    &rows,
                    &mut predictions,
                    &mut store,
                    &mut stats,
                );
                stats.l2_hits += store.l2_hits;
                stats.l2_misses += store.l2_misses;
                shared.l2.promote(local_epoch, store.into_staged());
                preds
            }
            Some(m32) => {
                let mut store = TieredStore32::new(embeddings.as_store32_mut(), l2, quantized);
                let preds = predict_batch_cached32(
                    m32,
                    &snap.graph,
                    shared.node_type,
                    snap.anchor,
                    &rows,
                    &mut predictions,
                    &mut store,
                    &mut stats,
                );
                stats.l2_hits += store.l2_hits;
                stats.l2_misses += store.l2_misses;
                shared.l2.promote(local_epoch, store.into_staged());
                preds
            }
        };
        // Publish stats BEFORE replying: a caller that reads
        // `ShardedEngine::stats()` right after a returned request must
        // see the counters that request produced, not race the sync.
        stats.prediction_evictions = predictions.evictions;
        stats.embedding_hits = embeddings.hits();
        stats.embedding_misses = embeddings.misses();
        stats.embedding_evictions = embeddings.evictions();
        *stats_out.lock().unwrap_or_else(|p| p.into_inner()) = stats;
        let mut offset = 0usize;
        for (job, span) in jobs.into_iter().zip(spans) {
            let slice = preds[offset..offset + span].to_vec();
            offset += span;
            // A gatherer that gave up is not an error for the shard.
            let _ = job.reply.send((job.tag, slice));
        }
        if obs::enabled() {
            obs::add(&requests_name, rows.len() as u64);
        }
    }
}

/// Bring one shard's cache slice from `local_epoch` to `snap.epoch` by
/// replaying the snapshot's retained plans, or flush if the shard fell
/// further behind than [`PLAN_HISTORY`].
fn catch_up(
    shared: &Shared,
    snap: &GraphSnapshot,
    local_epoch: u64,
    predictions: &mut Lru<usize, f64>,
    embeddings: &mut EmbeddingTier,
    stats: &mut CacheStats,
) {
    debug_assert!(snap.epoch > local_epoch);
    let needed = local_epoch + 1;
    let retained_from = snap.plans.first().map(|p| p.epoch);
    if retained_from.is_none_or(|from| from > needed) {
        predictions.clear();
        embeddings.clear();
        stats.flushes += 1;
        return;
    }
    // Coalesce the needed plans into one equivalent plan (union of dirty
    // sets at minimum distance, flush dominating) so a shard that slept
    // through N epochs pays one cache sweep, not N.
    let pending: Vec<InvalidationPlan> = snap
        .plans
        .iter()
        .filter(|p| p.epoch >= needed)
        .cloned()
        .collect();
    let coalesced = pending.len().saturating_sub(1);
    let Some(plan) = InvalidationPlan::merge(&pending) else {
        return;
    };
    if coalesced > 0 && obs::enabled() {
        obs::add("serve.invalidate.coalesced", coalesced as u64);
    }
    if plan.flush {
        predictions.clear();
        embeddings.clear();
        stats.flushes += 1;
    } else {
        let (emb, pred) = evict_dirty(
            &plan.dirty,
            shared.hops,
            shared.node_type.0,
            predictions,
            embeddings,
        );
        stats.invalidated_embeddings += emb;
        stats.invalidated_predictions += pred;
    }
}

#[cfg(test)]
mod tests {
    use super::shard_of_row;

    #[test]
    fn routing_is_total_and_balanced_enough() {
        for shards in [1usize, 2, 4, 8] {
            let mut counts = vec![0usize; shards];
            for row in 0..8000 {
                counts[shard_of_row(row, shards)] += 1;
            }
            let expect = 8000 / shards;
            for &c in &counts {
                assert!(
                    c > expect / 2 && c < expect * 2,
                    "shard load {c} far from {expect} at n={shards}"
                );
            }
        }
    }
}
