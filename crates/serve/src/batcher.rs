//! Size- and deadline-bounded request coalescing.
//!
//! Per-entity prediction requests arrive one at a time; scoring them one
//! at a time wastes the batch inference path's neighborhood deduplication.
//! [`MicroBatcher`] sits on an mpsc channel and groups requests into fused
//! batches: a batch closes when it reaches `max_batch` items or when
//! `deadline` has elapsed since its first item arrived — so a lone request
//! waits at most one deadline, and a burst fills batches back to back.

use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::time::{Duration, Instant};

/// Coalesces items from a channel into bounded batches.
pub struct MicroBatcher<T> {
    rx: Receiver<T>,
    max_batch: usize,
    deadline: Duration,
}

impl<T> MicroBatcher<T> {
    /// Batch up to `max_batch` items (≥ 1), waiting at most `deadline`
    /// after the first item of each batch.
    pub fn new(rx: Receiver<T>, max_batch: usize, deadline: Duration) -> Self {
        MicroBatcher {
            rx,
            max_batch: max_batch.max(1),
            deadline,
        }
    }

    /// Block for the next batch. Returns `None` once the sending side has
    /// disconnected and everything queued has been drained. A non-`None`
    /// batch always holds at least one item.
    pub fn next_batch(&self) -> Option<Vec<T>> {
        let first = self.rx.recv().ok()?;
        let mut batch = vec![first];
        let close_at = Instant::now() + self.deadline;
        while batch.len() < self.max_batch {
            let now = Instant::now();
            if now >= close_at {
                break;
            }
            match self.rx.recv_timeout(close_at - now) {
                Ok(item) => batch.push(item),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn queued_burst_fills_batches_to_the_size_bound() {
        let (tx, rx) = mpsc::channel();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let b = MicroBatcher::new(rx, 4, Duration::from_millis(50));
        assert_eq!(b.next_batch(), Some(vec![0, 1, 2, 3]));
        assert_eq!(b.next_batch(), Some(vec![4, 5, 6, 7]));
        assert_eq!(b.next_batch(), Some(vec![8, 9]));
        assert_eq!(b.next_batch(), None);
    }

    #[test]
    fn deadline_closes_a_partial_batch() {
        let (tx, rx) = mpsc::channel();
        let b = MicroBatcher::new(rx, 100, Duration::from_millis(10));
        let sender = std::thread::spawn(move || {
            tx.send(1).unwrap();
            // Arrives after the deadline: must land in the *next* batch.
            std::thread::sleep(Duration::from_millis(40));
            tx.send(2).unwrap();
        });
        let first = b.next_batch().unwrap();
        assert_eq!(first, vec![1], "deadline should close the batch early");
        let second = b.next_batch().unwrap();
        assert_eq!(second, vec![2]);
        sender.join().unwrap();
        assert_eq!(b.next_batch(), None);
    }

    #[test]
    fn zero_sized_bound_is_clamped_to_one() {
        let (tx, rx) = mpsc::channel();
        tx.send(7).unwrap();
        drop(tx);
        let b = MicroBatcher::new(rx, 0, Duration::from_millis(1));
        assert_eq!(b.next_batch(), Some(vec![7]));
    }
}
