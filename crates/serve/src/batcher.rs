//! Size- and deadline-bounded request coalescing.
//!
//! Per-entity prediction requests arrive one at a time; scoring them one
//! at a time wastes the batch inference path's neighborhood deduplication.
//! [`MicroBatcher`] sits on an mpsc channel and groups requests into fused
//! batches: a batch closes when it reaches `max_batch` items or when
//! `deadline` has elapsed since its first item arrived — so a lone request
//! waits at most one deadline, and a burst fills batches back to back.
//!
//! A **zero** deadline selects greedy draining: the batch takes whatever
//! is already queued (up to `max_batch`) and closes without waiting at
//! all. (The sharded tier's workers no longer sit on a channel at all —
//! they drain their [`InboxSet`](crate::steal::InboxSet) inboxes
//! directly, which is the same greedy policy over stealable queues; this
//! batcher remains the front door for the CLI's stdin/TCP request
//! streams, whose drained batches are pushed straight into those
//! inboxes by `predict_batch_*`.)
//!
//! Saturation is observable: every batch that closes *full* with work
//! still queued bumps `serve.batcher.full_drains` — the same counter the
//! shard workers bump on saturated inbox drains — so sustained queue
//! pressure shows up in run reports wherever batching happens.

use std::sync::mpsc::{Receiver, RecvTimeoutError, TryRecvError};
use std::time::{Duration, Instant};

use relgraph_obs as obs;

/// Coalesces items from a channel into bounded batches.
pub struct MicroBatcher<T> {
    rx: Receiver<T>,
    max_batch: usize,
    deadline: Duration,
}

impl<T> MicroBatcher<T> {
    /// Batch up to `max_batch` items (≥ 1), waiting at most `deadline`
    /// after the first item of each batch.
    pub fn new(rx: Receiver<T>, max_batch: usize, deadline: Duration) -> Self {
        MicroBatcher {
            rx,
            max_batch: max_batch.max(1),
            deadline,
        }
    }

    /// Block for the next batch. Returns `None` once the sending side has
    /// disconnected and everything queued has been drained. A non-`None`
    /// batch always holds at least one item, and every sent item appears
    /// in exactly one batch, in send order.
    pub fn next_batch(&self) -> Option<Vec<T>> {
        let first = self.rx.recv().ok()?;
        let mut batch = vec![first];
        if self.deadline.is_zero() {
            // Greedy drain: take the backlog, never wait for stragglers.
            while batch.len() < self.max_batch {
                match self.rx.try_recv() {
                    Ok(item) => batch.push(item),
                    Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                }
            }
            self.note_saturation(&batch);
            return Some(batch);
        }
        let close_at = Instant::now() + self.deadline;
        while batch.len() < self.max_batch {
            let now = Instant::now();
            if now >= close_at {
                break;
            }
            match self.rx.recv_timeout(close_at - now) {
                Ok(item) => batch.push(item),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        self.note_saturation(&batch);
        Some(batch)
    }

    /// A batch that closed by the *size* bound (not the deadline or a
    /// disconnect) means the queue is producing faster than one batch
    /// can absorb — the saturation signal behind
    /// `serve.batcher.full_drains`.
    fn note_saturation(&self, batch: &[T]) {
        if batch.len() == self.max_batch && self.max_batch > 1 && obs::enabled() {
            obs::add("serve.batcher.full_drains", 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn queued_burst_fills_batches_to_the_size_bound() {
        let (tx, rx) = mpsc::channel();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let b = MicroBatcher::new(rx, 4, Duration::from_millis(50));
        assert_eq!(b.next_batch(), Some(vec![0, 1, 2, 3]));
        assert_eq!(b.next_batch(), Some(vec![4, 5, 6, 7]));
        assert_eq!(b.next_batch(), Some(vec![8, 9]));
        assert_eq!(b.next_batch(), None);
    }

    #[test]
    fn deadline_closes_a_partial_batch() {
        let (tx, rx) = mpsc::channel();
        let b = MicroBatcher::new(rx, 100, Duration::from_millis(10));
        let sender = std::thread::spawn(move || {
            tx.send(1).unwrap();
            // Arrives after the deadline: must land in the *next* batch.
            std::thread::sleep(Duration::from_millis(40));
            tx.send(2).unwrap();
        });
        let first = b.next_batch().unwrap();
        assert_eq!(first, vec![1], "deadline should close the batch early");
        let second = b.next_batch().unwrap();
        assert_eq!(second, vec![2]);
        sender.join().unwrap();
        assert_eq!(b.next_batch(), None);
    }

    #[test]
    fn zero_sized_bound_is_clamped_to_one() {
        let (tx, rx) = mpsc::channel();
        tx.send(7).unwrap();
        drop(tx);
        let b = MicroBatcher::new(rx, 0, Duration::from_millis(1));
        assert_eq!(b.next_batch(), Some(vec![7]));
    }

    #[test]
    fn zero_deadline_drains_backlog_without_waiting() {
        let (tx, rx) = mpsc::channel();
        for i in 0..6 {
            tx.send(i).unwrap();
        }
        let b = MicroBatcher::new(rx, 4, Duration::ZERO);
        let t0 = std::time::Instant::now();
        assert_eq!(b.next_batch(), Some(vec![0, 1, 2, 3]));
        assert_eq!(b.next_batch(), Some(vec![4, 5]));
        // The sender is still connected and the queue is empty: a
        // deadline-based batcher would block here; greedy must not have.
        assert!(
            t0.elapsed() < Duration::from_millis(250),
            "greedy drain must not wait on an open channel"
        );
        drop(tx);
        assert_eq!(b.next_batch(), None);
    }

    #[test]
    fn max_batch_one_delivers_every_item_exactly_once() {
        let (tx, rx) = mpsc::channel();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let b = MicroBatcher::new(rx, 1, Duration::from_millis(5));
        for i in 0..5 {
            assert_eq!(b.next_batch(), Some(vec![i]));
        }
        assert_eq!(b.next_batch(), None);
    }

    #[test]
    fn sender_dropped_mid_batch_loses_nothing() {
        let (tx, rx) = mpsc::channel();
        let b = MicroBatcher::new(rx, 8, Duration::from_millis(200));
        let sender = std::thread::spawn(move || {
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            std::thread::sleep(Duration::from_millis(20));
            tx.send(3).unwrap();
            // Dropped here, while the batcher is mid-deadline on a
            // partial batch.
        });
        // Disconnect closes the partial batch early: everything sent
        // arrives, once, and the stream then ends.
        assert_eq!(b.next_batch(), Some(vec![1, 2, 3]));
        assert_eq!(b.next_batch(), None);
        sender.join().unwrap();
    }

    #[test]
    fn burst_then_idle_preserves_every_item_exactly_once() {
        let (tx, rx) = mpsc::channel();
        let b = MicroBatcher::new(rx, 3, Duration::from_millis(2));
        let sender = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            // Idle gap long enough that the consumer drains fully and
            // blocks in `recv` before the second burst.
            std::thread::sleep(Duration::from_millis(60));
            for i in 10..17 {
                tx.send(i).unwrap();
            }
        });
        let mut seen = Vec::new();
        while let Some(batch) = b.next_batch() {
            assert!(!batch.is_empty() && batch.len() <= 3);
            seen.extend(batch);
        }
        sender.join().unwrap();
        assert_eq!(seen, (0..17).collect::<Vec<_>>(), "no loss, no duplication");
    }
}
