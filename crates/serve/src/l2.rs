//! The shared read-mostly L2 embedding tier under the per-shard L1s.
//!
//! # Why a second tier
//!
//! Shards partition the cache budget, so an embedding for a hub node —
//! a popular product every customer's 2-hop neighborhood touches — is
//! recomputed once *per shard* that scores a request near it. The L2
//! tier stores each hop-`k` embedding once, readable by every shard
//! lock-free through the same [`EpochCell`] publication pattern the
//! graph snapshot uses: readers clone an `Arc` to an immutable
//! [`L2Snapshot`] and probe plain `HashMap` segments; no lock is held
//! while scoring.
//!
//! # Coherence protocol
//!
//! Correctness is the warm ≡ cold bitwise invariant: an embedding is a
//! pure function of `(type, node, level, anchor)` *at a graph epoch*, so
//! a cache hit must never cross epochs. Three rules enforce that:
//!
//! 1. **Tagging.** Every published [`L2Snapshot`] carries the
//!    `graph_epoch` it is consistent with. A shard consults L2 only when
//!    that tag equals the shard's own snapshot epoch; a mismatch is a
//!    miss, never a stale hit.
//! 2. **Write ordering.** The writer applies each [`InvalidationPlan`]
//!    to L2 (via [`L2Tier::apply_plan`]) and republishes it *before*
//!    publishing the graph snapshot for the same epoch. The release
//!    store in the graph publish therefore happens-after the L2
//!    publish: any reader that acquires graph epoch `e` observes an L2
//!    tagged `>= e` — stale L2 entries are unreachable the instant the
//!    new graph is visible.
//! 3. **Serialized publication.** All L2 publishes — shard promotions
//!    and the writer's plan application — are serialized by one gate
//!    mutex holding the tier's current `graph_epoch`. A promotion of
//!    embeddings computed at epoch `e` is dropped unless the gate still
//!    reads `e`; [`EpochCell`]'s single-publisher contract is met by
//!    construction.
//!
//! Eviction under a plan uses the normative
//! [`PlanFilter`] rule — exactly the
//! `(v, ℓ)` distance rule the per-shard L1s apply — so L1 and L2 agree
//! entry-for-entry on what an ingest invalidates (DESIGN.md §13.6).
//!
//! # What the tier stores
//!
//! Rows are stored in the serving precision's *canonical cached form*
//! ([`L2Row`]): raw `f64`/`f32` rows, or the quantized `q8` encoding.
//! A quantized L2 hit dequantizes the same bytes an L1 warm hit would,
//! so promotion through L2 cannot perturb served bits in any precision
//! mode (asserted per-mode by `tests/serving_equivalence.rs`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use relgraph_gnn::{EmbeddingStore, EmbeddingStore32};
use relgraph_obs as obs;

use crate::cache::EmbeddingCache;
use crate::epoch::EpochCell;
use crate::invalidate::{InvalidationPlan, PlanFilter};
use crate::quant::{dequantize_row, quantize_row, QuantizedRow};

/// Embedding-cache key: `(node type, node, level)`.
type Key = (usize, usize, usize);

/// How many promotion segments a snapshot accumulates before the next
/// publish compacts them into one map. Probes walk segments newest-first,
/// so the bound keeps the worst-case probe short while letting promotions
/// stay cheap (one new segment, older segments shared by `Arc`).
const MAX_SEGMENTS: usize = 8;

/// One cached row in the tier, in the serving precision's canonical
/// cached form (what the matching L1 would hold for the same key).
#[derive(Debug, Clone)]
pub enum L2Row {
    /// Full-precision row (`Precision::F64` serving).
    F64(Vec<f64>),
    /// Single-precision row (`Precision::F32` serving).
    F32(Vec<f32>),
    /// Quantized row (`Precision::Q8` serving); hits dequantize exactly
    /// like an L1 hit on the same key would.
    Q8(QuantizedRow),
}

/// An immutable published view of the L2 tier: a stack of map segments,
/// probed newest-first, all consistent with `graph_epoch`.
pub struct L2Snapshot {
    /// The graph epoch every held row was computed at.
    pub graph_epoch: u64,
    segments: Vec<Arc<HashMap<Key, L2Row>>>,
    len: usize,
}

impl L2Snapshot {
    fn empty(graph_epoch: u64) -> Self {
        L2Snapshot {
            graph_epoch,
            segments: Vec::new(),
            len: 0,
        }
    }

    /// Look a key up, newest segment first.
    pub fn get(&self, key: &Key) -> Option<&L2Row> {
        self.segments.iter().rev().find_map(|s| s.get(key))
    }

    /// Is the key held in any segment?
    pub fn contains(&self, key: &Key) -> bool {
        self.segments.iter().any(|s| s.contains_key(key))
    }

    /// Number of held rows across segments (keys are unique by
    /// construction: promotions skip keys any segment already holds).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no rows are held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Publication gate: the tier's current graph epoch, under the mutex
/// that serializes every publish (writer plan application and shard
/// promotions alike).
struct L2Gate {
    graph_epoch: u64,
}

/// The shared tier itself: one per [`ShardedEngine`](crate::ShardedEngine).
pub struct L2Tier {
    cell: EpochCell<L2Snapshot>,
    gate: Mutex<L2Gate>,
    cap: usize,
    promotions: AtomicU64,
    publishes: AtomicU64,
    invalidated: AtomicU64,
    flushes: AtomicU64,
    dropped: AtomicU64,
}

impl L2Tier {
    /// An empty tier holding at most `cap` rows, consistent with graph
    /// epoch 0. `cap == 0` disables promotion (the tier still tracks
    /// epochs so shards can ask it uniformly).
    pub fn new(cap: usize) -> Self {
        L2Tier {
            cell: EpochCell::new(Arc::new(L2Snapshot::empty(0))),
            gate: Mutex::new(L2Gate { graph_epoch: 0 }),
            cap,
            promotions: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Configured row capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The current published view (readers hold it lock-free).
    pub fn load(&self) -> Arc<L2Snapshot> {
        self.cell.load()
    }

    /// Offer rows a shard computed at `graph_epoch` to the shared tier.
    ///
    /// Best-effort by design: if the gate is contended, or the tier has
    /// moved past `graph_epoch`, or capacity is exhausted, rows are
    /// dropped — the shard's L1 still holds them, so nothing is lost but
    /// sharing. Never blocks the scoring path on the writer.
    pub fn promote(&self, graph_epoch: u64, entries: Vec<(Key, L2Row)>) {
        if self.cap == 0 || entries.is_empty() {
            return;
        }
        let offered = entries.len() as u64;
        let Ok(gate) = self.gate.try_lock() else {
            self.dropped.fetch_add(offered, Ordering::Relaxed);
            return;
        };
        if gate.graph_epoch != graph_epoch {
            self.dropped.fetch_add(offered, Ordering::Relaxed);
            return;
        }
        let snap = self.cell.load();
        debug_assert_eq!(snap.graph_epoch, gate.graph_epoch);
        let mut fresh: HashMap<Key, L2Row> = HashMap::new();
        for (key, row) in entries {
            if snap.len + fresh.len() >= self.cap {
                break;
            }
            if snap.contains(&key) || fresh.contains_key(&key) {
                continue;
            }
            fresh.insert(key, row);
        }
        if fresh.is_empty() {
            return;
        }
        self.promotions
            .fetch_add(fresh.len() as u64, Ordering::Relaxed);
        let len = snap.len + fresh.len();
        let mut segments: Vec<Arc<HashMap<Key, L2Row>>>;
        if snap.segments.len() >= MAX_SEGMENTS {
            // Compact: merge everything into one owned map. Promotions
            // are rare once the working set is shared, so this stays off
            // the steady-state path.
            let mut merged: HashMap<Key, L2Row> = HashMap::with_capacity(len);
            for seg in &snap.segments {
                for (k, v) in seg.iter() {
                    merged.insert(*k, v.clone());
                }
            }
            merged.extend(fresh);
            segments = vec![Arc::new(merged)];
        } else {
            segments = snap.segments.clone();
            segments.push(Arc::new(fresh));
        }
        self.cell.publish(Arc::new(L2Snapshot {
            graph_epoch,
            segments,
            len,
        }));
        self.publishes.fetch_add(1, Ordering::Relaxed);
    }

    /// Writer-side: evict under `plan` and republish at `plan.epoch`.
    ///
    /// **Must be called before the graph snapshot for `plan.epoch` is
    /// published** — that ordering is what makes stale L2 entries
    /// unreachable (see the module docs). Applies the normative
    /// [`PlanFilter`] rule, identical to what every shard's L1 applies.
    pub fn apply_plan(&self, plan: &InvalidationPlan) {
        let mut gate = self.gate.lock().unwrap_or_else(|p| p.into_inner());
        let snap = self.cell.load();
        let next = if plan.flush {
            self.flushes.fetch_add(1, Ordering::Relaxed);
            self.invalidated
                .fetch_add(snap.len as u64, Ordering::Relaxed);
            L2Snapshot::empty(plan.epoch)
        } else {
            let filter = PlanFilter::new(plan);
            let mut kept: HashMap<Key, L2Row> = HashMap::with_capacity(snap.len);
            // Oldest-first: newer segments overwrite (keys are unique
            // across segments anyway, so this is belt and braces).
            for seg in &snap.segments {
                for (&(ty, node, level), row) in seg.iter() {
                    if !filter.evicts(ty, node, level) {
                        kept.insert((ty, node, level), row.clone());
                    }
                }
            }
            self.invalidated
                .fetch_add((snap.len - kept.len()) as u64, Ordering::Relaxed);
            let len = kept.len();
            let segments = if len == 0 {
                Vec::new()
            } else {
                vec![Arc::new(kept)]
            };
            L2Snapshot {
                graph_epoch: plan.epoch,
                segments,
                len,
            }
        };
        gate.graph_epoch = plan.epoch;
        self.cell.publish(Arc::new(next));
        self.publishes.fetch_add(1, Ordering::Relaxed);
    }

    /// Publish the tier's counters (`serve.l2.*`). Idempotent: absolute
    /// totals via `counter_to`, like [`CacheStats::publish`](crate::CacheStats::publish).
    pub fn publish_stats(&self) {
        if !obs::enabled() {
            return;
        }
        for (name, v) in [
            ("serve.l2.promotions", &self.promotions),
            ("serve.l2.publishes", &self.publishes),
            ("serve.l2.invalidated", &self.invalidated),
            ("serve.l2.flushes", &self.flushes),
            ("serve.l2.dropped", &self.dropped),
        ] {
            obs::counter_to(name, v.load(Ordering::Relaxed));
        }
        obs::gauge("serve.l2.entries", self.load().len() as f64);
    }

    /// Rows promoted into the tier over its lifetime.
    pub fn promotions(&self) -> u64 {
        self.promotions.load(Ordering::Relaxed)
    }

    /// Offered rows dropped (gate contended, epoch moved, or capacity).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// An [`EmbeddingStore`] layering a shard's `f64` L1 over an optional L2
/// view for the duration of one scoring batch. Gets probe L1 then L2
/// (refilling L1 on an L2 hit); puts go to L1 and are staged for
/// promotion, which the shard offers via [`L2Tier::promote`] after the
/// batch.
pub struct TieredStore<'a> {
    l1: &'a mut EmbeddingCache,
    l2: Option<&'a L2Snapshot>,
    staged: Vec<(Key, L2Row)>,
    /// L1-miss lookups answered by the shared tier.
    pub l2_hits: u64,
    /// L1-miss lookups the shared tier missed too.
    pub l2_misses: u64,
}

impl<'a> TieredStore<'a> {
    /// Layer `l1` over `l2` (pass `None` to bypass the shared tier, e.g.
    /// on an epoch mismatch).
    pub fn new(l1: &'a mut EmbeddingCache, l2: Option<&'a L2Snapshot>) -> Self {
        TieredStore {
            l1,
            l2,
            staged: Vec::new(),
            l2_hits: 0,
            l2_misses: 0,
        }
    }

    /// Rows computed this batch, for [`L2Tier::promote`]. Empty when the
    /// store was built without an L2 view.
    pub fn into_staged(self) -> Vec<(Key, L2Row)> {
        self.staged
    }
}

impl EmbeddingStore for TieredStore<'_> {
    fn get(&mut self, ty: usize, node: usize, level: usize) -> Option<Vec<f64>> {
        if let Some(row) = self.l1.get(ty, node, level) {
            return Some(row);
        }
        let l2 = self.l2?;
        match l2.get(&(ty, node, level)) {
            Some(L2Row::F64(row)) => {
                self.l2_hits += 1;
                // Refill the L1 so the rest of the batch hits locally.
                self.l1.put(ty, node, level, row.clone());
                Some(row.clone())
            }
            _ => {
                self.l2_misses += 1;
                None
            }
        }
    }

    fn put(&mut self, ty: usize, node: usize, level: usize, emb: Vec<f64>) {
        if self.l2.is_some() {
            self.staged
                .push(((ty, node, level), L2Row::F64(emb.clone())));
        }
        self.l1.put(ty, node, level, emb);
    }
}

/// The `f32`/`q8` counterpart of [`TieredStore`]: layers a shard's
/// [`EmbeddingStore32`] L1 over an optional L2 view.
///
/// Bit-exactness per mode: in `f32`, hits clone the exact stored row; in
/// `q8`, puts stage `quantize_row(raw)` — the same bytes the L1 encodes
/// — and hits dequantize them, so an L2 hit returns precisely what a
/// warm L1 hit on the same key would. `canonicalize` delegates to the
/// L1, preserving the quantized tier's memoization grid.
pub struct TieredStore32<'a> {
    l1: &'a mut dyn EmbeddingStore32,
    l2: Option<&'a L2Snapshot>,
    quantized: bool,
    staged: Vec<(Key, L2Row)>,
    /// L1-miss lookups answered by the shared tier.
    pub l2_hits: u64,
    /// L1-miss lookups the shared tier missed too.
    pub l2_misses: u64,
}

impl<'a> TieredStore32<'a> {
    /// Layer `l1` over `l2`. `quantized` selects the staged encoding —
    /// it must match the L1's (true for the `q8` tier).
    pub fn new(
        l1: &'a mut dyn EmbeddingStore32,
        l2: Option<&'a L2Snapshot>,
        quantized: bool,
    ) -> Self {
        TieredStore32 {
            l1,
            l2,
            quantized,
            staged: Vec::new(),
            l2_hits: 0,
            l2_misses: 0,
        }
    }

    /// Rows computed this batch, for [`L2Tier::promote`].
    pub fn into_staged(self) -> Vec<(Key, L2Row)> {
        self.staged
    }
}

impl EmbeddingStore32 for TieredStore32<'_> {
    fn get(&mut self, ty: usize, node: usize, level: usize) -> Option<Vec<f32>> {
        if let Some(row) = self.l1.get(ty, node, level) {
            return Some(row);
        }
        let l2 = self.l2?;
        let row = match l2.get(&(ty, node, level)) {
            Some(L2Row::F32(row)) => row.clone(),
            Some(L2Row::Q8(q)) => dequantize_row(q),
            _ => {
                self.l2_misses += 1;
                return None;
            }
        };
        self.l2_hits += 1;
        // Refill the L1. In q8 this re-quantizes an already-quantized
        // row; dequantize∘quantize is idempotent (proptested in `quant`),
        // so the refilled entry's bits match the original warm entry.
        self.l1.put(ty, node, level, row.clone());
        Some(row)
    }

    fn put(&mut self, ty: usize, node: usize, level: usize, emb: Vec<f32>) {
        if self.l2.is_some() {
            let row = if self.quantized {
                L2Row::Q8(quantize_row(&emb))
            } else {
                L2Row::F32(emb.clone())
            };
            self.staged.push(((ty, node, level), row));
        }
        self.l1.put(ty, node, level, emb);
    }

    fn canonicalize(&self, emb: Vec<f32>) -> Vec<f32> {
        self.l1.canonicalize(emb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::{EmbeddingCache32, QuantizedEmbeddingCache};

    fn rows(n: usize) -> Vec<(Key, L2Row)> {
        (0..n)
            .map(|i| ((0, i, 1), L2Row::F64(vec![i as f64, 0.5])))
            .collect()
    }

    #[test]
    fn promote_and_read_back_at_matching_epoch() {
        let tier = L2Tier::new(64);
        tier.promote(0, rows(3));
        let snap = tier.load();
        assert_eq!(snap.graph_epoch, 0);
        assert_eq!(snap.len(), 3);
        assert!(matches!(snap.get(&(0, 2, 1)), Some(L2Row::F64(v)) if v[0] == 2.0));
        assert!(snap.get(&(0, 9, 1)).is_none());
        assert_eq!(tier.promotions(), 3);
    }

    #[test]
    fn stale_epoch_promotions_are_dropped() {
        let tier = L2Tier::new(64);
        tier.apply_plan(&InvalidationPlan::flush(1));
        tier.promote(0, rows(3)); // computed at epoch 0, tier is at 1
        assert_eq!(tier.load().len(), 0);
        assert_eq!(tier.dropped(), 3);
        tier.promote(1, rows(2));
        assert_eq!(tier.load().len(), 2);
    }

    #[test]
    fn capacity_bounds_held_rows() {
        let tier = L2Tier::new(2);
        tier.promote(0, rows(5));
        assert_eq!(tier.load().len(), 2);
        let zero = L2Tier::new(0);
        zero.promote(0, rows(5));
        assert_eq!(zero.load().len(), 0);
    }

    #[test]
    fn duplicate_keys_are_promoted_once() {
        let tier = L2Tier::new(64);
        tier.promote(0, rows(3));
        tier.promote(0, rows(3)); // same keys again
        assert_eq!(tier.load().len(), 3);
        assert_eq!(tier.promotions(), 3);
    }

    #[test]
    fn apply_plan_evicts_by_the_normative_rule() {
        let tier = L2Tier::new(64);
        let entries: Vec<(Key, L2Row)> = (0..4)
            .flat_map(|node| {
                (0..=2).map(move |level| ((0usize, node, level), L2Row::F64(vec![1.0])))
            })
            .collect();
        tier.promote(0, entries);
        assert_eq!(tier.load().len(), 12);
        // Node 1 dirty at distance 1: levels 1..=2 go, level 0 survives.
        let plan =
            InvalidationPlan::precise(1, &[((0usize, 1usize), 1usize)].into_iter().collect());
        tier.apply_plan(&plan);
        let snap = tier.load();
        assert_eq!(snap.graph_epoch, 1);
        assert_eq!(snap.len(), 10);
        assert!(snap.contains(&(0, 1, 0)));
        assert!(!snap.contains(&(0, 1, 1)));
        assert!(!snap.contains(&(0, 1, 2)));
        assert!(snap.contains(&(0, 2, 2)));
    }

    #[test]
    fn flush_plan_empties_the_tier() {
        let tier = L2Tier::new(64);
        tier.promote(0, rows(3));
        tier.apply_plan(&InvalidationPlan::flush(1));
        let snap = tier.load();
        assert_eq!(snap.graph_epoch, 1);
        assert!(snap.is_empty());
    }

    #[test]
    fn segments_compact_past_the_bound() {
        let tier = L2Tier::new(4096);
        for batch in 0..(MAX_SEGMENTS + 3) {
            let entries: Vec<(Key, L2Row)> = (0..2)
                .map(|i| ((1, batch * 10 + i, 0), L2Row::F64(vec![0.0])))
                .collect();
            tier.promote(0, entries);
        }
        let snap = tier.load();
        assert_eq!(snap.len(), 2 * (MAX_SEGMENTS + 3));
        assert!(snap.segments.len() <= MAX_SEGMENTS + 1);
        // Every key still resolves after compaction.
        for batch in 0..(MAX_SEGMENTS + 3) {
            assert!(snap.contains(&(1, batch * 10, 0)));
        }
    }

    #[test]
    fn tiered_store_f64_hits_l2_and_refills_l1() {
        let tier = L2Tier::new(64);
        tier.promote(0, vec![((0, 7, 1), L2Row::F64(vec![3.25, -1.5]))]);
        let snap = tier.load();
        let mut l1 = EmbeddingCache::new(16);
        let mut store = TieredStore::new(&mut l1, Some(&snap));
        assert_eq!(store.get(0, 7, 1), Some(vec![3.25, -1.5]));
        assert_eq!(store.l2_hits, 1);
        assert!(store.get(0, 8, 1).is_none());
        assert_eq!(store.l2_misses, 1);
        drop(store);
        // The L2 hit warmed the L1.
        assert_eq!(l1.len(), 1);
    }

    #[test]
    fn tiered_store_q8_roundtrips_the_l1_bits() {
        let raw = vec![0.125f32, -2.5, 7.75, 0.0];
        // What a warm L1 hit would return.
        let mut plain = QuantizedEmbeddingCache::new(16);
        plain.put(0, 1, 1, raw.clone());
        let expect = plain.get(0, 1, 1).unwrap();

        // Shard A computes and stages through a tiered store.
        let tier = L2Tier::new(64);
        let snap0 = tier.load();
        let mut l1a = QuantizedEmbeddingCache::new(16);
        let mut store_a = TieredStore32::new(&mut l1a, Some(&snap0), true);
        store_a.put(0, 1, 1, raw.clone());
        tier.promote(0, store_a.into_staged());

        // Shard B reads the promoted row: bits must match the warm hit.
        let snap = tier.load();
        let mut l1b = QuantizedEmbeddingCache::new(16);
        let mut store_b = TieredStore32::new(&mut l1b, Some(&snap), true);
        let got = store_b.get(0, 1, 1).unwrap();
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(store_b.l2_hits, 1);
        // And the refilled L1 entry serves the same bits thereafter.
        drop(store_b);
        let warm = l1b.get(0, 1, 1).unwrap();
        assert_eq!(
            warm.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn tiered_store_f32_clones_exact_rows() {
        let tier = L2Tier::new(64);
        let snap0 = tier.load();
        let mut l1a = EmbeddingCache32::new(16);
        let mut store_a = TieredStore32::new(&mut l1a, Some(&snap0), false);
        store_a.put(0, 3, 2, vec![1.5f32, -0.25]);
        tier.promote(0, store_a.into_staged());

        let snap = tier.load();
        let mut l1b = EmbeddingCache32::new(16);
        let mut store_b = TieredStore32::new(&mut l1b, Some(&snap), false);
        assert_eq!(store_b.get(0, 3, 2), Some(vec![1.5f32, -0.25]));
    }

    #[test]
    fn store_without_l2_view_stages_nothing() {
        let mut l1 = EmbeddingCache::new(16);
        let mut store = TieredStore::new(&mut l1, None);
        store.put(0, 0, 0, vec![1.0]);
        assert!(store.get(0, 9, 9).is_none());
        assert_eq!(store.l2_misses, 0); // no L2 to miss
        assert!(store.into_staged().is_empty());
    }
}
