//! Core-affinity shard placement: pin a shard thread to one CPU so the
//! thread, its L1 cache slabs, and its inbox stay on one core.
//!
//! # Why a vendored shim
//!
//! The repo adds no crate dependencies, and `std` exposes no affinity
//! API, so this module issues the raw `sched_setaffinity(2)` syscall
//! directly (Linux on x86_64/aarch64). Everywhere else —
//! other platforms, other architectures — pinning degrades to an
//! explicit [`PinOutcome::Unsupported`] no-op: affinity is a placement
//! *hint*, never a correctness input, so serving proceeds identically
//! either way (the CI smoke diffs responses byte-for-byte across
//! `--affinity` on/off).
//!
//! With `pid == 0` the kernel applies the mask to the **calling
//! thread** (the kernel's `sched_setaffinity` is per-thread; the
//! process-wide behavior of the glibc wrapper is a library fiction), so
//! calling [`pin_current_thread`] from inside each shard's worker loop
//! pins exactly that shard.

/// Result of a pin attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinOutcome {
    /// The calling thread is now bound to the requested CPU.
    Pinned,
    /// No syscall shim for this OS/architecture; nothing was attempted.
    Unsupported,
    /// The kernel rejected the mask (value is the `errno`, e.g. `EINVAL`
    /// when the CPU is offline or outside the cgroup's cpuset).
    Failed(i32),
}

impl PinOutcome {
    /// True when the thread is actually bound.
    pub fn is_pinned(&self) -> bool {
        matches!(self, PinOutcome::Pinned)
    }
}

/// Bits in the CPU mask passed to the kernel: 16 × 64 = 1024 CPUs, the
/// kernel's conventional `CPU_SETSIZE`.
const MASK_WORDS: usize = 16;

/// Pin the calling thread to `cpu` (wrapped modulo the number of CPUs
/// the scheduler reports, so shard index `i` maps onto a valid core at
/// any shard count).
pub fn pin_current_thread(cpu: usize) -> PinOutcome {
    let ncpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cpu = cpu % ncpus.min(MASK_WORDS * 64);
    let mut mask = [0u64; MASK_WORDS];
    mask[cpu / 64] |= 1u64 << (cpu % 64);
    match set_affinity_raw(&mask) {
        0 => PinOutcome::Pinned,
        NO_SHIM => PinOutcome::Unsupported,
        err if err < 0 => PinOutcome::Failed((-err) as i32),
        _ => PinOutcome::Failed(0),
    }
}

/// Sentinel from [`set_affinity_raw`] when no shim exists for this
/// OS/architecture (no real syscall returns it: errnos are small).
const NO_SHIM: i64 = i64::MIN;

/// Raw `sched_setaffinity(0, sizeof(mask), mask)`. Returns 0 on
/// success, `-errno` on failure (the kernel's raw convention — no libc
/// errno indirection involved).
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn set_affinity_raw(mask: &[u64; MASK_WORDS]) -> i64 {
    let ret: i64;
    // SAFETY: sched_setaffinity (nr 203) reads `len` bytes from the
    // mask pointer and touches no other user memory; registers rcx/r11
    // are clobbered by the `syscall` instruction itself.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203i64 => ret,
            in("rdi") 0usize,                          // pid 0: this thread
            in("rsi") std::mem::size_of_val(mask),     // mask length, bytes
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack, readonly)
        );
    }
    ret
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
fn set_affinity_raw(mask: &[u64; MASK_WORDS]) -> i64 {
    let ret: i64;
    // SAFETY: as above; aarch64 syscall nr 122, arguments in x0..x2,
    // `svc 0` preserves everything but x0.
    unsafe {
        std::arch::asm!(
            "svc 0",
            in("x8") 122i64,
            inlateout("x0") 0i64 => ret,
            in("x1") std::mem::size_of_val(mask),
            in("x2") mask.as_ptr(),
            options(nostack, readonly)
        );
    }
    ret
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
fn set_affinity_raw(_mask: &[u64; MASK_WORDS]) -> i64 {
    // Signal "no shim" with the sentinel the caller maps to Unsupported.
    NO_SHIM
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinning_the_current_thread_succeeds_or_reports_cleanly() {
        let outcome = pin_current_thread(0);
        if cfg!(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )) {
            // CPU 0 always exists; a cpuset may still exclude it, in
            // which case the kernel must have said so via errno.
            assert!(
                outcome.is_pinned() || matches!(outcome, PinOutcome::Failed(e) if e > 0),
                "unexpected outcome: {outcome:?}"
            );
        } else {
            assert_eq!(outcome, PinOutcome::Unsupported);
        }
    }

    #[test]
    fn pin_from_spawned_threads_wraps_the_cpu_index() {
        let handles: Vec<_> = (0..4)
            .map(|i| std::thread::spawn(move || pin_current_thread(i)))
            .collect();
        for h in handles {
            let outcome = h.join().unwrap();
            assert!(
                !matches!(outcome, PinOutcome::Failed(0)),
                "raw syscall returned a positive non-zero value"
            );
        }
    }
}
