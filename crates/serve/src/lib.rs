//! # relgraph-serve
//!
//! High-throughput prediction serving over a fitted predictive query:
//! train once, then answer per-entity requests from a maintained graph at
//! interactive latency.
//!
//! * [`engine`] — [`ServeEngine`]: owns the database, the incrementally
//!   maintained graph, the trained model, and a two-tier cache (final
//!   predictions + hop-ℓ node embeddings) with **precise delta
//!   invalidation**: each ingested batch marks exactly the nodes whose
//!   inputs changed and evicts cached state within k hops of them, so
//!   cache-warm predictions stay bit-identical to a cold rebuild;
//! * [`batcher`] — [`MicroBatcher`]: size- and deadline-bounded request
//!   coalescing, feeding the deduplicating batch inference path in
//!   `relgraph-gnn`;
//! * [`cache`] — the bounded [`Lru`] both tiers are built from, plus
//!   [`CacheStats`] accounting surfaced in run reports;
//! * [`protocol`] — the `relgraph serve` JSONL wire format;
//! * [`quant`] — reduced-precision embedding tiers ([`EmbeddingTier`]):
//!   `f32` and 8-bit quantized rows backing the `--precision f32|q8`
//!   serving modes, with a tolerance story spelled out in `DESIGN.md` §15;
//! * [`sharded`] — [`ShardedEngine`]: the concurrent tier — per-core
//!   cache shards draining fused job batches against epoch-swapped graph
//!   snapshots ([`epoch`]), with one writer publishing deltas as
//!   broadcast [`invalidate`] plans; any shard count is bit-identical to
//!   one [`ServeEngine`];
//! * [`l2`] — [`L2Tier`]: the shared read-mostly hop-k embedding tier
//!   under the per-shard L1s — hub neighborhoods are embedded once and
//!   read lock-free by every shard, with the same epoch-tagged
//!   publication and `(v, ℓ)` invalidation rule as the L1s;
//! * [`steal`] — [`InboxSet`]: bounded per-shard job inboxes with
//!   steal-on-idle draining, so a hot-keyed client cannot serialize the
//!   tier;
//! * [`affinity`] — vendored `sched_setaffinity` shim behind the
//!   `--affinity` flag: pin each shard thread (and so its caches and
//!   inbox) to one core; graceful no-op off Linux;
//! * [`server`] — the TCP/Unix-socket JSONL front-end over the sharded
//!   tier, one handler thread per connection.
//!
//! ## Example
//!
//! ```no_run
//! use relgraph_datagen::{generate_ecommerce, EcommerceConfig};
//! use relgraph_pq::ExecConfig;
//! use relgraph_serve::{ServeConfig, ServeEngine};
//!
//! let db = generate_ecommerce(&EcommerceConfig::default()).unwrap();
//! let mut engine = ServeEngine::fit(
//!     db,
//!     "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id",
//!     &ExecConfig::default(),
//!     ServeConfig::default(),
//! ).unwrap();
//! let p = engine.predict_row(0); // cold: computes + caches
//! assert_eq!(engine.predict_row(0), p); // warm: served from cache
//! ```

#![warn(missing_docs)]

pub mod affinity;
pub mod batcher;
pub mod cache;
pub mod engine;
pub mod epoch;
pub mod error;
pub mod invalidate;
pub mod l2;
pub mod persist;
pub mod protocol;
pub mod quant;
pub mod server;
pub mod sharded;
pub mod steal;

pub use affinity::{pin_current_thread, PinOutcome};
pub use batcher::MicroBatcher;
pub use cache::{CacheStats, EmbeddingCache, Lru};
pub use engine::{
    predict_batch_cached, predict_batch_cached32, GroupIngestOutcome, IngestOutcome, ServeConfig,
    ServeEngine,
};
pub use epoch::EpochCell;
pub use error::{ServeError, ServeResult};
pub use invalidate::{InvalidationPlan, PlanFilter};
pub use l2::{L2Row, L2Snapshot, L2Tier, TieredStore, TieredStore32};
pub use persist::{
    load_model, save_engine, save_model, warm_engine, warm_sharded, warm_sharded_partial,
    ModelSnapshot, PartialWarmBoot, WarmBootReport,
};
pub use protocol::{parse_request, recover_id, response_err, response_ok, Request};
pub use quant::{
    dequantize_row, quantize_row, EmbeddingCache32, EmbeddingTier, QuantizedEmbeddingCache,
    QuantizedRow,
};
pub use server::{bind, handle_line, ServerListener};
pub use sharded::{GraphSnapshot, ShardedEngine, PLAN_HISTORY};
pub use steal::{Drain, InboxSet};
