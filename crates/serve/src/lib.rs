//! # relgraph-serve
//!
//! High-throughput prediction serving over a fitted predictive query:
//! train once, then answer per-entity requests from a maintained graph at
//! interactive latency.
//!
//! * [`engine`] — [`ServeEngine`]: owns the database, the incrementally
//!   maintained graph, the trained model, and a two-tier cache (final
//!   predictions + hop-ℓ node embeddings) with **precise delta
//!   invalidation**: each ingested batch marks exactly the nodes whose
//!   inputs changed and evicts cached state within k hops of them, so
//!   cache-warm predictions stay bit-identical to a cold rebuild;
//! * [`batcher`] — [`MicroBatcher`]: size- and deadline-bounded request
//!   coalescing, feeding the deduplicating batch inference path in
//!   `relgraph-gnn`;
//! * [`cache`] — the bounded [`Lru`] both tiers are built from, plus
//!   [`CacheStats`] accounting surfaced in run reports;
//! * [`protocol`] — the `relgraph serve` JSONL wire format.
//!
//! ## Example
//!
//! ```no_run
//! use relgraph_datagen::{generate_ecommerce, EcommerceConfig};
//! use relgraph_pq::ExecConfig;
//! use relgraph_serve::{ServeConfig, ServeEngine};
//!
//! let db = generate_ecommerce(&EcommerceConfig::default()).unwrap();
//! let mut engine = ServeEngine::fit(
//!     db,
//!     "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id",
//!     &ExecConfig::default(),
//!     ServeConfig::default(),
//! ).unwrap();
//! let p = engine.predict_row(0); // cold: computes + caches
//! assert_eq!(engine.predict_row(0), p); // warm: served from cache
//! ```

#![warn(missing_docs)]

pub mod batcher;
pub mod cache;
pub mod engine;
pub mod error;
pub mod protocol;

pub use batcher::MicroBatcher;
pub use cache::{CacheStats, EmbeddingCache, Lru};
pub use engine::{IngestOutcome, ServeConfig, ServeEngine};
pub use error::{ServeError, ServeResult};
pub use protocol::{parse_request, response_err, response_ok, Request};
