//! Delta-driven cache invalidation, shared between the single-threaded
//! [`ServeEngine`](crate::ServeEngine) and the sharded serving tier.
//!
//! The correctness argument lives in `engine`'s module docs; this module
//! owns the machinery: find the distance-0 dirty seeds an ingest created,
//! close them over k hops, and package the result as an
//! [`InvalidationPlan`] that any cache slice — the engine's own, or each
//! shard's — can apply independently. A plan is *descriptive*, not
//! imperative: it names `(type, node, distance)` triples, and applying it
//! to a cache that never held those entries is a no-op. That is what lets
//! one writer broadcast the same plan to every shard without knowing which
//! shard cached what.

use std::collections::HashMap;
use std::sync::Arc;

use relgraph_db2graph::GraphMapping;
use relgraph_graph::{FeatureMatrix, HeteroGraph, NodeTypeId};
use relgraph_store::Database;

use crate::cache::Lru;
use crate::error::{ServeError, ServeResult};
use crate::quant::EmbeddingTier;

/// A table that gained rows during an ingest, with enough context to diff
/// its features pre/post delta.
#[derive(Debug, Clone, Copy)]
pub struct TableGrowth {
    /// Index into `db.tables()`.
    pub table_index: usize,
    /// The table's node type in the graph.
    pub node_type: NodeTypeId,
    /// Row count before the ingest.
    pub pre_len: usize,
}

/// Which tables grew, given the pre-ingest row counts. Call *after*
/// `db.ingest` and *before* applying the graph delta (the pre-delta
/// feature matrices must still be capturable from the old graph).
pub fn grown_tables(
    db: &Database,
    mapping: &GraphMapping,
    pre_lens: &[usize],
) -> ServeResult<Vec<TableGrowth>> {
    let mut grown = Vec::new();
    for (i, t) in db.tables().iter().enumerate() {
        if t.len() > pre_lens[i] {
            let nt = mapping.node_type(t.name()).ok_or_else(|| {
                ServeError::Engine(format!("table `{}` missing from graph mapping", t.name()))
            })?;
            grown.push(TableGrowth {
                table_index: i,
                node_type: nt,
                pre_len: pre_lens[i],
            });
        }
    }
    Ok(grown)
}

/// Distance-0 dirty seeds plus their `hops`-hop closure over the
/// post-delta `graph`. Returns the shortest distance from each affected
/// `(type, node)` to any seed.
///
/// Seeds (distance 0) are: rows whose feature vector changed bitwise
/// (z-score statistics shift on append), endpoints of new edges (their
/// neighbor lists and windowed degrees changed), and the new rows
/// themselves. `pre_features[i]` must be the pre-delta feature matrix of
/// `growth[i].node_type`.
pub fn dirty_closure(
    db: &Database,
    graph: &HeteroGraph,
    mapping: &GraphMapping,
    growth: &[TableGrowth],
    pre_features: &[FeatureMatrix],
    hops: usize,
) -> ServeResult<HashMap<(usize, usize), usize>> {
    let mut dist: HashMap<(usize, usize), usize> = HashMap::new();
    for (g, pre) in growth.iter().zip(pre_features) {
        let nt = g.node_type;
        let post = graph.features(nt);
        if pre.dim() != post.dim() {
            // The feature space itself changed (new hashed category, say):
            // every row of the type is dirty.
            for row in 0..post.rows() {
                dist.insert((nt.0, row), 0);
            }
            continue;
        }
        for row in 0..g.pre_len.min(post.rows()) {
            let changed = pre
                .row(row)
                .iter()
                .zip(post.row(row))
                .any(|(a, b)| a.to_bits() != b.to_bits());
            if changed {
                dist.insert((nt.0, row), 0);
            }
        }
        for row in g.pre_len..post.rows() {
            dist.insert((nt.0, row), 0);
        }
        let table = &db.tables()[g.table_index];
        for fk in table.schema().foreign_keys() {
            let target = db.table(&fk.referenced_table)?;
            let target_nt = mapping.node_type(target.name()).ok_or_else(|| {
                ServeError::Engine(format!(
                    "table `{}` missing from graph mapping",
                    target.name()
                ))
            })?;
            let col = table
                .column_by_name(&fk.column)
                .expect("schema guarantees the FK column exists");
            for row in g.pre_len..table.len() {
                let key = col.get(row);
                if key.is_null() {
                    continue;
                }
                if let Some(dst) = target.row_by_key(&key) {
                    dist.insert((target_nt.0, dst), 0);
                }
            }
        }
    }

    // BFS over the full adjacency; forward + reverse edge types make
    // neighbor-of symmetric, and `dist` keeps the shortest distance.
    let mut frontier: Vec<(usize, usize)> = dist.keys().copied().collect();
    for d in 1..=hops {
        let mut next = Vec::new();
        for &(ty, node) in &frontier {
            for &et in graph.edge_types_from(NodeTypeId(ty)) {
                let dst_ty = graph.edge_type(et).dst.0;
                let (nbrs, _) = graph.neighbor_slices(et, node);
                for &nbr in nbrs {
                    let key = (dst_ty, nbr as usize);
                    if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(key) {
                        e.insert(d);
                        next.push(key);
                    }
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    Ok(dist)
}

/// One published graph transition, as seen by a cache slice: applying the
/// plan for epoch `e` brings a cache that was consistent with epoch `e-1`
/// to consistency with epoch `e`.
#[derive(Debug, Clone)]
pub struct InvalidationPlan {
    /// The epoch this plan transitions *to*.
    pub epoch: u64,
    /// Drop everything: the deploy anchor advanced or the graph was
    /// rebuilt, so no cached entry's inputs survived.
    pub flush: bool,
    /// `(type, node, distance)` triples to evict precisely. Shared by
    /// every shard, hence the `Arc`.
    pub dirty: Arc<Vec<(usize, usize, usize)>>,
}

impl InvalidationPlan {
    /// A plan that flushes wholesale.
    pub fn flush(epoch: u64) -> Self {
        InvalidationPlan {
            epoch,
            flush: true,
            dirty: Arc::new(Vec::new()),
        }
    }

    /// A plan that evicts precisely, from a [`dirty_closure`] result.
    pub fn precise(epoch: u64, dist: &HashMap<(usize, usize), usize>) -> Self {
        let mut dirty: Vec<(usize, usize, usize)> =
            dist.iter().map(|(&(ty, node), &d)| (ty, node, d)).collect();
        // Deterministic order so every shard applies the identical plan.
        dirty.sort_unstable();
        InvalidationPlan {
            epoch,
            flush: false,
            dirty: Arc::new(dirty),
        }
    }

    /// Coalesce consecutive plans into one plan whose application is
    /// equivalent to applying `plans` in order. `None` on an empty slice.
    ///
    /// * Any flush dominates: after a wholesale clear the cache holds
    ///   nothing for later precise evictions to remove, so the merged plan
    ///   is a flush.
    /// * Otherwise dirty sets union, keeping the **minimum** distance per
    ///   `(type, node)`: [`evict_dirty`] evicts levels `d..=hops`, and
    ///   `min(d1, d2)..=hops` is exactly the union of the two ranges.
    /// * The merged epoch is the last plan's (plans are consecutive and
    ///   ascending), so applying it lands the cache on the same epoch the
    ///   sequence would have.
    ///
    /// This is what lets a shard that slept through N epochs — or a writer
    /// ingesting an N-batch group — pay one cache sweep instead of N.
    pub fn merge(plans: &[InvalidationPlan]) -> Option<InvalidationPlan> {
        let last = plans.last()?;
        if plans.len() == 1 {
            return Some(last.clone());
        }
        if plans.iter().any(|p| p.flush) {
            return Some(InvalidationPlan::flush(last.epoch));
        }
        let mut dist: HashMap<(usize, usize), usize> = HashMap::new();
        for plan in plans {
            for &(ty, node, d) in plan.dirty.iter() {
                dist.entry((ty, node))
                    .and_modify(|e| *e = (*e).min(d))
                    .or_insert(d);
            }
        }
        Some(InvalidationPlan::precise(last.epoch, &dist))
    }
}

/// The normative eviction predicate of one (possibly merged) plan, in a
/// form a *shared* cache can query per entry instead of enumerating keys.
///
/// [`evict_dirty`] walks the dirty list and removes levels `d..=hops` by
/// key — the right shape for a per-shard slice, where the plan is small
/// relative to the cache. The L2 tier inverts that: the writer sweeps the
/// published map once and asks, per held entry, whether the plan evicts
/// it. Both answer the same question, and this struct *is* the rule:
/// under a plan `P` (including any [`InvalidationPlan::merge`] result),
/// a cached embedding keyed `(ty, node, level)` must be dropped **iff**
/// `P.flush`, or `P.dirty` contains `(ty, node)` at distance `d` with
/// `level >= d`. Levels below `d` survive: a change `d` hops away can
/// only reach an embedding whose receptive field spans at least `d` hops.
/// Predictions count as level `hops` of the entity type.
pub struct PlanFilter {
    flush: bool,
    dist: HashMap<(usize, usize), usize>,
}

impl PlanFilter {
    /// Compile `plan` into the predicate form (one hash per dirty node;
    /// merged plans already keep the minimum distance per node).
    pub fn new(plan: &InvalidationPlan) -> Self {
        let mut dist = HashMap::new();
        if !plan.flush {
            for &(ty, node, d) in plan.dirty.iter() {
                dist.entry((ty, node))
                    .and_modify(|e: &mut usize| *e = (*e).min(d))
                    .or_insert(d);
            }
        }
        PlanFilter {
            flush: plan.flush,
            dist,
        }
    }

    /// True when the plan flushes wholesale (every entry is evicted).
    pub fn flushes(&self) -> bool {
        self.flush
    }

    /// Must the embedding keyed `(ty, node, level)` be dropped under this
    /// plan?
    pub fn evicts(&self, ty: usize, node: usize, level: usize) -> bool {
        self.flush || self.dist.get(&(ty, node)).is_some_and(|&d| level >= d)
    }
}

/// Apply one plan's precise evictions to a cache slice: embeddings at
/// levels `d..=hops` for every dirty node, plus the tier-1 prediction for
/// dirty entity nodes. Returns `(embeddings_evicted, predictions_evicted)`
/// — counts of entries actually present, so idle shards report zeros.
/// Works on any [`EmbeddingTier`]: invalidation is keyed by
/// `(type, node, level)` regardless of how the payload is encoded.
pub fn evict_dirty(
    dirty: &[(usize, usize, usize)],
    hops: usize,
    entity_ty: usize,
    predictions: &mut Lru<usize, f64>,
    embeddings: &mut EmbeddingTier,
) -> (u64, u64) {
    let mut emb = 0u64;
    let mut pred = 0u64;
    for &(ty, node, d) in dirty {
        for level in d..=hops {
            if embeddings.invalidate(ty, node, level) {
                emb += 1;
            }
        }
        if ty == entity_ty && predictions.remove(&node) {
            pred += 1;
        }
    }
    (emb, pred)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn precise(epoch: u64, entries: &[((usize, usize), usize)]) -> InvalidationPlan {
        InvalidationPlan::precise(epoch, &entries.iter().copied().collect())
    }

    #[test]
    fn merge_unions_dirty_with_min_distance() {
        let a = precise(3, &[((0, 1), 2), ((0, 2), 0)]);
        let b = precise(4, &[((0, 1), 1), ((1, 7), 3)]);
        let m = InvalidationPlan::merge(&[a, b]).unwrap();
        assert_eq!(m.epoch, 4);
        assert!(!m.flush);
        assert_eq!(*m.dirty, vec![(0, 1, 1), (0, 2, 0), (1, 7, 3)]);
    }

    #[test]
    fn merge_lets_flush_dominate() {
        let a = precise(5, &[((0, 1), 0)]);
        let b = InvalidationPlan::flush(6);
        let c = precise(7, &[((2, 2), 1)]);
        let m = InvalidationPlan::merge(&[a, b, c]).unwrap();
        assert_eq!(m.epoch, 7);
        assert!(m.flush);
        assert!(m.dirty.is_empty());
    }

    #[test]
    fn plan_filter_agrees_with_evict_dirty_on_every_level() {
        use relgraph_gnn::{EmbeddingStore, Precision};
        let hops = 2usize;
        let plan = precise(1, &[((0, 3), 1), ((1, 5), 0), ((0, 7), 2)]);
        let filter = PlanFilter::new(&plan);
        assert!(!filter.flushes());
        let mut tier = EmbeddingTier::new(Precision::F64, 1024);
        let mut predictions: Lru<usize, f64> = Lru::new(1024);
        let keys: Vec<(usize, usize, usize)> = (0..2)
            .flat_map(|ty| (0..8).flat_map(move |node| (0..=hops).map(move |l| (ty, node, l))))
            .collect();
        for &(ty, node, level) in &keys {
            tier.as_f64_mut().put(ty, node, level, vec![1.0]);
        }
        evict_dirty(&plan.dirty, hops, 0, &mut predictions, &mut tier);
        for &(ty, node, level) in &keys {
            let held = tier.as_f64_mut().get(ty, node, level).is_some();
            assert_eq!(
                held,
                !filter.evicts(ty, node, level),
                "filter and evict_dirty disagree at ({ty}, {node}, {level})"
            );
        }
        assert!(PlanFilter::new(&InvalidationPlan::flush(2)).evicts(9, 9, 0));
    }

    #[test]
    fn merge_of_one_is_identity_and_of_none_is_none() {
        let a = precise(9, &[((0, 0), 1)]);
        let m = InvalidationPlan::merge(std::slice::from_ref(&a)).unwrap();
        assert_eq!(m.epoch, 9);
        assert_eq!(*m.dirty, *a.dirty);
        assert!(InvalidationPlan::merge(&[]).is_none());
    }
}
