//! The serving engine: a fitted predictive query, a delta-maintained
//! graph, and two cache tiers with precise ingest-driven invalidation.
//!
//! # Why warm and cold predictions are bit-identical
//!
//! A cached hop-ℓ embedding `h_ℓ(v)` is a pure function of
//! `(type, node, level, anchor)` over the graph's current state, and
//! [`relgraph_gnn::predict_nodes`] only ever *reuses* cache entries — it
//! never produces a different value because one exists. So the cache can
//! only be wrong by holding an entry whose inputs changed underneath it.
//! [`ServeEngine::ingest`] closes exactly that hole:
//!
//! 1. **Dirty seeds (distance 0).** After appending a batch and applying
//!    the graph delta, a node is *dirty* if its level-0 input row changed —
//!    its feature row differs bitwise pre/post (z-score statistics shift on
//!    append), it is an endpoint of a new edge (its neighbor list and
//!    windowed degrees changed), or it is itself a new row.
//! 2. **k-hop closure.** `h_ℓ(v)` reads embeddings of nodes up to ℓ hops
//!    from `v`, so a dirty node at distance `d` from `v` can affect
//!    `h_ℓ(v)` only when `ℓ ≥ d`. A BFS over the full adjacency (forward +
//!    reverse edge types make neighbor-of symmetric) labels every node
//!    within `k` hops of a dirty seed with its distance `d`.
//! 3. **Precise eviction.** For each labelled node the engine drops cached
//!    embeddings at levels `d..=k` and, for entity nodes, the tier-1
//!    prediction. Entries at levels `< d` provably kept their inputs and
//!    stay.
//!
//! If the ingest advanced the deploy anchor, *every* entry's anchor input
//! changed (relative-age features, visibility windows), so both tiers are
//! flushed wholesale instead. `tests/serving_equivalence.rs` holds the
//! warm ≡ cold line under randomized ingest schedules.

use std::collections::HashMap;
use std::sync::Arc;

use relgraph_db2graph::{
    build_graph, update_graph, ConvertOptions, DeltaStats, GraphCursor, GraphMapping,
};
use relgraph_gnn::{
    predict_nodes, predict_nodes_f32, EmbeddingStore, EmbeddingStore32, InferModel32, NodeModel,
    Precision,
};
use relgraph_graph::{FeatureMatrix, HeteroGraph, NodeTypeId};
use relgraph_obs as obs;
use relgraph_pq::{ExecConfig, PreparedQuery};
use relgraph_store::{
    Database, IngestPolicy, IngestReport, RowBatch, StoreResult, Timestamp, Value,
};

use crate::cache::{CacheStats, Lru};
use crate::error::{ServeError, ServeResult};
use crate::invalidate::{dirty_closure, evict_dirty, grown_tables, TableGrowth};
use crate::quant::EmbeddingTier;

/// Serving knobs: batch bounds and cache capacities.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Most requests fused into one inference batch.
    pub max_batch: usize,
    /// Longest a batch waits for co-travellers after its first request.
    pub batch_deadline: std::time::Duration,
    /// Capacity of the final-prediction tier (entries).
    pub prediction_cache: usize,
    /// Capacity of the node-embedding tier (entries).
    pub embedding_cache: usize,
    /// Numeric mode of the inference path and embedding tier. Training
    /// always runs in `f64`; `F32`/`Q8` down-convert the fitted weights
    /// once at engine assembly (tolerance story: `DESIGN.md` §15).
    pub precision: Precision,
    /// Write-path group-commit window, in batches: how many consecutive
    /// ingest batches the serving tier coalesces into one WAL fsync and
    /// one snapshot publish (`--commit-window` on the CLI). `1` means
    /// every batch commits and publishes individually (the legacy
    /// behavior).
    pub commit_window: usize,
    /// Capacity of the shared L2 embedding tier (entries), used only by
    /// the sharded engine: hub embeddings promoted here are read
    /// lock-free by every shard instead of being recomputed per shard.
    /// `0` disables the tier. Unlike the per-shard caches this budget is
    /// *not* divided by the shard count — it is one tier.
    pub l2_cache: usize,
    /// Pin each shard worker to one core (`sched_setaffinity`; graceful
    /// no-op off Linux). Placement hint only — served bits are identical
    /// either way (`--affinity` on the CLI).
    pub affinity: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            batch_deadline: std::time::Duration::from_millis(5),
            prediction_cache: 4096,
            embedding_cache: 65536,
            precision: Precision::F64,
            commit_window: 1,
            l2_cache: 65536,
            affinity: false,
        }
    }
}

/// What one [`ServeEngine::ingest`] call did.
#[derive(Debug, Clone, Default)]
pub struct IngestOutcome {
    /// The store's validation/apply report.
    pub report: IngestReport,
    /// The graph delta that was applied.
    pub delta: DeltaStats,
    /// Dirty nodes found (distance-0 seeds plus their k-hop closure).
    pub dirty_nodes: usize,
    /// Embedding entries evicted by precise invalidation.
    pub invalidated_embeddings: u64,
    /// Prediction entries evicted by precise invalidation.
    pub invalidated_predictions: u64,
    /// True when both tiers were flushed wholesale (anchor advanced).
    pub flushed: bool,
    /// True when the delta failed and the graph was rebuilt from scratch.
    pub rebuilt: bool,
}

/// What one group ingest ([`ServeEngine::ingest_group`] /
/// [`ShardedEngine::ingest_group`](crate::ShardedEngine::ingest_group))
/// did: per-batch store verdicts, plus the *one* coalesced graph delta /
/// invalidation the whole group paid for.
#[derive(Debug, Clone, Default)]
pub struct GroupIngestOutcome {
    /// One store report per submitted batch, in submission order. A
    /// rejected batch is an `Err` here and a no-op in the database — the
    /// rest of the group still applies, exactly as if each batch had been
    /// ingested individually.
    pub reports: Vec<StoreResult<IngestReport>>,
    /// The group-level outcome. `report` aggregates the accepted batches'
    /// row counts; `delta`/`dirty_nodes`/`flushed`/`rebuilt` describe the
    /// single coalesced graph transition.
    pub outcome: IngestOutcome,
}

impl GroupIngestOutcome {
    /// Batches the store accepted (their rows are applied and durable
    /// once the covering commit is).
    pub fn accepted_batches(&self) -> usize {
        self.reports.iter().filter(|r| r.is_ok()).count()
    }
}

/// A query fitted once and served many times over a maintained graph.
pub struct ServeEngine {
    db: Database,
    graph: HeteroGraph,
    mapping: GraphMapping,
    cursor: GraphCursor,
    opts: ConvertOptions,
    query: PreparedQuery,
    model: Arc<NodeModel>,
    /// Weights down-converted to `f32` once at assembly; `None` in `F64`
    /// mode (the `f64` path must stay bitwise untouched by this feature).
    model32: Option<Arc<InferModel32>>,
    node_type: NodeTypeId,
    metrics: Vec<(String, f64)>,
    anchor: Timestamp,
    hops: usize,
    predictions: Lru<usize, f64>,
    embeddings: EmbeddingTier,
    stats: CacheStats,
    cfg: ServeConfig,
}

impl ServeEngine {
    /// Compile the database to a graph, train the query's GNN model on it,
    /// and wrap everything into a warm-startable engine. Fails for queries
    /// that do not compile to a node-level GNN model (see
    /// [`PreparedQuery::fit_node_model`]).
    pub fn fit(
        db: Database,
        query_text: &str,
        exec: &ExecConfig,
        cfg: ServeConfig,
    ) -> ServeResult<Self> {
        let _span = obs::span("serve.fit");
        let opts = ConvertOptions::default();
        let (graph, mapping) = build_graph(&db, &opts)?;
        let query = PreparedQuery::prepare(&db, query_text, exec)?;
        let fitted = query.fit_node_model(&db, &graph, &mapping)?;
        Self::assemble(
            db,
            graph,
            mapping,
            opts,
            query,
            Arc::new(fitted.model),
            fitted.node_type,
            fitted.metrics,
            cfg,
        )
    }

    /// Wrap an *already fitted* model into a fresh engine over `db`,
    /// rebuilding graph state but skipping training. Training is
    /// deterministic given the seed, so engines built this way from the
    /// same database predict bit-identically to the engine the model was
    /// fitted on — this is how the sharded tier and the equivalence tests
    /// stamp out many engines from one (expensive) fit.
    pub fn from_fitted(
        db: Database,
        query: PreparedQuery,
        model: Arc<NodeModel>,
        node_type: NodeTypeId,
        metrics: Vec<(String, f64)>,
        cfg: ServeConfig,
    ) -> ServeResult<Self> {
        let opts = ConvertOptions::default();
        let (graph, mapping) = build_graph(&db, &opts)?;
        Self::assemble(
            db, graph, mapping, opts, query, model, node_type, metrics, cfg,
        )
    }

    /// Wrap an already fitted model *and* an already compiled graph into an
    /// engine — the warm-restart path. `graph`/`mapping` must be current
    /// with respect to `db` (the loader catches the snapshot up with
    /// [`update_graph`] first); the engine then serves bit-identically to
    /// one built by [`ServeEngine::fit`] on the same database, without
    /// re-featurizing a single row or training anything.
    #[allow(clippy::too_many_arguments)]
    pub fn from_fitted_graph(
        db: Database,
        graph: HeteroGraph,
        mapping: GraphMapping,
        query: PreparedQuery,
        model: Arc<NodeModel>,
        node_type: NodeTypeId,
        metrics: Vec<(String, f64)>,
        cfg: ServeConfig,
    ) -> ServeResult<Self> {
        let opts = ConvertOptions::default();
        Self::assemble(
            db, graph, mapping, opts, query, model, node_type, metrics, cfg,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        db: Database,
        graph: HeteroGraph,
        mapping: GraphMapping,
        opts: ConvertOptions,
        query: PreparedQuery,
        model: Arc<NodeModel>,
        node_type: NodeTypeId,
        metrics: Vec<(String, f64)>,
        cfg: ServeConfig,
    ) -> ServeResult<Self> {
        let cursor = GraphCursor::capture(&db);
        let anchor = deploy_anchor(&db);
        let hops = model.sampler_cfg().fanouts.len();
        let model32 = match cfg.precision {
            Precision::F64 => None,
            Precision::F32 | Precision::Q8 => Some(Arc::new(InferModel32::from_model(&model))),
        };
        Ok(ServeEngine {
            db,
            graph,
            mapping,
            cursor,
            opts,
            query,
            model,
            model32,
            node_type,
            metrics,
            anchor,
            hops,
            predictions: Lru::new(cfg.prediction_cache),
            embeddings: EmbeddingTier::new(cfg.precision, cfg.embedding_cache),
            stats: CacheStats::default(),
            cfg,
        })
    }

    /// Score entity rows, coalesced into one fused inference pass. Cached
    /// predictions short-circuit; the rest run through the deduplicating
    /// per-node path against the embedding tier. Output order matches
    /// input order; duplicate rows are computed once.
    pub fn predict_batch(&mut self, rows: &[usize]) -> Vec<f64> {
        let t0 = std::time::Instant::now();
        let out = match &self.model32 {
            None => predict_batch_cached(
                &self.model,
                &self.graph,
                self.node_type,
                self.anchor,
                rows,
                &mut self.predictions,
                self.embeddings.as_f64_mut(),
                &mut self.stats,
            ),
            Some(m32) => predict_batch_cached32(
                m32,
                &self.graph,
                self.node_type,
                self.anchor,
                rows,
                &mut self.predictions,
                self.embeddings.as_store32_mut(),
                &mut self.stats,
            ),
        };
        self.sync_stats();
        if obs::enabled() {
            obs::add("serve.requests", rows.len() as u64);
            obs::observe("serve.batch.occupancy", rows.len() as f64);
            obs::record_ns("serve.predict", t0.elapsed().as_nanos() as u64);
        }
        out
    }

    /// Score one entity row.
    pub fn predict_row(&mut self, row: usize) -> f64 {
        self.predict_batch(&[row])[0]
    }

    /// Resolve primary-key values to rows and score them as one batch.
    /// Unknown keys get per-request errors; the rest are still fused.
    pub fn predict_batch_keys(&mut self, keys: &[Value]) -> Vec<ServeResult<f64>> {
        let entity_table = self.query.analyzed().entity_table.clone();
        let mut rows: Vec<Option<usize>> = Vec::with_capacity(keys.len());
        {
            let table = match self.db.table(&entity_table) {
                Ok(t) => t,
                Err(e) => {
                    return keys
                        .iter()
                        .map(|_| Err(ServeError::from(e.clone())))
                        .collect()
                }
            };
            for key in keys {
                rows.push(table.row_by_key(key));
            }
        }
        let found: Vec<usize> = rows.iter().filter_map(|r| *r).collect();
        let preds = self.predict_batch(&found);
        let mut it = preds.into_iter();
        keys.iter()
            .zip(rows)
            .map(|(key, row)| match row {
                Some(_) => Ok(it.next().expect("one prediction per resolved row")),
                None => Err(ServeError::UnknownEntity {
                    table: entity_table.clone(),
                    key: key.to_string(),
                }),
            })
            .collect()
    }

    /// Append a validated batch, maintain the graph incrementally, and
    /// invalidate exactly the cache entries the delta can have touched
    /// (module docs spell out the argument). If the delta fails (dangling
    /// reference, schema drift) the engine rebuilds the graph from scratch
    /// and flushes both tiers rather than serving from a poisoned graph.
    pub fn ingest(&mut self, batch: RowBatch, policy: &IngestPolicy) -> ServeResult<IngestOutcome> {
        let _span = obs::span("serve.ingest");
        let pre_lens: Vec<usize> = self.db.tables().iter().map(|t| t.len()).collect();
        let report = self.db.ingest(batch, policy)?;
        let mut outcome = IngestOutcome {
            report,
            ..Default::default()
        };
        self.apply_delta_and_invalidate(&pre_lens, &mut outcome)?;
        Ok(outcome)
    }

    /// Append a *group* of validated batches, paying the graph delta,
    /// dirty closure and cache sweep **once** for the whole group instead
    /// of once per batch. Per-batch semantics are unchanged: each batch is
    /// validated and applied independently (a rejected batch is an `Err`
    /// in [`GroupIngestOutcome::reports`] and a no-op in the database),
    /// and the final engine state equals ingesting the batches one by one
    /// — only the amortized maintenance cost differs. The write-path
    /// counterpart of store-level group commit
    /// ([`DataDir::submit_ingest`](relgraph_store::DataDir::submit_ingest));
    /// DESIGN.md §14.8.
    pub fn ingest_group(
        &mut self,
        batches: Vec<RowBatch>,
        policy: &IngestPolicy,
    ) -> ServeResult<GroupIngestOutcome> {
        let _span = obs::span("serve.ingest");
        let pre_lens: Vec<usize> = self.db.tables().iter().map(|t| t.len()).collect();
        let mut group = GroupIngestOutcome {
            reports: Vec::with_capacity(batches.len()),
            ..Default::default()
        };
        for batch in batches {
            match self.db.ingest(batch, policy) {
                Ok(report) => {
                    group.outcome.report.accepted += report.accepted;
                    group.outcome.report.coerced += report.coerced;
                    group.outcome.report.late += report.late;
                    group.outcome.report.quarantined += report.quarantined;
                    group.reports.push(Ok(report));
                }
                Err(e) => group.reports.push(Err(e)),
            }
        }
        if group.accepted_batches() == 0 {
            // Nothing applied: the graph, anchor and caches are untouched.
            return Ok(group);
        }
        if obs::enabled() && group.reports.len() > 1 {
            obs::add("serve.invalidate.coalesced", group.reports.len() as u64 - 1);
        }
        self.apply_delta_and_invalidate(&pre_lens, &mut group.outcome)?;
        Ok(group)
    }

    /// The maintenance half of an ingest: diff the grown tables against
    /// `pre_lens`, apply one graph delta, and invalidate precisely (or
    /// flush on anchor advance / rebuild on delta failure). Shared by
    /// [`ingest`](Self::ingest) and [`ingest_group`](Self::ingest_group).
    fn apply_delta_and_invalidate(
        &mut self,
        pre_lens: &[usize],
        outcome: &mut IngestOutcome,
    ) -> ServeResult<()> {
        // Tables that grew, with their node types and pre-ingest feature
        // matrices (the delta re-featurizes grown tables in full; the
        // bitwise row diff in `dirty_closure` needs the "before").
        let grown: Vec<TableGrowth> = grown_tables(&self.db, &self.mapping, pre_lens)?;
        let pre_features: Vec<FeatureMatrix> = grown
            .iter()
            .map(|g| self.graph.features(g.node_type).clone())
            .collect();

        match update_graph(
            &self.db,
            &mut self.graph,
            &mut self.mapping,
            &mut self.cursor,
            &self.opts,
        ) {
            Ok(delta) => outcome.delta = delta,
            Err(_) => {
                // The graph may hold a partial delta; rebuild it wholesale.
                let (graph, mapping) = build_graph(&self.db, &self.opts)?;
                self.graph = graph;
                self.mapping = mapping;
                self.cursor = GraphCursor::capture(&self.db);
                self.anchor = deploy_anchor(&self.db);
                self.flush_caches();
                outcome.rebuilt = true;
                outcome.flushed = true;
                return Ok(());
            }
        }

        let new_anchor = deploy_anchor(&self.db);
        if new_anchor != self.anchor {
            // Every cached value took the anchor as an input (age features,
            // visibility windows, seed time): nothing survives.
            self.anchor = new_anchor;
            self.flush_caches();
            outcome.flushed = true;
            return Ok(());
        }

        // Dirty seeds + k-hop closure, then precise eviction of embeddings
        // at levels d..=k and predictions of dirty entity nodes (shared
        // with the sharded tier via `invalidate`).
        let dist = dirty_closure(
            &self.db,
            &self.graph,
            &self.mapping,
            &grown,
            &pre_features,
            self.hops,
        )?;
        let dirty: Vec<(usize, usize, usize)> =
            dist.iter().map(|(&(ty, node), &d)| (ty, node, d)).collect();
        let (emb, pred) = evict_dirty(
            &dirty,
            self.hops,
            self.node_type.0,
            &mut self.predictions,
            &mut self.embeddings,
        );
        outcome.invalidated_embeddings = emb;
        outcome.invalidated_predictions = pred;
        outcome.dirty_nodes = dist.len();
        self.stats.invalidated_embeddings += outcome.invalidated_embeddings;
        self.stats.invalidated_predictions += outcome.invalidated_predictions;
        self.sync_stats();
        if obs::enabled() {
            obs::add("serve.ingest.dirty_nodes", outcome.dirty_nodes as u64);
            obs::add(
                "serve.cache.embedding.invalidations",
                outcome.invalidated_embeddings,
            );
            obs::add(
                "serve.cache.prediction.invalidations",
                outcome.invalidated_predictions,
            );
        }
        Ok(())
    }

    fn flush_caches(&mut self) {
        self.predictions.clear();
        self.embeddings.clear();
        self.stats.flushes += 1;
        if obs::enabled() {
            obs::add("serve.cache.flushes", 1);
        }
    }

    fn sync_stats(&mut self) {
        self.stats.prediction_evictions = self.predictions.evictions;
        self.stats.embedding_hits = self.embeddings.hits();
        self.stats.embedding_misses = self.embeddings.misses();
        self.stats.embedding_evictions = self.embeddings.evictions();
    }

    /// Publish cache counters and hit-rate gauges through `relgraph-obs`
    /// (`serve.cache.*`, surfaced in run reports as the schema-version-2
    /// `cache` section). Publication is idempotent (absolute totals via
    /// [`relgraph_obs::counter_to`]) — call it at any cadence, as long as
    /// one engine owns the `serve.cache.*` names per process.
    pub fn publish_stats(&self) {
        self.stats.publish();
    }

    /// Cumulative cache statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The database being served (append via [`ingest`](Self::ingest)).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The maintained graph.
    pub fn graph(&self) -> &HeteroGraph {
        &self.graph
    }

    /// The graph's table↔node-type mapping.
    pub fn mapping(&self) -> &GraphMapping {
        &self.mapping
    }

    /// The fitted model.
    pub fn model(&self) -> &NodeModel {
        &self.model
    }

    /// A shareable handle to the fitted model (cheap clone; the sharded
    /// tier and tests hand it to [`ServeEngine::from_fitted`]).
    pub fn model_handle(&self) -> Arc<NodeModel> {
        Arc::clone(&self.model)
    }

    /// The down-converted `f32` inference model, when serving in a
    /// reduced precision (`None` in `F64` mode).
    pub fn model32_handle(&self) -> Option<Arc<InferModel32>> {
        self.model32.clone()
    }

    /// The numeric mode this engine serves in.
    pub fn precision(&self) -> Precision {
        self.cfg.precision
    }

    /// Test-split metrics, owned (pairs with [`model_handle`](Self::model_handle)
    /// when stamping out engines via [`from_fitted`](Self::from_fitted)).
    pub fn metrics_owned(&self) -> Vec<(String, f64)> {
        self.metrics.clone()
    }

    /// Node type of the entity table.
    pub fn node_type(&self) -> NodeTypeId {
        self.node_type
    }

    /// Current deploy anchor (latest timestamp in the database).
    pub fn anchor(&self) -> Timestamp {
        self.anchor
    }

    /// Test-split metrics from the fitting run.
    pub fn fit_metrics(&self) -> &[(String, f64)] {
        &self.metrics
    }

    /// The prepared query this engine serves.
    pub fn query(&self) -> &PreparedQuery {
        &self.query
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Entity rows that may legitimately be scored right now.
    pub fn deploy_entities(&self) -> ServeResult<Vec<usize>> {
        Ok(self.query.deploy_entities(&self.db)?)
    }
}

/// Deploy anchor: the latest timestamp in the database.
pub(crate) fn deploy_anchor(db: &Database) -> Timestamp {
    db.time_span().map(|(_, hi)| hi).unwrap_or(0)
}

/// The cache-aware fused scoring path, factored out of [`ServeEngine`] so
/// each shard of the concurrent tier can run it against its *own* cache
/// slice and whatever graph snapshot it currently holds. Cached
/// predictions short-circuit; the rest run through the deduplicating
/// per-node path against the embedding tier. Output order matches input
/// order; duplicate rows are computed once.
///
/// Batch composition never changes a value: `predict_nodes` evaluates each
/// node as a pure function of `(type, node, level, anchor)`, which is why
/// any partitioning of a request stream across shards — each with its own
/// caches — stays bit-identical to a single engine scoring the same rows.
#[allow(clippy::too_many_arguments)]
pub fn predict_batch_cached(
    model: &NodeModel,
    graph: &HeteroGraph,
    node_type: NodeTypeId,
    anchor: Timestamp,
    rows: &[usize],
    predictions: &mut Lru<usize, f64>,
    embeddings: &mut dyn EmbeddingStore,
    stats: &mut CacheStats,
) -> Vec<f64> {
    let mut out = vec![0.0f64; rows.len()];
    let mut miss_rows: Vec<usize> = Vec::new();
    let mut miss_slot: HashMap<usize, usize> = HashMap::new();
    let mut miss_positions: Vec<(usize, usize)> = Vec::new(); // (out idx, miss idx)
    for (i, &row) in rows.iter().enumerate() {
        if let Some(&p) = predictions.get(&row) {
            stats.prediction_hits += 1;
            out[i] = p;
        } else if let Some(&slot) = miss_slot.get(&row) {
            // Duplicate within the batch: one compute, many answers —
            // still a miss for accounting (nothing was cached).
            stats.prediction_misses += 1;
            miss_positions.push((i, slot));
        } else {
            stats.prediction_misses += 1;
            let slot = miss_rows.len();
            miss_rows.push(row);
            miss_slot.insert(row, slot);
            miss_positions.push((i, slot));
        }
    }
    if !miss_rows.is_empty() {
        let preds = predict_nodes(model, graph, node_type, &miss_rows, anchor, embeddings);
        for (&row, &p) in miss_rows.iter().zip(&preds) {
            predictions.insert(row, p);
        }
        for (i, slot) in miss_positions {
            out[i] = preds[slot];
        }
    }
    out
}

/// The reduced-precision twin of [`predict_batch_cached`]: the same
/// prediction-tier short-circuit and in-batch dedup, with the misses
/// scored by [`predict_nodes_f32`] against a lossy-or-lossless
/// [`EmbeddingStore32`]. The prediction tier stays exact `f64` — only the
/// embedding payloads and the arithmetic are reduced, so cached and
/// recomputed predictions agree bitwise within a mode.
#[allow(clippy::too_many_arguments)]
pub fn predict_batch_cached32(
    model32: &InferModel32,
    graph: &HeteroGraph,
    node_type: NodeTypeId,
    anchor: Timestamp,
    rows: &[usize],
    predictions: &mut Lru<usize, f64>,
    embeddings: &mut dyn EmbeddingStore32,
    stats: &mut CacheStats,
) -> Vec<f64> {
    let mut out = vec![0.0f64; rows.len()];
    let mut miss_rows: Vec<usize> = Vec::new();
    let mut miss_slot: HashMap<usize, usize> = HashMap::new();
    let mut miss_positions: Vec<(usize, usize)> = Vec::new(); // (out idx, miss idx)
    for (i, &row) in rows.iter().enumerate() {
        if let Some(&p) = predictions.get(&row) {
            stats.prediction_hits += 1;
            out[i] = p;
        } else if let Some(&slot) = miss_slot.get(&row) {
            stats.prediction_misses += 1;
            miss_positions.push((i, slot));
        } else {
            stats.prediction_misses += 1;
            let slot = miss_rows.len();
            miss_rows.push(row);
            miss_slot.insert(row, slot);
            miss_positions.push((i, slot));
        }
    }
    if !miss_rows.is_empty() {
        let preds = predict_nodes_f32(model32, graph, node_type, &miss_rows, anchor, embeddings);
        for (&row, &p) in miss_rows.iter().zip(&preds) {
            predictions.insert(row, p);
        }
        for (i, slot) in miss_positions {
            out[i] = preds[slot];
        }
    }
    out
}
