//! The serving engine: a fitted predictive query, a delta-maintained
//! graph, and two cache tiers with precise ingest-driven invalidation.
//!
//! # Why warm and cold predictions are bit-identical
//!
//! A cached hop-ℓ embedding `h_ℓ(v)` is a pure function of
//! `(type, node, level, anchor)` over the graph's current state, and
//! [`relgraph_gnn::predict_nodes`] only ever *reuses* cache entries — it
//! never produces a different value because one exists. So the cache can
//! only be wrong by holding an entry whose inputs changed underneath it.
//! [`ServeEngine::ingest`] closes exactly that hole:
//!
//! 1. **Dirty seeds (distance 0).** After appending a batch and applying
//!    the graph delta, a node is *dirty* if its level-0 input row changed —
//!    its feature row differs bitwise pre/post (z-score statistics shift on
//!    append), it is an endpoint of a new edge (its neighbor list and
//!    windowed degrees changed), or it is itself a new row.
//! 2. **k-hop closure.** `h_ℓ(v)` reads embeddings of nodes up to ℓ hops
//!    from `v`, so a dirty node at distance `d` from `v` can affect
//!    `h_ℓ(v)` only when `ℓ ≥ d`. A BFS over the full adjacency (forward +
//!    reverse edge types make neighbor-of symmetric) labels every node
//!    within `k` hops of a dirty seed with its distance `d`.
//! 3. **Precise eviction.** For each labelled node the engine drops cached
//!    embeddings at levels `d..=k` and, for entity nodes, the tier-1
//!    prediction. Entries at levels `< d` provably kept their inputs and
//!    stay.
//!
//! If the ingest advanced the deploy anchor, *every* entry's anchor input
//! changed (relative-age features, visibility windows), so both tiers are
//! flushed wholesale instead. `tests/serving_equivalence.rs` holds the
//! warm ≡ cold line under randomized ingest schedules.

use std::collections::HashMap;

use relgraph_db2graph::{
    build_graph, update_graph, ConvertOptions, DeltaStats, GraphCursor, GraphMapping,
};
use relgraph_gnn::{predict_nodes, NodeModel};
use relgraph_graph::{FeatureMatrix, HeteroGraph, NodeTypeId};
use relgraph_obs as obs;
use relgraph_pq::{ExecConfig, PreparedQuery};
use relgraph_store::{Database, IngestPolicy, IngestReport, RowBatch, Timestamp, Value};

use crate::cache::{CacheStats, EmbeddingCache, Lru};
use crate::error::{ServeError, ServeResult};

/// Serving knobs: batch bounds and cache capacities.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Most requests fused into one inference batch.
    pub max_batch: usize,
    /// Longest a batch waits for co-travellers after its first request.
    pub batch_deadline: std::time::Duration,
    /// Capacity of the final-prediction tier (entries).
    pub prediction_cache: usize,
    /// Capacity of the node-embedding tier (entries).
    pub embedding_cache: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            batch_deadline: std::time::Duration::from_millis(5),
            prediction_cache: 4096,
            embedding_cache: 65536,
        }
    }
}

/// What one [`ServeEngine::ingest`] call did.
#[derive(Debug, Clone, Default)]
pub struct IngestOutcome {
    /// The store's validation/apply report.
    pub report: IngestReport,
    /// The graph delta that was applied.
    pub delta: DeltaStats,
    /// Dirty nodes found (distance-0 seeds plus their k-hop closure).
    pub dirty_nodes: usize,
    /// Embedding entries evicted by precise invalidation.
    pub invalidated_embeddings: u64,
    /// Prediction entries evicted by precise invalidation.
    pub invalidated_predictions: u64,
    /// True when both tiers were flushed wholesale (anchor advanced).
    pub flushed: bool,
    /// True when the delta failed and the graph was rebuilt from scratch.
    pub rebuilt: bool,
}

/// A query fitted once and served many times over a maintained graph.
pub struct ServeEngine {
    db: Database,
    graph: HeteroGraph,
    mapping: GraphMapping,
    cursor: GraphCursor,
    opts: ConvertOptions,
    query: PreparedQuery,
    model: NodeModel,
    node_type: NodeTypeId,
    metrics: Vec<(String, f64)>,
    anchor: Timestamp,
    hops: usize,
    predictions: Lru<usize, f64>,
    embeddings: EmbeddingCache,
    stats: CacheStats,
    cfg: ServeConfig,
}

impl ServeEngine {
    /// Compile the database to a graph, train the query's GNN model on it,
    /// and wrap everything into a warm-startable engine. Fails for queries
    /// that do not compile to a node-level GNN model (see
    /// [`PreparedQuery::fit_node_model`]).
    pub fn fit(
        db: Database,
        query_text: &str,
        exec: &ExecConfig,
        cfg: ServeConfig,
    ) -> ServeResult<Self> {
        let _span = obs::span("serve.fit");
        let opts = ConvertOptions::default();
        let (graph, mapping) = build_graph(&db, &opts)?;
        let query = PreparedQuery::prepare(&db, query_text, exec)?;
        let fitted = query.fit_node_model(&db, &graph, &mapping)?;
        let cursor = GraphCursor::capture(&db);
        let anchor = deploy_anchor(&db);
        let hops = fitted.model.sampler_cfg().fanouts.len();
        Ok(ServeEngine {
            db,
            graph,
            mapping,
            cursor,
            opts,
            query,
            model: fitted.model,
            node_type: fitted.node_type,
            metrics: fitted.metrics,
            anchor,
            hops,
            predictions: Lru::new(cfg.prediction_cache),
            embeddings: EmbeddingCache::new(cfg.embedding_cache),
            stats: CacheStats::default(),
            cfg,
        })
    }

    /// Score entity rows, coalesced into one fused inference pass. Cached
    /// predictions short-circuit; the rest run through the deduplicating
    /// per-node path against the embedding tier. Output order matches
    /// input order; duplicate rows are computed once.
    pub fn predict_batch(&mut self, rows: &[usize]) -> Vec<f64> {
        let t0 = std::time::Instant::now();
        let mut out = vec![0.0f64; rows.len()];
        let mut miss_rows: Vec<usize> = Vec::new();
        let mut miss_slot: HashMap<usize, usize> = HashMap::new();
        let mut miss_positions: Vec<(usize, usize)> = Vec::new(); // (out idx, miss idx)
        for (i, &row) in rows.iter().enumerate() {
            if let Some(&p) = self.predictions.get(&row) {
                self.stats.prediction_hits += 1;
                out[i] = p;
            } else if let Some(&slot) = miss_slot.get(&row) {
                // Duplicate within the batch: one compute, many answers —
                // still a miss for accounting (nothing was cached).
                self.stats.prediction_misses += 1;
                miss_positions.push((i, slot));
            } else {
                self.stats.prediction_misses += 1;
                let slot = miss_rows.len();
                miss_rows.push(row);
                miss_slot.insert(row, slot);
                miss_positions.push((i, slot));
            }
        }
        if !miss_rows.is_empty() {
            let preds = predict_nodes(
                &self.model,
                &self.graph,
                self.node_type,
                &miss_rows,
                self.anchor,
                &mut self.embeddings,
            );
            for (&row, &p) in miss_rows.iter().zip(&preds) {
                self.predictions.insert(row, p);
            }
            for (i, slot) in miss_positions {
                out[i] = preds[slot];
            }
        }
        self.sync_stats();
        if obs::enabled() {
            obs::add("serve.requests", rows.len() as u64);
            obs::observe("serve.batch.occupancy", rows.len() as f64);
            obs::record_ns("serve.predict", t0.elapsed().as_nanos() as u64);
        }
        out
    }

    /// Score one entity row.
    pub fn predict_row(&mut self, row: usize) -> f64 {
        self.predict_batch(&[row])[0]
    }

    /// Resolve primary-key values to rows and score them as one batch.
    /// Unknown keys get per-request errors; the rest are still fused.
    pub fn predict_batch_keys(&mut self, keys: &[Value]) -> Vec<ServeResult<f64>> {
        let entity_table = self.query.analyzed().entity_table.clone();
        let mut rows: Vec<Option<usize>> = Vec::with_capacity(keys.len());
        {
            let table = match self.db.table(&entity_table) {
                Ok(t) => t,
                Err(e) => {
                    return keys
                        .iter()
                        .map(|_| Err(ServeError::from(e.clone())))
                        .collect()
                }
            };
            for key in keys {
                rows.push(table.row_by_key(key));
            }
        }
        let found: Vec<usize> = rows.iter().filter_map(|r| *r).collect();
        let preds = self.predict_batch(&found);
        let mut it = preds.into_iter();
        keys.iter()
            .zip(rows)
            .map(|(key, row)| match row {
                Some(_) => Ok(it.next().expect("one prediction per resolved row")),
                None => Err(ServeError::UnknownEntity {
                    table: entity_table.clone(),
                    key: key.to_string(),
                }),
            })
            .collect()
    }

    /// Append a validated batch, maintain the graph incrementally, and
    /// invalidate exactly the cache entries the delta can have touched
    /// (module docs spell out the argument). If the delta fails (dangling
    /// reference, schema drift) the engine rebuilds the graph from scratch
    /// and flushes both tiers rather than serving from a poisoned graph.
    pub fn ingest(&mut self, batch: RowBatch, policy: &IngestPolicy) -> ServeResult<IngestOutcome> {
        let _span = obs::span("serve.ingest");
        let pre_lens: Vec<usize> = self.db.tables().iter().map(|t| t.len()).collect();
        let report = self.db.ingest(batch, policy)?;
        let mut outcome = IngestOutcome {
            report,
            ..Default::default()
        };

        // Tables that grew, with their node types and pre-ingest feature
        // matrices (the delta re-featurizes grown tables in full; the
        // bitwise row diff below needs the "before").
        let mut grown: Vec<(usize, NodeTypeId, usize)> = Vec::new();
        for (i, t) in self.db.tables().iter().enumerate() {
            if t.len() > pre_lens[i] {
                let nt = self.mapping.node_type(t.name()).ok_or_else(|| {
                    ServeError::Engine(format!("table `{}` missing from graph mapping", t.name()))
                })?;
                grown.push((i, nt, pre_lens[i]));
            }
        }
        let pre_features: Vec<FeatureMatrix> = grown
            .iter()
            .map(|&(_, nt, _)| self.graph.features(nt).clone())
            .collect();

        match update_graph(
            &self.db,
            &mut self.graph,
            &mut self.mapping,
            &mut self.cursor,
            &self.opts,
        ) {
            Ok(delta) => outcome.delta = delta,
            Err(_) => {
                // The graph may hold a partial delta; rebuild it wholesale.
                let (graph, mapping) = build_graph(&self.db, &self.opts)?;
                self.graph = graph;
                self.mapping = mapping;
                self.cursor = GraphCursor::capture(&self.db);
                self.anchor = deploy_anchor(&self.db);
                self.flush_caches();
                outcome.rebuilt = true;
                outcome.flushed = true;
                return Ok(outcome);
            }
        }

        let new_anchor = deploy_anchor(&self.db);
        if new_anchor != self.anchor {
            // Every cached value took the anchor as an input (age features,
            // visibility windows, seed time): nothing survives.
            self.anchor = new_anchor;
            self.flush_caches();
            outcome.flushed = true;
            return Ok(outcome);
        }

        // Distance-0 dirty seeds: bitwise-changed feature rows, endpoints
        // of new edges, and the new rows themselves.
        let mut dist: HashMap<(usize, usize), usize> = HashMap::new();
        for (&(ti, nt, pre_len), pre) in grown.iter().zip(&pre_features) {
            let post = self.graph.features(nt);
            if pre.dim() != post.dim() {
                for row in 0..post.rows() {
                    dist.insert((nt.0, row), 0);
                }
                continue;
            }
            for row in 0..pre_len.min(post.rows()) {
                let changed = pre
                    .row(row)
                    .iter()
                    .zip(post.row(row))
                    .any(|(a, b)| a.to_bits() != b.to_bits());
                if changed {
                    dist.insert((nt.0, row), 0);
                }
            }
            for row in pre_len..post.rows() {
                dist.insert((nt.0, row), 0);
            }
            let table = &self.db.tables()[ti];
            for fk in table.schema().foreign_keys() {
                let target = self.db.table(&fk.referenced_table)?;
                let target_nt = self.mapping.node_type(target.name()).ok_or_else(|| {
                    ServeError::Engine(format!(
                        "table `{}` missing from graph mapping",
                        target.name()
                    ))
                })?;
                let col = table
                    .column_by_name(&fk.column)
                    .expect("schema guarantees the FK column exists");
                for row in pre_len..table.len() {
                    let key = col.get(row);
                    if key.is_null() {
                        continue;
                    }
                    if let Some(dst) = target.row_by_key(&key) {
                        dist.insert((target_nt.0, dst), 0);
                    }
                }
            }
        }

        // k-hop closure over the full adjacency; `dist` keeps the shortest
        // distance to any dirty seed.
        let mut frontier: Vec<(usize, usize)> = dist.keys().copied().collect();
        for d in 1..=self.hops {
            let mut next = Vec::new();
            for &(ty, node) in &frontier {
                for &et in self.graph.edge_types_from(NodeTypeId(ty)) {
                    let dst_ty = self.graph.edge_type(et).dst.0;
                    let (nbrs, _) = self.graph.neighbor_slices(et, node);
                    for &nbr in nbrs {
                        let key = (dst_ty, nbr as usize);
                        if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(key) {
                            e.insert(d);
                            next.push(key);
                        }
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }

        // Evict embeddings at levels d..=k and predictions of entity nodes.
        let entity_ty = self.node_type.0;
        for (&(ty, node), &d) in &dist {
            for level in d..=self.hops {
                if self.embeddings.invalidate(ty, node, level) {
                    outcome.invalidated_embeddings += 1;
                }
            }
            if ty == entity_ty && self.predictions.remove(&node) {
                outcome.invalidated_predictions += 1;
            }
        }
        outcome.dirty_nodes = dist.len();
        self.stats.invalidated_embeddings += outcome.invalidated_embeddings;
        self.stats.invalidated_predictions += outcome.invalidated_predictions;
        self.sync_stats();
        if obs::enabled() {
            obs::add("serve.ingest.dirty_nodes", outcome.dirty_nodes as u64);
            obs::add(
                "serve.cache.embedding.invalidations",
                outcome.invalidated_embeddings,
            );
            obs::add(
                "serve.cache.prediction.invalidations",
                outcome.invalidated_predictions,
            );
        }
        Ok(outcome)
    }

    fn flush_caches(&mut self) {
        self.predictions.clear();
        self.embeddings.clear();
        self.stats.flushes += 1;
        if obs::enabled() {
            obs::add("serve.cache.flushes", 1);
        }
    }

    fn sync_stats(&mut self) {
        self.stats.prediction_evictions = self.predictions.evictions;
        self.stats.embedding_hits = self.embeddings.hits;
        self.stats.embedding_misses = self.embeddings.misses;
        self.stats.embedding_evictions = self.embeddings.evictions();
    }

    /// Publish cache counters and hit-rate gauges through `relgraph-obs`
    /// (`serve.cache.*`, surfaced in run reports as the schema-version-2
    /// `cache` section). Counters are monotonic, so this emits deltas
    /// against what was last published — call it at any cadence.
    pub fn publish_stats(&self) {
        if !obs::enabled() {
            return;
        }
        let s = &self.stats;
        for (name, value) in [
            ("serve.cache.prediction.hits", s.prediction_hits),
            ("serve.cache.prediction.misses", s.prediction_misses),
            ("serve.cache.prediction.evictions", s.prediction_evictions),
            ("serve.cache.embedding.hits", s.embedding_hits),
            ("serve.cache.embedding.misses", s.embedding_misses),
            ("serve.cache.embedding.evictions", s.embedding_evictions),
        ] {
            let published = obs::counter_value(name);
            obs::add(name, value.saturating_sub(published));
        }
        if let Some(r) = s.prediction_hit_rate() {
            obs::gauge("serve.cache.prediction.hit_rate", r);
        }
        if let Some(r) = s.embedding_hit_rate() {
            obs::gauge("serve.cache.embedding.hit_rate", r);
        }
    }

    /// Cumulative cache statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The database being served (append via [`ingest`](Self::ingest)).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The maintained graph.
    pub fn graph(&self) -> &HeteroGraph {
        &self.graph
    }

    /// The graph's table↔node-type mapping.
    pub fn mapping(&self) -> &GraphMapping {
        &self.mapping
    }

    /// The fitted model.
    pub fn model(&self) -> &NodeModel {
        &self.model
    }

    /// Node type of the entity table.
    pub fn node_type(&self) -> NodeTypeId {
        self.node_type
    }

    /// Current deploy anchor (latest timestamp in the database).
    pub fn anchor(&self) -> Timestamp {
        self.anchor
    }

    /// Test-split metrics from the fitting run.
    pub fn fit_metrics(&self) -> &[(String, f64)] {
        &self.metrics
    }

    /// The prepared query this engine serves.
    pub fn query(&self) -> &PreparedQuery {
        &self.query
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Entity rows that may legitimately be scored right now.
    pub fn deploy_entities(&self) -> ServeResult<Vec<usize>> {
        Ok(self.query.deploy_entities(&self.db)?)
    }
}

/// Deploy anchor: the latest timestamp in the database.
fn deploy_anchor(db: &Database) -> Timestamp {
    db.time_span().map(|(_, hi)| hi).unwrap_or(0)
}
