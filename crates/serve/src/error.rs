//! Serving errors: every layer underneath (store, conversion, query) plus
//! the engine's own request-level failures.

use relgraph_db2graph::ConvertError;
use relgraph_pq::PqError;
use relgraph_store::StoreError;

/// Anything the serving engine can fail with.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Underlying store error (ingest, table lookup).
    Store(StoreError),
    /// Graph construction/maintenance error.
    Convert(ConvertError),
    /// Query preparation or model fitting error.
    Pq(PqError),
    /// A request named an entity key the entity table does not hold.
    UnknownEntity {
        /// The entity table searched.
        table: String,
        /// The offending primary-key value, rendered.
        key: String,
    },
    /// Engine-internal invariant violation (mapping drift and the like).
    Engine(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Store(e) => write!(f, "store error: {e}"),
            ServeError::Convert(e) => write!(f, "graph error: {e}"),
            ServeError::Pq(e) => write!(f, "query error: {e}"),
            ServeError::UnknownEntity { table, key } => {
                write!(f, "unknown entity `{key}` in table `{table}`")
            }
            ServeError::Engine(msg) => write!(f, "serving engine error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

impl From<ConvertError> for ServeError {
    fn from(e: ConvertError) -> Self {
        ServeError::Convert(e)
    }
}

impl From<PqError> for ServeError {
    fn from(e: PqError) -> Self {
        ServeError::Pq(e)
    }
}

/// Convenience alias.
pub type ServeResult<T> = Result<T, ServeError>;
