//! Warm-restart persistence for the serving tier: save a fitted engine's
//! graph and model snapshots into a data directory, and boot a new engine
//! from them in seconds instead of re-featurizing and re-training.
//!
//! Two artifacts live under the data directory's `snapshots/` folder:
//!
//! * `graph.snap` — the compiled [`HeteroGraph`] + [`GraphMapping`] +
//!   [`GraphCursor`], written by `relgraph-db2graph`'s
//!   [`relgraph_db2graph::save_graph`];
//! * `model.snap` — the query text, entity node type, fit metrics and the
//!   trained model's [`ModelState`], framed with the store's checksummed
//!   blob format under magic `RGMS` (DESIGN.md §14.6).
//!
//! The warm boot path ([`warm_engine`] / [`warm_sharded`]) loads both,
//! catches the graph up with [`update_graph`] for any rows the database
//! ingested after the snapshots were taken, re-prepares the query against
//! the recovered database, and rebuilds the model from its state.
//! `tests/recovery_equivalence.rs` holds the line that a warm-booted
//! engine's predictions are byte-for-byte identical to a cold
//! fit-from-scratch at shard counts 1 and 4.

use std::path::Path;
use std::sync::Arc;

use relgraph_db2graph::{
    load_graph, save_graph, update_graph, ConvertOptions, DeltaStats, GraphCursor, GraphMapping,
};
use relgraph_gnn::{
    Aggregation, GnnConfig, ModelState, NodeModel, Precision, TaskKind, TrainReport,
};
use relgraph_graph::{EdgeTypeMeta, HeteroGraph, NodeTypeId, SamplerConfig};
use relgraph_nn::Activation;
use relgraph_obs as obs;
use relgraph_pq::{ExecConfig, PreparedQuery};
use relgraph_store::persist::format::{read_blob, write_blob, ByteReader, ByteWriter};
use relgraph_store::{
    BaseColumnSelection, DataDir, Database, PartialLoadReport, RecoveryReport, StoreError,
};
use relgraph_tensor::Tensor;

use crate::engine::{ServeConfig, ServeEngine};
use crate::error::{ServeError, ServeResult};
use crate::sharded::ShardedEngine;

/// Magic prefix of model snapshot files (`model.snap`).
pub const MAGIC_MODEL: &[u8; 4] = b"RGMS";
/// Body-format version of `model.snap`. Version 1 (implicit — the body
/// began directly with the query text) predates the serving-precision
/// field; version 2 prefixes the body with this version number and the
/// [`Precision`] tag so warm restarts serve in the mode the snapshot was
/// saved under. Version-1 files load as a structured
/// [`StoreError::UnsupportedVersion`], never a panic or a misparse.
pub const MODEL_FORMAT_VERSION: u16 = 2;
/// File name of the graph snapshot inside a snapshots directory.
pub const GRAPH_SNAPSHOT_FILE: &str = "graph.snap";
/// File name of the model snapshot inside a snapshots directory.
pub const MODEL_SNAPSHOT_FILE: &str = "model.snap";

/// Everything `model.snap` stores: the query being served, where its
/// entity table sits in the graph, the fit metrics, and the trained
/// model's full state.
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    /// The predictive-query text the engine was fitted on.
    pub query_text: String,
    /// Node type of the query's entity table.
    pub node_type: NodeTypeId,
    /// Named test-split metrics from the fitting run.
    pub metrics: Vec<(String, f64)>,
    /// The trained model, flattened.
    pub state: ModelState,
    /// The serving precision the engine ran under when saved; warm boots
    /// re-serve in the same mode so warm ≡ cold holds per mode.
    pub precision: Precision,
}

/// What a warm boot did.
#[derive(Debug, Clone, Default)]
pub struct WarmBootReport {
    /// The graph delta applied to catch the snapshot up with rows the
    /// database ingested after the snapshot was taken.
    pub catch_up: DeltaStats,
    /// Named test-split metrics restored from the model snapshot.
    pub metrics: Vec<(String, f64)>,
    /// The stored query text.
    pub query_text: String,
}

fn corrupt(path: &Path, message: impl Into<String>) -> ServeError {
    ServeError::Store(StoreError::Corrupt {
        file: path.display().to_string(),
        message: message.into(),
    })
}

fn put_tensor(w: &mut ByteWriter, t: &Tensor) {
    let (rows, cols) = t.shape();
    w.put_u64(rows as u64);
    w.put_u64(cols as u64);
    for &v in t.data() {
        w.put_f64(v);
    }
}

fn take_tensor(r: &mut ByteReader<'_>) -> ServeResult<Tensor> {
    let rows = r.take_u64()? as usize;
    let cols = r.take_u64()? as usize;
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        data.push(r.take_f64()?);
    }
    Ok(Tensor::from_vec(rows, cols, data))
}

fn put_activation(w: &mut ByteWriter, a: Activation) {
    match a {
        Activation::Identity => w.put_u8(0),
        Activation::Relu => w.put_u8(1),
        Activation::LeakyRelu(slope) => {
            w.put_u8(2);
            w.put_f64(slope);
        }
        Activation::Tanh => w.put_u8(3),
        Activation::Sigmoid => w.put_u8(4),
    }
}

fn take_activation(r: &mut ByteReader<'_>, path: &Path) -> ServeResult<Activation> {
    Ok(match r.take_u8()? {
        0 => Activation::Identity,
        1 => Activation::Relu,
        2 => Activation::LeakyRelu(r.take_f64()?),
        3 => Activation::Tanh,
        4 => Activation::Sigmoid,
        t => return Err(corrupt(path, format!("unknown activation tag {t}"))),
    })
}

/// Serialize a [`ModelSnapshot`] into `path` (conventionally
/// `model.snap`). Returns the file size in bytes.
pub fn save_model(path: &Path, snap: &ModelSnapshot) -> ServeResult<u64> {
    let _span = obs::span("snapshot.model.save");
    let mut w = ByteWriter::new();
    w.put_u16(MODEL_FORMAT_VERSION);
    w.put_u8(snap.precision.tag());
    w.put_str(&snap.query_text);
    w.put_u32(snap.node_type.0 as u32);
    w.put_u32(snap.metrics.len() as u32);
    for (name, v) in &snap.metrics {
        w.put_str(name);
        w.put_f64(*v);
    }

    let s = &snap.state;
    w.put_u8(match s.task {
        TaskKind::Binary => 0,
        TaskKind::Regression => 1,
    });
    w.put_f64(s.label_mean);
    w.put_f64(s.label_std);

    w.put_u32(s.sampler_cfg.fanouts.len() as u32);
    for &f in &s.sampler_cfg.fanouts {
        w.put_u64(f as u64);
    }
    w.put_u8(s.sampler_cfg.temporal as u8);
    w.put_u8(s.sampler_cfg.degree_features as u8);

    w.put_u64(s.gnn_config.hidden_dim as u64);
    w.put_u64(s.gnn_config.layers as u64);
    w.put_u64(s.gnn_config.out_dim as u64);
    put_activation(&mut w, s.gnn_config.activation);
    w.put_u8(match s.gnn_config.aggregation {
        Aggregation::Mean => 0,
        Aggregation::Sum => 1,
        Aggregation::Max => 2,
    });
    w.put_u64(s.gnn_config.seed);

    w.put_u32(s.in_dims.len() as u32);
    for &d in &s.in_dims {
        w.put_u64(d as u64);
    }
    w.put_u32(s.seed_type as u32);
    w.put_u32(s.edge_types.len() as u32);
    for et in &s.edge_types {
        w.put_str(&et.name);
        w.put_u32(et.src.0 as u32);
        w.put_u32(et.dst.0 as u32);
    }

    w.put_u32(s.params.len() as u32);
    for t in &s.params {
        put_tensor(&mut w, t);
    }

    w.put_u64(s.report.epochs_run as u64);
    w.put_f64(s.report.best_val_loss);
    w.put_u32(s.report.train_losses.len() as u32);
    for &l in &s.report.train_losses {
        w.put_f64(l);
    }
    w.put_u32(s.report.val_losses.len() as u32);
    for &l in &s.report.val_losses {
        w.put_f64(l);
    }

    let bytes = write_blob(path, MAGIC_MODEL, &w.into_bytes())?;
    obs::add("snapshot.model.bytes", bytes);
    Ok(bytes)
}

/// Load a snapshot written by [`save_model`].
pub fn load_model(path: &Path) -> ServeResult<ModelSnapshot> {
    let _span = obs::span("snapshot.model.load");
    let body = read_blob(path, MAGIC_MODEL)?;
    let name = path.display().to_string();
    let mut r = ByteReader::new(&body, &name);

    // Version-1 bodies began with the query text's u32 length, so this
    // u16 reads its low bytes — any realistic query length differs from
    // the version number, and the mismatch surfaces as a structured
    // version error rather than a misparse deeper in.
    let version = r.take_u16()?;
    if version != MODEL_FORMAT_VERSION {
        return Err(ServeError::Store(StoreError::UnsupportedVersion {
            file: name,
            found: version as u32,
            supported: MODEL_FORMAT_VERSION as u32,
        }));
    }
    let precision =
        Precision::from_tag(r.take_u8()?).ok_or_else(|| corrupt(path, "unknown precision tag"))?;
    let query_text = r.take_str()?;
    let node_type = NodeTypeId(r.take_u32()? as usize);
    let n = r.take_u32()? as usize;
    let mut metrics = Vec::with_capacity(n);
    for _ in 0..n {
        let metric = r.take_str()?;
        metrics.push((metric, r.take_f64()?));
    }

    let task = match r.take_u8()? {
        0 => TaskKind::Binary,
        1 => TaskKind::Regression,
        t => return Err(corrupt(path, format!("unknown task tag {t}"))),
    };
    let label_mean = r.take_f64()?;
    let label_std = r.take_f64()?;

    let n = r.take_u32()? as usize;
    let mut fanouts = Vec::with_capacity(n);
    for _ in 0..n {
        fanouts.push(r.take_u64()? as usize);
    }
    let temporal = r.take_u8()? != 0;
    let degree_features = r.take_u8()? != 0;
    let mut sampler_cfg = SamplerConfig::new(fanouts);
    if !temporal {
        sampler_cfg = sampler_cfg.leaky();
    }
    if !degree_features {
        sampler_cfg = sampler_cfg.without_degree_features();
    }

    let gnn_config = GnnConfig {
        hidden_dim: r.take_u64()? as usize,
        layers: r.take_u64()? as usize,
        out_dim: r.take_u64()? as usize,
        activation: take_activation(&mut r, path)?,
        aggregation: match r.take_u8()? {
            0 => Aggregation::Mean,
            1 => Aggregation::Sum,
            2 => Aggregation::Max,
            t => return Err(corrupt(path, format!("unknown aggregation tag {t}"))),
        },
        seed: r.take_u64()?,
    };

    let n = r.take_u32()? as usize;
    let mut in_dims = Vec::with_capacity(n);
    for _ in 0..n {
        in_dims.push(r.take_u64()? as usize);
    }
    let seed_type = r.take_u32()? as usize;
    let n = r.take_u32()? as usize;
    let mut edge_types = Vec::with_capacity(n);
    for _ in 0..n {
        edge_types.push(EdgeTypeMeta {
            name: r.take_str()?,
            src: NodeTypeId(r.take_u32()? as usize),
            dst: NodeTypeId(r.take_u32()? as usize),
        });
    }

    let n = r.take_u32()? as usize;
    let mut params = Vec::with_capacity(n);
    for _ in 0..n {
        params.push(take_tensor(&mut r)?);
    }

    let epochs_run = r.take_u64()? as usize;
    let best_val_loss = r.take_f64()?;
    let n = r.take_u32()? as usize;
    let mut train_losses = Vec::with_capacity(n);
    for _ in 0..n {
        train_losses.push(r.take_f64()?);
    }
    let n = r.take_u32()? as usize;
    let mut val_losses = Vec::with_capacity(n);
    for _ in 0..n {
        val_losses.push(r.take_f64()?);
    }
    if !r.is_empty() {
        return Err(corrupt(
            path,
            format!("{} trailing byte(s) after snapshot body", r.remaining()),
        ));
    }

    Ok(ModelSnapshot {
        query_text,
        node_type,
        metrics,
        state: ModelState {
            task,
            label_mean,
            label_std,
            sampler_cfg,
            gnn_config,
            in_dims,
            seed_type,
            edge_types,
            params,
            report: TrainReport {
                epochs_run,
                best_val_loss,
                train_losses,
                val_losses,
            },
        },
        precision,
    })
}

/// Write the graph-side warm-start state (`graph.snap`) into `dir`,
/// creating it as needed. Returns bytes written.
pub fn save_graph_state(
    dir: &Path,
    graph: &HeteroGraph,
    mapping: &GraphMapping,
    cursor: &GraphCursor,
) -> ServeResult<u64> {
    std::fs::create_dir_all(dir)
        .map_err(|e| ServeError::Store(StoreError::Io(format!("{}: {e}", dir.display()))))?;
    Ok(save_graph(
        &dir.join(GRAPH_SNAPSHOT_FILE),
        graph,
        mapping,
        cursor,
    )?)
}

/// Persist a [`ServeEngine`]'s warm-start state (graph + model snapshots)
/// into `dir`. `query_text` is stored alongside the model so a restart can
/// re-prepare the query. Returns total bytes written.
pub fn save_engine(dir: &Path, engine: &ServeEngine, query_text: &str) -> ServeResult<u64> {
    // The engine keeps its cursor equal to the database's current row
    // counts after every successful operation, so re-capturing here is
    // exact.
    let cursor = GraphCursor::capture(engine.db());
    let graph_bytes = save_graph_state(dir, engine.graph(), engine.mapping(), &cursor)?;
    let model_bytes = save_model(
        &dir.join(MODEL_SNAPSHOT_FILE),
        &ModelSnapshot {
            query_text: query_text.to_string(),
            node_type: engine.node_type(),
            metrics: engine.metrics_owned(),
            state: engine.model().export(),
            precision: engine.precision(),
        },
    )?;
    Ok(graph_bytes + model_bytes)
}

/// Load the warm-start state from `dir` and catch the graph up with any
/// rows `db` holds beyond the snapshot's cursor. Returns everything needed
/// to assemble an engine, plus the boot report.
#[allow(clippy::type_complexity)]
fn load_parts(
    dir: &Path,
    db: &Database,
    exec: &ExecConfig,
) -> ServeResult<(
    HeteroGraph,
    GraphMapping,
    PreparedQuery,
    Arc<NodeModel>,
    ModelSnapshot,
    WarmBootReport,
)> {
    let _span = obs::span("serve.warm_boot");
    let (mut graph, mut mapping, mut cursor) = load_graph(&dir.join(GRAPH_SNAPSHOT_FILE))?;
    let snap = load_model(&dir.join(MODEL_SNAPSHOT_FILE))?;
    let catch_up = update_graph(
        db,
        &mut graph,
        &mut mapping,
        &mut cursor,
        &ConvertOptions::default(),
    )?;
    let query = PreparedQuery::prepare(db, &snap.query_text, exec)?;
    let model = NodeModel::from_state(snap.state.clone())
        .map_err(|e| ServeError::Engine(format!("model snapshot rejected: {e}")))?;
    let report = WarmBootReport {
        catch_up,
        metrics: snap.metrics.clone(),
        query_text: snap.query_text.clone(),
    };
    if obs::enabled() {
        obs::add("serve.warm_boots", 1);
        obs::add("serve.warm_boot.catch_up_nodes", catch_up.new_nodes as u64);
        obs::add("serve.warm_boot.catch_up_edges", catch_up.new_edges as u64);
    }
    Ok((graph, mapping, query, Arc::new(model), snap, report))
}

/// Boot a [`ServeEngine`] warm from the snapshots in `dir`, serving `db`
/// (typically just recovered via
/// [`DataDir::open`](relgraph_store::DataDir::open)). No featurization, no
/// training — predictions are byte-for-byte what a cold
/// [`ServeEngine::fit`] on the same database would produce.
///
/// The snapshot's stored serving precision overrides `cfg.precision`: a
/// warm boot must agree bitwise with the engine that was saved, which it
/// can only do in the same numeric mode.
pub fn warm_engine(
    dir: &Path,
    db: Database,
    exec: &ExecConfig,
    mut cfg: ServeConfig,
) -> ServeResult<(ServeEngine, WarmBootReport)> {
    let (graph, mapping, query, model, snap, report) = load_parts(dir, &db, exec)?;
    cfg.precision = snap.precision;
    let engine = ServeEngine::from_fitted_graph(
        db,
        graph,
        mapping,
        query,
        model,
        snap.node_type,
        snap.metrics,
        cfg,
    )?;
    Ok((engine, report))
}

/// Everything [`warm_sharded_partial`] hands back: the opened data
/// directory, the booted engine, and the three reports describing what the
/// boot did.
pub struct PartialWarmBoot {
    /// The data-directory handle (WAL replayed, torn tail truncated).
    pub data_dir: DataDir,
    /// The booted serving tier.
    pub engine: ShardedEngine,
    /// The warm-boot report (catch-up delta, restored metrics, query).
    pub report: WarmBootReport,
    /// What WAL recovery did during the open.
    pub recovery: RecoveryReport,
    /// How much of the base load was skipped.
    pub partial: PartialLoadReport,
}

/// Boot a [`ShardedEngine`] warm over a **partially materialized** base:
/// open `root` with [`DataDir::open_columns`] instead of a full
/// [`DataDir::open`], loading only each table's key/FK/time columns. This
/// cuts warm-boot time and resident memory on wide tables, and the served
/// predictions are still bitwise-identical to a fully-loaded warm boot
/// (`tests/recovery_equivalence.rs`), because everything inference reads
/// comes from the graph snapshot — node features are baked into
/// `graph.snap`, so the database only backs key lookup, FK validation and
/// temporal anchoring.
///
/// The graph snapshot is loaded *first*: its cursor provides the
/// per-table expected row counts, so any table whose base grew beyond the
/// snapshot (e.g. a compaction folded post-snapshot ingests into the
/// base) is loaded in full and re-featurized by catch-up; tables with
/// unapplied WAL records are likewise forced full by `open_columns`
/// itself. Tables left partial refuse further ingest
/// ([`StoreError::PartiallyLoaded`]) rather than serving fabricated
/// NULLs. The stored serving precision overrides `cfg.precision`, as in
/// [`warm_engine`].
pub fn warm_sharded_partial(
    root: &Path,
    exec: &ExecConfig,
    mut cfg: ServeConfig,
    shards: usize,
) -> ServeResult<PartialWarmBoot> {
    let _span = obs::span("serve.warm_boot");
    let snaps = DataDir::snapshots_path(root);
    let (mut graph, mut mapping, mut cursor) = load_graph(&snaps.join(GRAPH_SNAPSHOT_FILE))?;
    let snap = load_model(&snaps.join(MODEL_SNAPSHOT_FILE))?;
    // Keys and time only: features ride in `graph.snap`, and the two
    // safety rules inside `open_columns` (WAL-touched and unexpectedly
    // grown tables load fully) keep every table the catch-up delta will
    // re-featurize fully materialized.
    let selection = BaseColumnSelection {
        expected_rows: cursor.counts().to_vec(),
        ..Default::default()
    };
    let (data_dir, db, recovery, partial) = DataDir::open_columns(root, &selection)?;
    let catch_up = update_graph(
        &db,
        &mut graph,
        &mut mapping,
        &mut cursor,
        &ConvertOptions::default(),
    )?;
    let query = PreparedQuery::prepare(&db, &snap.query_text, exec)?;
    let model = NodeModel::from_state(snap.state.clone())
        .map_err(|e| ServeError::Engine(format!("model snapshot rejected: {e}")))?;
    let report = WarmBootReport {
        catch_up,
        metrics: snap.metrics.clone(),
        query_text: snap.query_text.clone(),
    };
    if obs::enabled() {
        obs::add("serve.warm_boots", 1);
        obs::add("serve.warm_boot.catch_up_nodes", catch_up.new_nodes as u64);
        obs::add("serve.warm_boot.catch_up_edges", catch_up.new_edges as u64);
    }
    cfg.precision = snap.precision;
    let engine = ShardedEngine::from_fitted_graph(
        db,
        graph,
        mapping,
        query,
        Arc::new(model),
        snap.node_type,
        snap.metrics,
        cfg,
        shards,
    )?;
    Ok(PartialWarmBoot {
        data_dir,
        engine,
        report,
        recovery,
        partial,
    })
}

/// Boot a [`ShardedEngine`] warm from the snapshots in `dir` (see
/// [`warm_engine`]). Any shard count serves bit-identically. The stored
/// serving precision overrides `cfg.precision`, as in [`warm_engine`].
pub fn warm_sharded(
    dir: &Path,
    db: Database,
    exec: &ExecConfig,
    mut cfg: ServeConfig,
    shards: usize,
) -> ServeResult<(ShardedEngine, WarmBootReport)> {
    let (graph, mapping, query, model, snap, report) = load_parts(dir, &db, exec)?;
    cfg.precision = snap.precision;
    let engine = ShardedEngine::from_fitted_graph(
        db,
        graph,
        mapping,
        query,
        model,
        snap.node_type,
        snap.metrics,
        cfg,
        shards,
    )?;
    Ok((engine, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgraph_datagen::{generate_ecommerce, EcommerceConfig};
    use std::path::PathBuf;

    const QUERY: &str = "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id";

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("relgraph-servesnap-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_db() -> Database {
        generate_ecommerce(&EcommerceConfig {
            customers: 60,
            seed: 11,
            ..Default::default()
        })
        .unwrap()
    }

    fn exec() -> ExecConfig {
        ExecConfig {
            epochs: 2,
            hidden_dim: 8,
            fanouts: vec![4, 4],
            ..Default::default()
        }
    }

    #[test]
    fn warm_boot_predicts_bit_identically() {
        let db = small_db();
        let mut cold =
            ServeEngine::fit(db.clone(), QUERY, &exec(), ServeConfig::default()).unwrap();
        let dir = tmp("warm-bit-identical");
        save_engine(&dir, &cold, QUERY).unwrap();

        let (mut warm, report) = warm_engine(&dir, db, &exec(), ServeConfig::default()).unwrap();
        assert!(report.catch_up.is_empty());
        assert_eq!(report.query_text, QUERY);
        let rows = cold.deploy_entities().unwrap();
        let a = cold.predict_batch(&rows);
        let b = warm.predict_batch(&rows);
        assert_eq!(
            a.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|p| p.to_bits()).collect::<Vec<_>>()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn model_snapshot_round_trip() {
        let db = small_db();
        let engine = ServeEngine::fit(db, QUERY, &exec(), ServeConfig::default()).unwrap();
        let dir = tmp("model-round-trip");
        let path = dir.join(MODEL_SNAPSHOT_FILE);
        let snap = ModelSnapshot {
            query_text: QUERY.to_string(),
            node_type: engine.node_type(),
            metrics: engine.metrics_owned(),
            state: engine.model().export(),
            precision: Precision::Q8,
        };
        save_model(&path, &snap).unwrap();
        let back = load_model(&path).unwrap();
        assert_eq!(back.query_text, snap.query_text);
        assert_eq!(back.node_type, snap.node_type);
        assert_eq!(back.metrics, snap.metrics);
        assert_eq!(back.precision, Precision::Q8);
        assert_eq!(back.state.params.len(), snap.state.params.len());
        for (a, b) in back.state.params.iter().zip(&snap.state.params) {
            assert_eq!(a.shape(), b.shape());
            let same = a
                .data()
                .iter()
                .zip(b.data())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "parameter tensors must round-trip bit-exactly");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_model_snapshot_is_structured_error() {
        let db = small_db();
        let engine = ServeEngine::fit(db, QUERY, &exec(), ServeConfig::default()).unwrap();
        let dir = tmp("model-corrupt");
        let path = dir.join(MODEL_SNAPSHOT_FILE);
        save_model(
            &path,
            &ModelSnapshot {
                query_text: QUERY.to_string(),
                node_type: engine.node_type(),
                metrics: engine.metrics_owned(),
                state: engine.model().export(),
                precision: Precision::F64,
            },
        )
        .unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        match load_model(&path) {
            Err(ServeError::Store(StoreError::Corrupt { .. })) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version1_model_snapshot_is_structured_error() {
        // Hand-build a version-1 body (it began directly with the query
        // text, no version/precision prefix) inside a valid checksummed
        // blob frame: the loader must report the version mismatch as a
        // structured error, not panic or misparse.
        let dir = tmp("model-v1-corpus");
        let path = dir.join(MODEL_SNAPSHOT_FILE);
        let mut w = ByteWriter::new();
        w.put_str(QUERY); // v1 layout: u32 text length first
        w.put_u32(0); // node type (never reached)
        write_blob(&path, MAGIC_MODEL, &w.into_bytes()).unwrap();
        match load_model(&path) {
            Err(ServeError::Store(StoreError::UnsupportedVersion {
                found, supported, ..
            })) => {
                assert_eq!(supported, MODEL_FORMAT_VERSION as u32);
                assert_ne!(found, MODEL_FORMAT_VERSION as u32);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
