//! Work-stealing job routing for the sharded serving tier.
//!
//! # Why not pure hash routing
//!
//! Hash routing (`shard_of_row`) balances *keys*, not *load*: a client
//! hammering one hot entity maps every request to the same shard, and
//! the rest of the tier idles while that shard serializes the stream.
//! An [`InboxSet`] keeps the hash as the *preferred* placement — so a
//! shard's L1 keeps seeing the same keys and stays warm — but lets any
//! idle shard steal queued jobs, bounding the damage a hot key can do
//! to tier throughput.
//!
//! # Determinism
//!
//! Stealing never changes results. Every shard scores against the same
//! published snapshot epoch, embeddings are pure functions of
//! `(type, node, level, anchor)` at that epoch, and invalidation plans
//! broadcast to all shards — so *which* shard computes a job is
//! unobservable in the reply bits (`crates/serve/tests/sharded.rs`
//! asserts this under forced stealing). Routing remains load balancing,
//! not correctness, exactly as before.
//!
//! # Shape
//!
//! One bounded inbox per shard (a `Mutex<VecDeque>` with a condvar —
//! jobs are milliseconds of inference work, so a lock per transfer is
//! noise). Producers push to the hashed inbox, spilling to the
//! least-loaded one when the target is full (`serve.steal.spills`).
//! A worker drains its own inbox first; when empty it sweeps the others
//! with `try_lock` and steals a batch (`serve.steal.steals`); only when
//! the whole set looks empty does it park on its own condvar — with a
//! short timeout when stealing is possible, so a worker never sleeps
//! through a neighbor's backlog for long.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// How long an idle worker parks before re-sweeping for steals when
/// other inboxes exist. Bounds steal latency; irrelevant when `n == 1`
/// (no steal targets — the worker parks until notified).
const STEAL_PARK: Duration = Duration::from_micros(200);

/// One shard's bounded inbox.
struct Inbox<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    /// Mirror of `queue.len()`, maintained under the queue lock, so
    /// producers pick spill targets and workers pick steal victims
    /// without touching the lock.
    depth: AtomicUsize,
}

impl<T> Inbox<T> {
    fn new() -> Self {
        Inbox {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            depth: AtomicUsize::new(0),
        }
    }
}

/// One drained batch and how it was obtained.
pub struct Drain<T> {
    /// The jobs, oldest first.
    pub items: Vec<T>,
    /// True when taken from another shard's inbox.
    pub stolen: bool,
    /// True when the drain filled to `max_batch` with work left behind —
    /// the saturation signal behind `serve.batcher.full_drains`.
    pub saturated: bool,
}

/// A set of per-shard bounded inboxes with steal-on-idle draining.
pub struct InboxSet<T> {
    inboxes: Vec<Inbox<T>>,
    cap: usize,
    closed: AtomicBool,
    steals: AtomicU64,
    spills: AtomicU64,
}

impl<T> InboxSet<T> {
    /// `n` inboxes, each preferring at most `cap` queued jobs (pushes
    /// beyond that spill to the least-loaded inbox; the bound is a
    /// routing pressure valve, not a hard limit — a spill target over
    /// `cap` still accepts, so pushes never block or fail).
    pub fn new(n: usize, cap: usize) -> Self {
        InboxSet {
            inboxes: (0..n.max(1)).map(|_| Inbox::new()).collect(),
            cap: cap.max(1),
            closed: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            spills: AtomicU64::new(0),
        }
    }

    /// Number of inboxes.
    pub fn len(&self) -> usize {
        self.inboxes.len()
    }

    /// True when the set has no inboxes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.inboxes.is_empty()
    }

    /// Queued-job depth per inbox.
    pub fn depths(&self) -> Vec<usize> {
        self.inboxes
            .iter()
            .map(|ib| ib.depth.load(Ordering::Relaxed))
            .collect()
    }

    /// Jobs taken from a non-preferred inbox by an idle worker.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Pushes redirected off a full preferred inbox.
    pub fn spills(&self) -> u64 {
        self.spills.load(Ordering::Relaxed)
    }

    /// Enqueue `item` on inbox `target` (the hash-preferred shard),
    /// spilling to the least-loaded inbox when `target` is at capacity.
    pub fn push(&self, target: usize, item: T) {
        let mut dest = target % self.inboxes.len();
        if self.inboxes.len() > 1 && self.inboxes[dest].depth.load(Ordering::Relaxed) >= self.cap {
            // Preferred inbox is backed up: spill to the shallowest.
            let least = self
                .inboxes
                .iter()
                .enumerate()
                .min_by_key(|(_, ib)| ib.depth.load(Ordering::Relaxed))
                .map(|(i, _)| i)
                .unwrap_or(dest);
            if least != dest {
                dest = least;
                self.spills.fetch_add(1, Ordering::Relaxed);
            }
        }
        let ib = &self.inboxes[dest];
        let mut q = ib.queue.lock().unwrap_or_else(|p| p.into_inner());
        q.push_back(item);
        ib.depth.store(q.len(), Ordering::Relaxed);
        drop(q);
        ib.ready.notify_one();
    }

    /// Drain up to `max_batch` jobs for worker `own`: its own inbox
    /// first, then a steal sweep, then park. Returns `None` only after
    /// [`close`](Self::close) *and* every inbox has fully drained — no
    /// accepted job is ever dropped on shutdown.
    pub fn pop_batch(&self, own: usize, max_batch: usize) -> Option<Drain<T>> {
        let own = own % self.inboxes.len();
        let max_batch = max_batch.max(1);
        loop {
            // 1. Own inbox (blocking lock: it's ours, contention is rare).
            if let Some(drain) = self.take(own, own, max_batch) {
                return Some(drain);
            }
            // 2. Steal sweep over the other inboxes, own successor first
            //    so victims rotate, try_lock so a busy victim is skipped.
            let n = self.inboxes.len();
            for off in 1..n {
                let victim = (own + off) % n;
                if self.inboxes[victim].depth.load(Ordering::Relaxed) == 0 {
                    continue;
                }
                if let Some(drain) = self.try_take(victim, own, max_batch) {
                    return Some(drain);
                }
            }
            // 3. Shutdown: closed and verifiably empty everywhere.
            if self.closed.load(Ordering::Acquire) {
                let all_empty = self.inboxes.iter().all(|ib| {
                    ib.queue
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .is_empty()
                });
                if all_empty {
                    return None;
                }
                continue;
            }
            // 4. Park on our own condvar. Re-check under the lock so a
            //    push or close between the sweep and here is not lost.
            let ib = &self.inboxes[own];
            let q = ib.queue.lock().unwrap_or_else(|p| p.into_inner());
            if !q.is_empty() || self.closed.load(Ordering::Acquire) {
                continue;
            }
            if n > 1 {
                drop(ib.ready.wait_timeout(q, STEAL_PARK));
            } else {
                drop(ib.ready.wait(q));
            }
        }
    }

    /// Close the set: workers drain what remains, then `pop_batch`
    /// returns `None`. Idempotent.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        for ib in &self.inboxes {
            // Taking the lock orders this notify after any in-progress
            // park decision, so no worker sleeps through shutdown.
            let _g = ib.queue.lock().unwrap_or_else(|p| p.into_inner());
            ib.ready.notify_all();
        }
    }

    /// Drain inbox `from` for worker `own` with a blocking lock.
    fn take(&self, from: usize, own: usize, max_batch: usize) -> Option<Drain<T>> {
        let ib = &self.inboxes[from];
        let mut q = ib.queue.lock().unwrap_or_else(|p| p.into_inner());
        self.drain_locked(&mut q, ib, from, own, max_batch)
    }

    /// Drain inbox `from` for worker `own`, skipping if the lock is held.
    fn try_take(&self, from: usize, own: usize, max_batch: usize) -> Option<Drain<T>> {
        let ib = &self.inboxes[from];
        let mut q = ib.queue.try_lock().ok()?;
        self.drain_locked(&mut q, ib, from, own, max_batch)
    }

    fn drain_locked(
        &self,
        q: &mut VecDeque<T>,
        ib: &Inbox<T>,
        from: usize,
        own: usize,
        max_batch: usize,
    ) -> Option<Drain<T>> {
        if q.is_empty() {
            return None;
        }
        let take = q.len().min(max_batch);
        let items: Vec<T> = q.drain(..take).collect();
        let saturated = items.len() == max_batch && !q.is_empty();
        ib.depth.store(q.len(), Ordering::Relaxed);
        let stolen = from != own;
        if stolen {
            self.steals.fetch_add(items.len() as u64, Ordering::Relaxed);
        }
        Some(Drain {
            items,
            stolen,
            saturated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn every_pushed_item_is_drained_exactly_once() {
        let set: Arc<InboxSet<u32>> = Arc::new(InboxSet::new(4, 8));
        let total = 4000u32;
        let workers: Vec<_> = (0..4)
            .map(|w| {
                let set = Arc::clone(&set);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(drain) = set.pop_batch(w, 16) {
                        got.extend(drain.items);
                    }
                    got
                })
            })
            .collect();
        for i in 0..total {
            set.push((i % 4) as usize, i);
        }
        set.close();
        let mut seen: Vec<u32> = Vec::new();
        for w in workers {
            seen.extend(w.join().unwrap());
        }
        assert_eq!(seen.len() as u32, total);
        let unique: HashSet<u32> = seen.into_iter().collect();
        assert_eq!(unique.len() as u32, total, "an item was lost or duplicated");
    }

    #[test]
    fn idle_worker_steals_a_loaded_victims_backlog() {
        let set: InboxSet<u32> = InboxSet::new(2, 1024);
        for i in 0..10 {
            set.push(0, i); // everything lands on inbox 0
        }
        // Worker 1's own inbox is empty: its first drain must steal.
        let drain = set.pop_batch(1, 4).unwrap();
        assert!(drain.stolen);
        assert_eq!(drain.items, vec![0, 1, 2, 3]);
        assert!(drain.saturated);
        assert_eq!(set.steals(), 4);
        // Worker 0 still gets the rest, unstolen.
        let drain = set.pop_batch(0, 16).unwrap();
        assert!(!drain.stolen);
        assert_eq!(drain.items.len(), 6);
        assert!(!drain.saturated);
    }

    #[test]
    fn pushes_spill_off_a_full_inbox() {
        let set: InboxSet<u32> = InboxSet::new(2, 4);
        for i in 0..10 {
            set.push(0, i); // hot key: all prefer inbox 0
        }
        assert!(set.spills() > 0, "over-capacity pushes must spill");
        let depths = set.depths();
        assert_eq!(depths.iter().sum::<usize>(), 10);
        assert!(
            depths[1] > 0,
            "spills must land on the other inbox: {depths:?}"
        );
    }

    #[test]
    fn close_drains_remaining_items_before_none() {
        let set: Arc<InboxSet<u32>> = Arc::new(InboxSet::new(2, 64));
        for i in 0..40 {
            set.push((i % 2) as usize, i);
        }
        set.close();
        let mut got = Vec::new();
        while let Some(d) = set.pop_batch(0, 8) {
            got.extend(d.items);
        }
        assert_eq!(got.len(), 40, "close must not drop queued jobs");
        assert!(set.pop_batch(1, 8).is_none());
    }

    #[test]
    fn single_inbox_worker_parks_until_pushed_or_closed() {
        let set: Arc<InboxSet<u32>> = Arc::new(InboxSet::new(1, 8));
        let s2 = Arc::clone(&set);
        let worker = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(d) = s2.pop_batch(0, 8) {
                got.extend(d.items);
            }
            got
        });
        std::thread::sleep(Duration::from_millis(20));
        set.push(0, 7);
        std::thread::sleep(Duration::from_millis(20));
        set.close();
        assert_eq!(worker.join().unwrap(), vec![7]);
    }
}
