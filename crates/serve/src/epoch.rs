//! Epoch-swapped snapshot publication: a hand-rolled arc-swap.
//!
//! The sharded serving tier decouples writes from reads with a
//! single-writer / many-reader snapshot cell. The writer builds the next
//! graph version off to the side and *publishes* it; readers *load* the
//! current version as an `Arc` and keep scoring against it for as long as
//! they like — a publish never mutates a snapshot a reader already holds.
//!
//! The workspace takes no dependencies, so this is the `arc-swap` idea
//! hand-rolled from std parts: two slots and an epoch counter. The writer
//! always overwrites the slot readers are *not* directed at, then flips
//! the epoch with a release store; readers pick their slot from an acquire
//! load of the epoch. The slot locks exist only to make the `Arc` clone
//! itself atomic — they are uncontended in steady state (the reader's slot
//! is never the one being written), held for nanoseconds, and **never**
//! held across an ingest, a graph build, or any other long operation. The
//! hot path for a reader that is already up to date is a single atomic
//! load ([`EpochCell::epoch`]); the slot lock is touched only when the
//! epoch actually moved.
//!
//! A reader that stalls long enough for the writer to lap it twice simply
//! observes an even newer snapshot — snapshots are immutable once
//! published, so every load is a fully consistent version; there is no
//! torn state to observe (asserted under load by the tests below and by
//! the concurrency battery in `crates/serve/tests/sharded.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A single-writer, many-reader cell holding the current snapshot version.
pub struct EpochCell<T> {
    epoch: AtomicU64,
    slots: [RwLock<Arc<T>>; 2],
}

impl<T> EpochCell<T> {
    /// A cell whose epoch 0 holds `initial`.
    pub fn new(initial: Arc<T>) -> Self {
        EpochCell {
            epoch: AtomicU64::new(0),
            slots: [RwLock::new(initial.clone()), RwLock::new(initial)],
        }
    }

    /// The epoch of the most recently published snapshot. One atomic
    /// load — this is the staleness check readers run per batch.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The current snapshot (possibly newer than [`epoch`](Self::epoch)
    /// just returned, never older). Touches a slot lock only long enough
    /// to clone the `Arc`.
    pub fn load(&self) -> Arc<T> {
        let e = self.epoch.load(Ordering::Acquire);
        self.slots[(e & 1) as usize]
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Publish `next` as the new current snapshot and return its epoch.
    ///
    /// Callers must serialize publishes (the serving tier's writer state
    /// mutex does); concurrent readers are fine. The write lock below only
    /// ever contends with a reader that loaded an epoch two generations
    /// old and has not yet finished its `Arc` clone — it waits those
    /// nanoseconds out, not the other way around.
    pub fn publish(&self, next: Arc<T>) -> u64 {
        let e = self.epoch.load(Ordering::Relaxed) + 1;
        *self.slots[(e & 1) as usize]
            .write()
            .unwrap_or_else(|p| p.into_inner()) = next;
        self.epoch.store(e, Ordering::Release);
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_returns_latest_publish() {
        let cell = EpochCell::new(Arc::new(0u64));
        assert_eq!(cell.epoch(), 0);
        assert_eq!(*cell.load(), 0);
        for v in 1..=10u64 {
            let e = cell.publish(Arc::new(v));
            assert_eq!(e, v);
            assert_eq!(cell.epoch(), v);
            assert_eq!(*cell.load(), v);
        }
    }

    #[test]
    fn old_snapshots_survive_later_publishes() {
        let cell = EpochCell::new(Arc::new(7u64));
        let held = cell.load();
        for v in 1..=5u64 {
            cell.publish(Arc::new(v * 100));
        }
        assert_eq!(*held, 7, "a held Arc is immutable across publishes");
        assert_eq!(*cell.load(), 500);
    }

    /// Readers hammering `load` while a writer publishes must only ever
    /// see internally consistent snapshots (both halves equal) and a
    /// non-decreasing version per reader thread.
    #[test]
    fn concurrent_loads_never_observe_torn_or_regressing_state() {
        let cell = Arc::new(EpochCell::new(Arc::new((0u64, 0u64))));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    let mut loads = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = cell.load();
                        assert_eq!(snap.0, snap.1, "torn snapshot observed");
                        assert!(snap.0 >= last, "snapshot version regressed");
                        last = snap.0;
                        loads += 1;
                    }
                    loads
                })
            })
            .collect();
        for v in 1..=2000u64 {
            cell.publish(Arc::new((v, v)));
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(total > 0);
        assert_eq!(cell.load().0, 2000);
    }
}
