//! A concurrent socket front-end for the sharded serving tier.
//!
//! Speaks the same one-JSON-object-per-line protocol as `relgraph serve`'s
//! stdin mode, framed over TCP or a Unix domain socket. Each accepted
//! connection gets its own handler thread; handlers push single-request
//! jobs straight into the [`ShardedEngine`]'s per-shard inboxes
//! ([`InboxSet`](crate::steal::InboxSet)), where each worker's greedy
//! drain fuses concurrent clients' requests into shared inference
//! batches — the fan-in is the inbox, not a lock, and an idle shard
//! steals a backlogged neighbor's jobs so one hot connection cannot
//! serialize the tier.
//!
//! Responses on one connection are written in request order (the handler
//! is synchronous per line), so clients may pipeline without reordering
//! logic; the `id` echo still makes cross-checking trivial.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use relgraph_obs as obs;

use crate::error::{ServeError, ServeResult};
use crate::protocol::{parse_request, recover_id, response_err, response_ok};
use crate::sharded::ShardedEngine;

/// A bound listening socket, not yet serving.
pub enum ServerListener {
    /// A TCP listener (address contained a `:`).
    Tcp(TcpListener),
    /// A Unix domain socket; the path is unlinked when serving stops.
    Unix(UnixListener, PathBuf),
}

/// Bind `addr`: anything containing `:` is a TCP `host:port` (port `0`
/// picks a free one), anything else is a Unix socket path (an existing
/// stale socket file is replaced).
pub fn bind(addr: &str) -> ServeResult<ServerListener> {
    if addr.contains(':') {
        let l = TcpListener::bind(addr)
            .map_err(|e| ServeError::Engine(format!("cannot bind tcp `{addr}`: {e}")))?;
        Ok(ServerListener::Tcp(l))
    } else {
        let path = PathBuf::from(addr);
        if path.exists() {
            let _ = std::fs::remove_file(&path);
        }
        let l = UnixListener::bind(&path)
            .map_err(|e| ServeError::Engine(format!("cannot bind unix `{addr}`: {e}")))?;
        Ok(ServerListener::Unix(l, path))
    }
}

impl ServerListener {
    /// The bound address, printable (resolves TCP port `0`).
    pub fn local_addr(&self) -> String {
        match self {
            ServerListener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<tcp>".to_string()),
            ServerListener::Unix(_, p) => p.display().to_string(),
        }
    }

    /// Accept and serve connections until `stop` goes true, then drain:
    /// already-accepted connections run to EOF before this returns. Each
    /// connection is one scoped thread reading JSONL requests and writing
    /// one response line per request, in order.
    pub fn run(self, engine: &ShardedEngine, stop: &AtomicBool) -> ServeResult<()> {
        match &self {
            ServerListener::Tcp(l) => l.set_nonblocking(true),
            ServerListener::Unix(l, _) => l.set_nonblocking(true),
        }
        .map_err(|e| ServeError::Engine(format!("cannot set nonblocking: {e}")))?;
        std::thread::scope(|scope| {
            while !stop.load(Ordering::Relaxed) {
                let stream: Option<Box<dyn ReadWriteStream>> = match &self {
                    ServerListener::Tcp(l) => match l.accept() {
                        Ok((s, _)) => Some(Box::new(s)),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                        Err(_) => None,
                    },
                    ServerListener::Unix(l, _) => match l.accept() {
                        Ok((s, _)) => Some(Box::new(s)),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                        Err(_) => None,
                    },
                };
                match stream {
                    Some(s) => {
                        if obs::enabled() {
                            obs::add("serve.connections", 1);
                        }
                        scope.spawn(move || handle_connection(engine, s));
                    }
                    None => std::thread::sleep(Duration::from_millis(2)),
                }
            }
        });
        if let ServerListener::Unix(_, path) = &self {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// Object-safe duplex stream so TCP and Unix connections share a handler.
trait ReadWriteStream: std::io::Read + std::io::Write + Send {
    fn try_clone_stream(&self) -> std::io::Result<Box<dyn ReadWriteStream>>;
}

impl ReadWriteStream for std::net::TcpStream {
    fn try_clone_stream(&self) -> std::io::Result<Box<dyn ReadWriteStream>> {
        Ok(Box::new(self.try_clone()?))
    }
}

impl ReadWriteStream for std::os::unix::net::UnixStream {
    fn try_clone_stream(&self) -> std::io::Result<Box<dyn ReadWriteStream>> {
        Ok(Box::new(self.try_clone()?))
    }
}

fn handle_connection(engine: &ShardedEngine, stream: Box<dyn ReadWriteStream>) {
    let Ok(write_half) = stream.try_clone_stream() else {
        return;
    };
    let reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(engine, &line);
        if writer
            .write_all(response.as_bytes())
            .and_then(|_| writer.write_all(b"\n"))
            .and_then(|_| writer.flush())
            .is_err()
        {
            break; // client hung up mid-response
        }
    }
}

/// One protocol line → one response line (no trailing newline). Shared by
/// the socket handlers and the stdin front-end so the two modes cannot
/// drift: parse, score through the sharded tier, and on a parse failure
/// still recover the caller's id when it is legible.
pub fn handle_line(engine: &ShardedEngine, line: &str) -> String {
    match parse_request(line) {
        Ok(req) => {
            let mut results = engine.predict_batch_keys(std::slice::from_ref(&req.entity));
            match results.pop().expect("one result per key") {
                Ok(p) => response_ok(req.id, p),
                Err(e) => response_err(Some(req.id), &e.to_string()),
            }
        }
        Err(e) => response_err(recover_id(line), &e),
    }
}
