//! Reduced-precision embedding tiers for the serving cache.
//!
//! The engine's hop-ℓ embedding cache stores one `Vec<f64>` per
//! `(type, node, level)` — 8 bytes per dimension. When the engine serves
//! in a reduced [`Precision`], the same LRU slot budget buys far more
//! resident entities:
//!
//! * [`EmbeddingCache32`] stores `f32` rows (half the bytes);
//! * [`QuantizedEmbeddingCache`] stores 8-bit linearly quantized rows
//!   ([`QuantizedRow`]: one `u8` per dimension plus an 8-byte per-row
//!   `(scale, min)` header) — a 4–8× byte reduction depending on row
//!   width.
//!
//! Quantization is lossy, so the quantized tier implements
//! [`EmbeddingStore32::canonicalize`] as encode∘decode: the inference
//! recursion consumes the *storable* value from the start, which is what
//! makes warm (cache-hit) and cold (cache-miss) runs bit-identical. The
//! round-trip error bound — at most `scale/2` plus one half-ulp of the
//! reconstructed value — is stated in `DESIGN.md` §15 and enforced by the
//! property tests below.
//!
//! [`EmbeddingTier`] wraps the three stores behind one enum so the engine
//! and the sharded shard loop can hold "whichever tier the precision mode
//! calls for" without generics leaking into their signatures.

use relgraph_gnn::{EmbeddingStore32, Precision};

use crate::cache::{EmbeddingCache, Lru};

type Key = (usize, usize, usize);

/// One 8-bit linearly quantized embedding row.
///
/// Encodes `x[i] ≈ min + q[i]·scale` with `q[i] ∈ 0..=255`. Constant rows
/// (including empty ones) use `scale = 0` and reconstruct exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedRow {
    /// Quantized codes, one per dimension.
    pub q: Vec<u8>,
    /// Step between adjacent codes (0 for constant rows).
    pub scale: f32,
    /// Value reconstructed for code 0.
    pub min: f32,
}

impl QuantizedRow {
    /// Bytes this row occupies: one code per dimension plus the
    /// `(scale, min)` header.
    pub fn bytes(&self) -> usize {
        self.q.len() + 2 * std::mem::size_of::<f32>()
    }
}

/// Bytes an embedding row of width `dim` occupies in the quantized tier.
pub fn q8_row_bytes(dim: usize) -> usize {
    dim + 2 * std::mem::size_of::<f32>()
}

/// Bytes an embedding row of width `dim` occupies in the `f64` tier.
pub fn f64_row_bytes(dim: usize) -> usize {
    dim * std::mem::size_of::<f64>()
}

/// Quantize a row to 8-bit codes over its own `[min, max]` range.
///
/// The scale is computed in `f64` (`(max − min) / 255` overflows to
/// infinity in `f32` only for ranges near `f32::MAX`, which the `f64`
/// intermediate sidesteps) and clamped up to `f32::MIN_POSITIVE` so that
/// subnormal-range rows still satisfy the `scale/2` reconstruction bound
/// after rounding. Non-finite inputs are the caller's bug; inference
/// rejects them upstream.
pub fn quantize_row(row: &[f32]) -> QuantizedRow {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &x in row {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    if row.is_empty() || lo >= hi {
        // Constant (or empty) row: code 0 everywhere, exact reconstruction.
        let min = if row.is_empty() { 0.0 } else { lo };
        return QuantizedRow {
            q: vec![0; row.len()],
            scale: 0.0,
            min,
        };
    }
    let scale = (((hi as f64) - (lo as f64)) / 255.0) as f32;
    let scale = scale.max(f32::MIN_POSITIVE);
    let inv = 1.0 / (scale as f64);
    let q = row
        .iter()
        .map(|&x| ((((x as f64) - (lo as f64)) * inv).round()).clamp(0.0, 255.0) as u8)
        .collect();
    QuantizedRow { q, scale, min: lo }
}

/// Reconstruct the `f32` row a [`quantize_row`] result encodes.
///
/// The arithmetic runs in `f64` and narrows once, so reconstruction error
/// is the quantization step plus at most one half-ulp of the result.
pub fn dequantize_row(row: &QuantizedRow) -> Vec<f32> {
    let min = row.min as f64;
    let scale = row.scale as f64;
    row.q
        .iter()
        .map(|&q| (min + (q as f64) * scale) as f32)
        .collect()
}

/// The `f32` embedding tier: an [`Lru`] keyed `(type, node, level)` that
/// plugs into [`relgraph_gnn::predict_nodes_f32`] as its
/// [`EmbeddingStore32`]. Storage is lossless, so `canonicalize` stays the
/// identity default.
pub struct EmbeddingCache32 {
    lru: Lru<Key, Vec<f32>>,
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
}

impl EmbeddingCache32 {
    /// An empty cache holding at most `cap` embeddings.
    pub fn new(cap: usize) -> Self {
        EmbeddingCache32 {
            lru: Lru::new(cap),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached embeddings.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Entries displaced by capacity pressure.
    pub fn evictions(&self) -> u64 {
        self.lru.evictions
    }

    /// Drop one `(type, node, level)` entry; true if it was present.
    pub fn invalidate(&mut self, ty: usize, node: usize, level: usize) -> bool {
        self.lru.remove(&(ty, node, level))
    }

    /// Drop everything (hit/miss counters survive).
    pub fn clear(&mut self) {
        self.lru.clear();
    }
}

impl EmbeddingStore32 for EmbeddingCache32 {
    fn get(&mut self, ty: usize, node: usize, level: usize) -> Option<Vec<f32>> {
        match self.lru.get(&(ty, node, level)) {
            Some(emb) => {
                self.hits += 1;
                Some(emb.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn put(&mut self, ty: usize, node: usize, level: usize, emb: Vec<f32>) {
        self.lru.insert((ty, node, level), emb);
    }
}

/// The 8-bit quantized embedding tier: rows live as [`QuantizedRow`]s
/// (~`dim + 8` bytes instead of `8·dim`), decoded on every hit.
///
/// `canonicalize` is encode∘decode, so the recursion only ever consumes
/// values the cache can reproduce — warm and cold runs agree bitwise.
pub struct QuantizedEmbeddingCache {
    lru: Lru<Key, QuantizedRow>,
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
}

impl QuantizedEmbeddingCache {
    /// An empty cache holding at most `cap` quantized rows.
    pub fn new(cap: usize) -> Self {
        QuantizedEmbeddingCache {
            lru: Lru::new(cap),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached rows.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Entries displaced by capacity pressure.
    pub fn evictions(&self) -> u64 {
        self.lru.evictions
    }

    /// Drop one `(type, node, level)` entry; true if it was present.
    pub fn invalidate(&mut self, ty: usize, node: usize, level: usize) -> bool {
        self.lru.remove(&(ty, node, level))
    }

    /// Drop everything (hit/miss counters survive).
    pub fn clear(&mut self) {
        self.lru.clear();
    }
}

impl EmbeddingStore32 for QuantizedEmbeddingCache {
    fn get(&mut self, ty: usize, node: usize, level: usize) -> Option<Vec<f32>> {
        match self.lru.get(&(ty, node, level)) {
            Some(row) => {
                self.hits += 1;
                Some(dequantize_row(row))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn put(&mut self, ty: usize, node: usize, level: usize, emb: Vec<f32>) {
        self.lru.insert((ty, node, level), quantize_row(&emb));
    }

    fn canonicalize(&self, emb: Vec<f32>) -> Vec<f32> {
        dequantize_row(&quantize_row(&emb))
    }
}

/// The embedding tier an engine (or shard) actually holds: one variant
/// per serving [`Precision`]. Lookup/insert goes through the store traits
/// ([`relgraph_gnn::EmbeddingStore`] for `F64`, [`EmbeddingStore32`]
/// otherwise); this
/// enum only carries the shared bookkeeping surface so `engine`/`sharded`
/// code stays precision-agnostic.
pub enum EmbeddingTier {
    /// Full-precision rows (`Vec<f64>`), the default.
    F64(EmbeddingCache),
    /// Single-precision rows (`Vec<f32>`).
    F32(EmbeddingCache32),
    /// 8-bit quantized rows ([`QuantizedRow`]).
    Q8(QuantizedEmbeddingCache),
}

impl EmbeddingTier {
    /// An empty tier for `precision` holding at most `cap` rows.
    pub fn new(precision: Precision, cap: usize) -> Self {
        match precision {
            Precision::F64 => EmbeddingTier::F64(EmbeddingCache::new(cap)),
            Precision::F32 => EmbeddingTier::F32(EmbeddingCache32::new(cap)),
            Precision::Q8 => EmbeddingTier::Q8(QuantizedEmbeddingCache::new(cap)),
        }
    }

    /// The precision this tier serves.
    pub fn precision(&self) -> Precision {
        match self {
            EmbeddingTier::F64(_) => Precision::F64,
            EmbeddingTier::F32(_) => Precision::F32,
            EmbeddingTier::Q8(_) => Precision::Q8,
        }
    }

    /// Number of cached rows.
    pub fn len(&self) -> usize {
        match self {
            EmbeddingTier::F64(c) => c.len(),
            EmbeddingTier::F32(c) => c.len(),
            EmbeddingTier::Q8(c) => c.len(),
        }
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries displaced by capacity pressure.
    pub fn evictions(&self) -> u64 {
        match self {
            EmbeddingTier::F64(c) => c.evictions(),
            EmbeddingTier::F32(c) => c.evictions(),
            EmbeddingTier::Q8(c) => c.evictions(),
        }
    }

    /// Lookups answered from cache.
    pub fn hits(&self) -> u64 {
        match self {
            EmbeddingTier::F64(c) => c.hits,
            EmbeddingTier::F32(c) => c.hits,
            EmbeddingTier::Q8(c) => c.hits,
        }
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        match self {
            EmbeddingTier::F64(c) => c.misses,
            EmbeddingTier::F32(c) => c.misses,
            EmbeddingTier::Q8(c) => c.misses,
        }
    }

    /// Drop one `(type, node, level)` entry; true if it was present.
    pub fn invalidate(&mut self, ty: usize, node: usize, level: usize) -> bool {
        match self {
            EmbeddingTier::F64(c) => c.invalidate(ty, node, level),
            EmbeddingTier::F32(c) => c.invalidate(ty, node, level),
            EmbeddingTier::Q8(c) => c.invalidate(ty, node, level),
        }
    }

    /// Drop everything (hit/miss counters survive).
    pub fn clear(&mut self) {
        match self {
            EmbeddingTier::F64(c) => c.clear(),
            EmbeddingTier::F32(c) => c.clear(),
            EmbeddingTier::Q8(c) => c.clear(),
        }
    }

    /// The `f64` store, for the full-precision predict path.
    ///
    /// # Panics
    /// Panics if this tier is not [`EmbeddingTier::F64`] — the engine
    /// routes by precision before reaching here.
    pub fn as_f64_mut(&mut self) -> &mut EmbeddingCache {
        match self {
            EmbeddingTier::F64(c) => c,
            _ => panic!("f64 predict path reached a reduced-precision tier"),
        }
    }

    /// The reduced-precision store, for the `f32`/`q8` predict path.
    ///
    /// # Panics
    /// Panics if this tier is [`EmbeddingTier::F64`].
    pub fn as_store32_mut(&mut self) -> &mut dyn EmbeddingStore32 {
        match self {
            EmbeddingTier::F32(c) => c,
            EmbeddingTier::Q8(c) => c,
            EmbeddingTier::F64(_) => {
                panic!("reduced-precision predict path reached the f64 tier")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The §15 reconstruction bound: half a quantization step, plus one
    /// half-ulp of the reconstructed magnitude for the final narrowing,
    /// plus one subnormal step so denormal-range rows (where `scale` is
    /// clamped) stay inside the bound.
    fn assert_round_trip_bound(row: &[f32]) {
        let q = quantize_row(row);
        let back = dequantize_row(&q);
        assert_eq!(back.len(), row.len());
        for (&x, &y) in row.iter().zip(&back) {
            let bound = 0.5 * (q.scale as f64)
                + (f32::EPSILON as f64) * (x.abs() as f64)
                + f64::from(f32::MIN_POSITIVE);
            let diff = ((x as f64) - (y as f64)).abs();
            assert!(
                diff <= bound,
                "round-trip error {diff:e} exceeds bound {bound:e} for x={x:e} (scale={:e})",
                q.scale
            );
        }
    }

    #[test]
    fn constant_rows_reconstruct_exactly() {
        for v in [0.0f32, -0.0, 1.5, -3.25, f32::MIN_POSITIVE, 1e30] {
            let row = vec![v; 7];
            let q = quantize_row(&row);
            assert_eq!(q.scale, 0.0);
            let back = dequantize_row(&q);
            for &y in &back {
                // Value-exact; −0.0 reconstructs as +0.0 (the `min + 0`
                // sum normalizes the sign bit), which compares equal and
                // is what both canonicalize and a warm get produce.
                assert_eq!(y, v);
            }
        }
    }

    #[test]
    fn empty_and_single_element_rows_are_exact() {
        let q = quantize_row(&[]);
        assert!(q.q.is_empty());
        assert_eq!(dequantize_row(&q), Vec::<f32>::new());
        let q = quantize_row(&[42.5]);
        assert_eq!(q.scale, 0.0);
        assert_eq!(dequantize_row(&q), vec![42.5]);
    }

    #[test]
    fn signed_zero_rows_round_trip() {
        assert_round_trip_bound(&[-0.0, 0.0, -0.0]);
        // A row spanning −0.0..1.0 must place −0.0 at code 0 exactly.
        let q = quantize_row(&[-0.0, 1.0]);
        assert_eq!(q.q[0], 0);
        assert_eq!(q.q[1], 255);
    }

    #[test]
    fn subnormal_rows_stay_within_bound() {
        let tiny = f32::MIN_POSITIVE / 4.0; // subnormal
        assert_round_trip_bound(&[0.0, tiny, tiny * 2.0, tiny * 3.0]);
        assert_round_trip_bound(&[-tiny, tiny]);
    }

    #[test]
    fn extreme_range_does_not_overflow_scale() {
        let row = [f32::MAX, -f32::MAX, 0.0];
        let q = quantize_row(&row);
        assert!(q.scale.is_finite());
        assert_round_trip_bound(&row);
    }

    #[test]
    fn row_byte_accounting_matches_layout() {
        let q = quantize_row(&[1.0, 2.0, 3.0]);
        assert_eq!(q.bytes(), q8_row_bytes(3));
        assert_eq!(q8_row_bytes(8), 16);
        assert_eq!(f64_row_bytes(8), 64);
        // The issue's ≥4× claim at dim 8: 64 / 16 = 4.0 exactly; wider
        // rows only improve it.
        assert!(f64_row_bytes(8) / q8_row_bytes(8) >= 4);
        assert!(f64_row_bytes(32) as f64 / q8_row_bytes(32) as f64 > 6.0);
    }

    #[test]
    fn canonicalize_is_idempotent_and_matches_warm_get() {
        let mut c = QuantizedEmbeddingCache::new(8);
        let row = vec![0.1f32, -2.7, 3.625, 0.0, 8.5];
        let canon = c.canonicalize(row.clone());
        let canon2 = c.canonicalize(canon.clone());
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&canon),
            bits(&canon2),
            "canonicalize must be idempotent"
        );
        c.put(0, 1, 2, row);
        let warm = c.get(0, 1, 2).unwrap();
        assert_eq!(
            bits(&warm),
            bits(&canon),
            "warm get must equal canonicalize"
        );
    }

    #[test]
    fn tier_routes_by_precision() {
        for p in [Precision::F64, Precision::F32, Precision::Q8] {
            let t = EmbeddingTier::new(p, 4);
            assert_eq!(t.precision(), p);
            assert!(t.is_empty());
        }
        let mut t = EmbeddingTier::new(Precision::Q8, 4);
        t.as_store32_mut().put(0, 0, 0, vec![1.0, 2.0]);
        assert_eq!(t.len(), 1);
        assert!(t.invalidate(0, 0, 0));
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "reduced-precision predict path")]
    fn f64_tier_rejects_store32_access() {
        let mut t = EmbeddingTier::new(Precision::F64, 4);
        let _ = t.as_store32_mut();
    }

    #[test]
    #[should_panic(expected = "f64 predict path")]
    fn q8_tier_rejects_f64_access() {
        let mut t = EmbeddingTier::new(Precision::Q8, 4);
        let _ = t.as_f64_mut();
    }

    /// Strategy: rows mixing magnitudes from subnormal to huge.
    fn row_strategy() -> impl Strategy<Value = Vec<f32>> {
        proptest::collection::vec(
            prop_oneof![
                (-1.0f64..1.0).prop_map(|x| x as f32),
                (-1e6f64..1e6).prop_map(|x| x as f32),
                (-1e-30f64..1e-30).prop_map(|x| x as f32),
                (-1e30f64..1e30).prop_map(|x| x as f32),
                Just(0.0f32),
                Just(-0.0f32),
                Just(f32::MIN_POSITIVE),
                Just(f32::MIN_POSITIVE / 8.0),
            ],
            0..24,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        fn round_trip_error_is_bounded_by_half_scale(row in row_strategy()) {
            let q = quantize_row(&row);
            let back = dequantize_row(&q);
            prop_assert_eq!(back.len(), row.len());
            for (&x, &y) in row.iter().zip(&back) {
                let bound = 0.5 * (q.scale as f64)
                    + (f32::EPSILON as f64) * (x.abs() as f64)
                    + f64::from(f32::MIN_POSITIVE);
                let diff = ((x as f64) - (y as f64)).abs();
                prop_assert!(
                    diff <= bound,
                    "err {} > bound {} at x={} scale={}",
                    diff, bound, x, q.scale
                );
            }
        }

        fn canonicalize_fixed_point(row in row_strategy()) {
            let c = QuantizedEmbeddingCache::new(4);
            let once = c.canonicalize(row);
            let twice = c.canonicalize(once.clone());
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(bits(&once), bits(&twice));
        }
    }

    /// One random op against both a quantized and an unquantized tier;
    /// recency, eviction and invalidation behavior must be identical
    /// because quantization only changes the *payload*, never the policy.
    #[derive(Debug, Clone)]
    enum Op {
        Get(Key),
        Put(Key, Vec<f32>),
        Invalidate(Key),
        Clear,
    }

    fn key_strategy() -> impl Strategy<Value = Key> {
        (0usize..2, 0usize..6, 0usize..3)
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            key_strategy().prop_map(Op::Get),
            (
                key_strategy(),
                proptest::collection::vec((-10.0f64..10.0).prop_map(|x| x as f32), 1..5)
            )
                .prop_map(|(k, v)| Op::Put(k, v)),
            key_strategy().prop_map(Op::Invalidate),
            Just(Op::Clear),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        fn quantized_tier_policy_matches_unquantized(
            ops in proptest::collection::vec(op_strategy(), 1..60),
            cap in 1usize..8,
        ) {
            let mut plain = EmbeddingCache32::new(cap);
            let mut quant = QuantizedEmbeddingCache::new(cap);
            for op in &ops {
                match op {
                    Op::Get(k) => {
                        let a = plain.get(k.0, k.1, k.2).is_some();
                        let b = quant.get(k.0, k.1, k.2).is_some();
                        prop_assert_eq!(a, b, "hit/miss diverged on {:?}", k);
                    }
                    Op::Put(k, v) => {
                        plain.put(k.0, k.1, k.2, v.clone());
                        quant.put(k.0, k.1, k.2, v.clone());
                    }
                    Op::Invalidate(k) => {
                        prop_assert_eq!(
                            plain.invalidate(k.0, k.1, k.2),
                            quant.invalidate(k.0, k.1, k.2)
                        );
                    }
                    Op::Clear => {
                        plain.clear();
                        quant.clear();
                    }
                }
                prop_assert_eq!(plain.len(), quant.len());
                prop_assert_eq!(plain.evictions(), quant.evictions());
                prop_assert_eq!((plain.hits, plain.misses), (quant.hits, quant.misses));
            }
        }
    }
}
