//! The `relgraph serve` wire format: one JSON object per line.
//!
//! Requests:
//!
//! ```text
//! {"id": 7, "entity": 1042}        // integer primary key
//! {"id": 8, "entity": "C-1042"}    // text primary key
//! ```
//!
//! Responses (one per request, in completion order):
//!
//! ```text
//! {"id": 7, "prediction": 0.8315}
//! {"id": 8, "error": "unknown entity `C-1042`"}
//! ```
//!
//! A line that cannot be parsed still produces a response so response
//! count always equals request count; the error message echoes the
//! (truncated) offending line, and [`recover_id`] makes a best-effort
//! scan for an `"id"` even in malformed input so the client can correlate
//! the error (`"id": null` only when no id is recoverable). The parser is
//! a small hand-rolled flat-object scanner — the protocol needs no
//! nesting and the build environment has no JSON dependency.

use relgraph_store::Value;

/// One parsed prediction request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Caller-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Primary-key value of the entity to score.
    pub entity: Value,
}

/// Parse one request line. Unknown keys are rejected (they are always a
/// client bug at this protocol size). Errors echo the offending line
/// (truncated) so a client staring at a multiplexed log can find the
/// request that broke.
pub fn parse_request(line: &str) -> Result<Request, String> {
    parse_request_inner(line).map_err(|e| format!("{e} in `{}`", line_snippet(line)))
}

fn parse_request_inner(line: &str) -> Result<Request, String> {
    let mut p = Parser::new(line);
    p.expect('{')?;
    let mut id: Option<u64> = None;
    let mut entity: Option<Value> = None;
    if !p.peek_is('}') {
        loop {
            let key = p.string()?;
            p.expect(':')?;
            match key.as_str() {
                "id" => {
                    let n = p.number()?;
                    if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
                        return Err(format!("`id` must be a non-negative integer, got {n}"));
                    }
                    id = Some(n as u64);
                }
                "entity" => entity = Some(p.value()?),
                other => return Err(format!("unknown key `{other}`")),
            }
            if p.peek_is(',') {
                p.expect(',')?;
            } else {
                break;
            }
        }
    }
    p.expect('}')?;
    p.end()?;
    match (id, entity) {
        (Some(id), Some(entity)) => Ok(Request { id, entity }),
        (None, _) => Err("missing `id`".to_string()),
        (_, None) => Err("missing `entity`".to_string()),
    }
}

/// Successful response line (no trailing newline).
pub fn response_ok(id: u64, prediction: f64) -> String {
    format!("{{\"id\": {id}, \"prediction\": {prediction}}}")
}

/// Error response line; `id` is `null` when the request line itself was
/// unparseable.
pub fn response_err(id: Option<u64>, message: &str) -> String {
    let id = match id {
        Some(id) => id.to_string(),
        None => "null".to_string(),
    };
    format!("{{\"id\": {id}, \"error\": \"{}\"}}", escape_json(message))
}

/// Best-effort id recovery from a line [`parse_request`] rejected: scan
/// for a `"id"` key followed by a non-negative integer, ignoring every
/// other malformation. Lets error responses carry the caller's
/// correlation id instead of `null` whenever one is legible at all.
pub fn recover_id(line: &str) -> Option<u64> {
    let bytes = line.as_bytes();
    let needle = b"\"id\"";
    let mut i = 0usize;
    while i + needle.len() <= bytes.len() {
        if &bytes[i..i + needle.len()] != needle {
            i += 1;
            continue;
        }
        let mut j = i + needle.len();
        while bytes.get(j).is_some_and(|b| b.is_ascii_whitespace()) {
            j += 1;
        }
        if bytes.get(j) == Some(&b':') {
            j += 1;
            while bytes.get(j).is_some_and(|b| b.is_ascii_whitespace()) {
                j += 1;
            }
            let start = j;
            while bytes.get(j).is_some_and(|b| b.is_ascii_digit()) {
                j += 1;
            }
            // A digit run followed by more number syntax (`1.5`, `2e3`)
            // is not a clean integer id — keep scanning.
            let clean = j > start
                && !bytes
                    .get(j)
                    .is_some_and(|b| matches!(b, b'.' | b'e' | b'E' | b'0'..=b'9'));
            if clean {
                if let Ok(n) = std::str::from_utf8(&bytes[start..j])
                    .unwrap()
                    .parse::<u64>()
                {
                    return Some(n);
                }
            }
        }
        i += 1;
    }
    None
}

/// At most this many characters of a rejected line are echoed back.
const SNIPPET_CHARS: usize = 60;

/// The offending line, shortened for an error message: control characters
/// made visible by `escape_json` later, length capped at
/// [`SNIPPET_CHARS`] characters with a `…` marker.
fn line_snippet(line: &str) -> String {
    let mut out = String::new();
    for (taken, c) in line.chars().enumerate() {
        if taken == SNIPPET_CHARS {
            out.push('…');
            return out;
        }
        out.push(c);
    }
    out
}

/// Minimal JSON string escaping for response payloads.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek_is(&mut self, c: char) -> bool {
        self.skip_ws();
        self.bytes.get(self.pos) == Some(&(c as u8))
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&(c as u8)) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{c}` at byte {}", self.pos))
        }
    }

    fn end(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("trailing data at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        other => return Err(format!("unsupported escape `\\{other:?}`")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map_err(|_| format!("invalid number at byte {start}"))
    }

    /// A request value: string → `Value::Text`, integer → `Value::Int`,
    /// anything else (floats, bools, null, nesting) is rejected — primary
    /// keys are ints or text in this store.
    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'"') => Ok(Value::Text(self.string()?)),
            Some(b) if b.is_ascii_digit() || *b == b'-' => {
                let n = self.number()?;
                if n.fract() != 0.0 || n.abs() > i64::MAX as f64 {
                    return Err(format!("`entity` must be an integer or string, got {n}"));
                }
                Ok(Value::Int(n as i64))
            }
            _ => Err(format!(
                "`entity` must be an integer or string (byte {})",
                self.pos
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_integer_and_text_entities() {
        assert_eq!(
            parse_request(r#"{"id": 7, "entity": 1042}"#).unwrap(),
            Request {
                id: 7,
                entity: Value::Int(1042)
            }
        );
        assert_eq!(
            parse_request(r#"  {"entity":"C-\"10\\42\"" , "id":0}  "#).unwrap(),
            Request {
                id: 0,
                entity: Value::Text("C-\"10\\42\"".to_string())
            }
        );
    }

    #[test]
    fn malformed_lines_are_structured_errors() {
        for bad in [
            "",
            "{",
            "{}",
            r#"{"id": 1}"#,
            r#"{"entity": 3}"#,
            r#"{"id": -1, "entity": 3}"#,
            r#"{"id": 1.5, "entity": 3}"#,
            r#"{"id": 1, "entity": 3.25}"#,
            r#"{"id": 1, "entity": null}"#,
            r#"{"id": 1, "entity": 3} trailing"#,
            r#"{"id": 1, "entity": 3, "extra": true}"#,
            r#"["id", 1]"#,
        ] {
            assert!(parse_request(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn parse_errors_echo_the_offending_line_truncated() {
        let err = parse_request(r#"{"id": 1, "entity": 3} trailing"#).unwrap_err();
        assert!(
            err.contains(r#"in `{"id": 1, "entity": 3} trailing`"#),
            "error should quote the line: {err}"
        );
        let long = format!(r#"{{"id": 1, "entity": "{}"}} trailing"#, "x".repeat(500));
        let err = parse_request(&long).unwrap_err();
        assert!(err.contains('…'), "long lines are truncated: {err}");
        assert!(
            err.len() < 160,
            "echo must stay bounded, got {} bytes",
            err.len()
        );
    }

    /// A corpus of malformed requests: every line must (a) be rejected,
    /// (b) echo itself in the error, and (c) yield exactly the id that a
    /// human could still read off the wreckage.
    #[test]
    fn malformed_corpus_recovers_ids_where_legible() {
        let corpus: &[(&str, Option<u64>)] = &[
            ("", None),
            ("{", None),
            ("{}", None),
            ("garbage", None),
            (r#"{"id": 41"#, Some(41)),
            (r#"{"id": 42, "entity"#, Some(42)),
            (r#"{"id": 43, "entity": }"#, Some(43)),
            (r#"{"id": 44, "entity": 3} trailing"#, Some(44)),
            (r#"{"id": 45, "entity": 3, "extra": 1}"#, Some(45)),
            (r#"{"id": 46, "entity": null}"#, Some(46)),
            (r#"{"entity": 3, "id": 47"#, Some(47)),
            (r#"{"id":48,"id":1,"entity":}"#, Some(48)),
            (r#"{"id": -1, "entity": 3}"#, None),
            (r#"{"id": 1.5, "entity": 3}"#, None),
            (r#"{"id": "7", "entity": 3}"#, None),
            (r#"{"entity": 3}"#, None),
            (r#"["id", 9]"#, None),
            (r#"["id": 9]"#, Some(9)),
        ];
        for &(line, want_id) in corpus {
            let err = parse_request(line).expect_err(line);
            if !line.is_empty() {
                let snippet: String = line.chars().take(20).collect();
                assert!(err.contains(&snippet), "error `{err}` should echo `{line}`");
            }
            assert_eq!(recover_id(line), want_id, "id recovery for `{line}`");
            // The pipeline a front-end runs on a bad line must always
            // produce one well-formed error response.
            let resp = response_err(recover_id(line), &err);
            assert!(resp.starts_with("{\"id\": "), "bad response: {resp}");
        }
    }

    #[test]
    fn recover_id_agrees_with_the_parser_on_valid_lines() {
        for line in [
            r#"{"id": 7, "entity": 1042}"#,
            r#"{"entity":"C-1","id":99}"#,
            r#"{"id": 0, "entity": "x"}"#,
        ] {
            let parsed = parse_request(line).unwrap();
            assert_eq!(recover_id(line), Some(parsed.id), "on `{line}`");
        }
    }

    #[test]
    fn responses_are_single_line_json() {
        assert_eq!(
            response_ok(7, 0.25),
            r#"{"id": 7, "prediction": 0.25}"#.to_string()
        );
        assert_eq!(
            response_err(Some(3), "boom \"quoted\"\npath\\x"),
            "{\"id\": 3, \"error\": \"boom \\\"quoted\\\"\\npath\\\\x\"}"
        );
        assert!(response_err(None, "bad line").starts_with("{\"id\": null,"));
    }
}
