//! Concurrency battery for the sharded serving tier.
//!
//! The load-bearing test is `epoch_swap_under_sustained_read_load`: reader
//! threads hammer the engine while the writer publishes graph deltas, and
//! every prediction any reader ever observes must be bitwise-equal to the
//! cold-rebuild prediction of *some* published epoch — a reader catching a
//! half-applied delta would produce a value matching no epoch. Readers
//! must also keep completing work while ingests are in flight (they never
//! take the writer's lock), and once the dust settles every shard must
//! land exactly on the final epoch's values.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use relgraph_datagen::{generate_ecommerce, EcommerceConfig};
use relgraph_db2graph::{build_graph, ConvertOptions};
use relgraph_gnn::{predict_nodes, NoCache};
use relgraph_pq::ExecConfig;
use relgraph_serve::{ServeConfig, ShardedEngine};
use relgraph_store::{Database, IngestPolicy, Row, RowBatch, Value};

const QUERY: &str = "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id";

fn small_db(seed: u64) -> Database {
    generate_ecommerce(&EcommerceConfig {
        customers: 40,
        products: 10,
        seed,
        ..Default::default()
    })
    .unwrap()
}

fn quick_exec() -> ExecConfig {
    ExecConfig {
        epochs: 2,
        hidden_dim: 8,
        fanouts: vec![4, 4],
        ..Default::default()
    }
}

/// An order batch with timestamps strictly inside the db's time span, so
/// the deploy anchor never advances and precise invalidation must carry
/// the whole load.
fn mid_span_orders(db: &Database, first_id: i64, count: usize) -> Vec<Row> {
    let (lo, hi) = db.time_span().unwrap();
    (0..count)
        .map(|i| {
            let t = lo + (hi - lo) / 4 + (hi - lo) / 2 * (i as i64 % 97) / 97;
            Row::new()
                .push(first_id + i as i64)
                .push(i as i64 % 40)
                .push(i as i64 % 10)
                .push(1 + i as i64 % 3)
                .push(9.5 + i as f64)
                .push("web")
                .push(Value::Timestamp(t))
        })
        .collect()
}

fn batch_of(rows: &[Row]) -> RowBatch {
    let mut b = RowBatch::new();
    for r in rows {
        b.push("orders", r.clone());
    }
    b
}

/// The fitted pieces the cold-reference path needs alongside the engine.
struct Fitted {
    engine: Arc<ShardedEngine>,
    model: Arc<relgraph_gnn::NodeModel>,
    node_type: relgraph_graph::NodeTypeId,
}

impl Fitted {
    /// Cold reference predictions for a database state: scratch graph, no
    /// cache. Predictions are a pure function of (model, graph, rows,
    /// anchor), so this is the ground truth each published epoch must
    /// match.
    fn cold_predictions(&self, db: &Database, rows: &[usize]) -> Vec<f64> {
        let anchor = self.engine.snapshot().anchor;
        let (graph, _) = build_graph(db, &ConvertOptions::default()).unwrap();
        predict_nodes(
            &self.model,
            &graph,
            self.node_type,
            rows,
            anchor,
            &mut NoCache,
        )
    }
}

/// Fit once via a ServeEngine (exposes the model), then stamp out the
/// sharded engine from the same model — bit-identical by construction.
fn fit_sharded(db: Database, shards: usize) -> Fitted {
    fit_sharded_cfg(db, shards, ServeConfig::default())
}

/// Like [`fit_sharded`] but with an explicit serving configuration, so
/// tests can shrink cache tiers or toggle affinity.
fn fit_sharded_cfg(db: Database, shards: usize, cfg: ServeConfig) -> Fitted {
    use relgraph_serve::ServeEngine;
    let single =
        ServeEngine::fit(db.clone(), QUERY, &quick_exec(), ServeConfig::default()).unwrap();
    let model = single.model_handle();
    let node_type = single.node_type();
    let engine = ShardedEngine::from_fitted(
        db,
        single.query().clone(),
        Arc::clone(&model),
        node_type,
        single.metrics_owned(),
        cfg,
        shards,
    )
    .unwrap();
    Fitted {
        engine: Arc::new(engine),
        model,
        node_type,
    }
}

/// The acceptance test: an epoch swap during sustained read load
/// completes without any request observing a partially applied delta.
#[test]
fn epoch_swap_under_sustained_read_load() {
    const INGESTS: usize = 4;
    const ROWS_PER_INGEST: usize = 6;
    const READERS: usize = 3;

    let db0 = small_db(31);
    let fitted = fit_sharded(db0.clone(), 4);
    let engine = Arc::clone(&fitted.engine);
    let rows = engine.deploy_entities().unwrap();

    // Materialize every batch up front, then precompute the cold truth of
    // every epoch state 0..=INGESTS on a scratch database.
    let mut batches: Vec<Vec<Row>> = Vec::new();
    let mut scratch = db0.clone();
    let mut expected: Vec<Vec<f64>> = vec![fitted.cold_predictions(&scratch, &rows)];
    for k in 0..INGESTS {
        let batch = mid_span_orders(&scratch, 9_000_000 + (k as i64) * 1000, ROWS_PER_INGEST);
        scratch
            .ingest(batch_of(&batch), &IngestPolicy::coerce_all())
            .unwrap();
        expected.push(fitted.cold_predictions(&scratch, &rows));
        batches.push(batch);
    }
    // Ingests must actually change predictions, or the test is vacuous.
    assert_ne!(
        expected[0].iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
        expected[INGESTS]
            .iter()
            .map(|p| p.to_bits())
            .collect::<Vec<_>>(),
        "schedule must perturb predictions"
    );
    let legal: Vec<HashSet<u64>> = (0..rows.len())
        .map(|i| expected.iter().map(|e| e[i].to_bits()).collect())
        .collect();

    let writing = Arc::new(AtomicBool::new(true));
    let reads_during_writes = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let engine = Arc::clone(&engine);
            let rows = rows.clone();
            let writing = Arc::clone(&writing);
            let reads_during_writes = Arc::clone(&reads_during_writes);
            let legal = legal.clone();
            std::thread::spawn(move || {
                let mut observed = 0u64;
                while writing.load(Ordering::Relaxed) {
                    // Rotate through overlapping slices so shards see both
                    // repeat (cache-hit) and fresh traffic.
                    let start = (observed as usize * (r + 1)) % rows.len();
                    let slice: Vec<usize> = rows
                        .iter()
                        .cycle()
                        .skip(start)
                        .take(rows.len() / 2 + 1)
                        .copied()
                        .collect();
                    let preds = engine.predict_batch_rows(&slice);
                    for (j, p) in preds.iter().enumerate() {
                        let row_idx = (start + j) % rows.len();
                        assert!(
                            legal[row_idx].contains(&p.to_bits()),
                            "row {} returned {p}, matching no published epoch \
                             (partial delta observed?)",
                            slice[j]
                        );
                    }
                    observed += 1;
                    reads_during_writes.fetch_add(1, Ordering::Relaxed);
                }
                observed
            })
        })
        .collect();

    // Writer: publish each delta while readers hammer. A brief pause
    // between publishes gives readers time on every epoch.
    for batch in &batches {
        let outcome = engine
            .ingest(batch_of(batch), &IngestPolicy::coerce_all())
            .unwrap();
        assert!(!outcome.flushed && !outcome.rebuilt);
        std::thread::sleep(std::time::Duration::from_millis(15));
    }
    // Let readers overlap the final epoch too, then stop them.
    std::thread::sleep(std::time::Duration::from_millis(30));
    writing.store(false, Ordering::Relaxed);
    let total_reads: u64 = readers.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(
        total_reads >= INGESTS as u64,
        "readers must keep completing while the writer publishes \
         (got {total_reads} reads)"
    );
    assert_eq!(engine.epoch(), INGESTS as u64);

    // Settled state: every shard catches up on its next batch, so a full
    // read now must equal the final epoch exactly — not just "some" epoch.
    let settled = engine.predict_batch_rows(&rows);
    for (i, (got, want)) in settled.iter().zip(&expected[INGESTS]).enumerate() {
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "row {} off final epoch after settle",
            rows[i]
        );
    }
}

/// A shard that sleeps through more than PLAN_HISTORY epochs must flush
/// and still converge to the final state (correctness never depends on
/// retained history).
#[test]
fn shard_lapped_beyond_plan_history_recovers_by_flushing() {
    let db0 = small_db(37);
    let fitted = fit_sharded(db0.clone(), 2);
    let engine = &fitted.engine;
    let rows = engine.deploy_entities().unwrap();
    let _ = engine.predict_batch_rows(&rows); // warm both shards

    let mut scratch = db0;
    let n_epochs = relgraph_serve::PLAN_HISTORY + 3;
    for k in 0..n_epochs {
        let batch = mid_span_orders(&scratch, 9_500_000 + (k as i64) * 1000, 3);
        scratch
            .ingest(batch_of(&batch), &IngestPolicy::coerce_all())
            .unwrap();
        let outcome = engine
            .ingest(batch_of(&batch), &IngestPolicy::coerce_all())
            .unwrap();
        assert!(!outcome.flushed && !outcome.rebuilt);
    }
    assert_eq!(engine.epoch(), n_epochs as u64);

    // No shard has scored since epoch 0: each is now lapped far past the
    // retained plan window and must flush rather than replay.
    let warm = engine.predict_batch_rows(&rows);
    let cold = fitted.cold_predictions(&scratch, &rows);
    for (w, c) in warm.iter().zip(&cold) {
        assert_eq!(w.to_bits(), c.to_bits());
    }
    assert!(
        engine.stats().flushes >= 1,
        "a lapped shard should have flushed its slice"
    );
}

/// TCP round trip through the socket front-end: concurrent pipelined
/// clients, well-formed and malformed requests, byte-exact id accounting.
#[test]
fn tcp_front_end_round_trip() {
    use std::io::{BufRead, BufReader, Write};

    let fitted = fit_sharded(small_db(41), 2);
    let engine = &fitted.engine;
    let listener = relgraph_serve::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr();
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        let stop2 = Arc::clone(&stop);
        let engine_ref = &engine;
        let server = scope.spawn(move || listener.run(engine_ref, &stop2).unwrap());

        let clients: Vec<_> = (0..3)
            .map(|c| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut conn = std::net::TcpStream::connect(&addr).unwrap();
                    let mut lines = Vec::new();
                    for i in 0..20u64 {
                        let id = c * 100 + i;
                        if i % 7 == 3 {
                            // Malformed, id still legible → recovered id.
                            lines.push(format!("{{\"id\": {id}, \"entity\""));
                        } else {
                            lines.push(format!("{{\"id\": {id}, \"entity\": {}}}", i % 50));
                        }
                    }
                    // Pipeline everything, then read responses in order.
                    conn.write_all((lines.join("\n") + "\n").as_bytes())
                        .unwrap();
                    let reader = BufReader::new(conn.try_clone().unwrap());
                    let mut got = Vec::new();
                    for line in reader.lines().take(lines.len()) {
                        got.push(line.unwrap());
                    }
                    (lines, got)
                })
            })
            .collect();

        for client in clients {
            let (sent, got) = client.join().unwrap();
            assert_eq!(sent.len(), got.len(), "one response per request");
            for (req, resp) in sent.iter().zip(&got) {
                // In-order per connection: the echoed id must match.
                let id = relgraph_serve::recover_id(req).unwrap();
                assert!(
                    resp.starts_with(&format!("{{\"id\": {id}, ")),
                    "request `{req}` answered out of order or id lost: `{resp}`"
                );
                if req.contains("\"entity\":") {
                    assert!(
                        resp.contains("\"prediction\":"),
                        "well-formed request must score: `{resp}`"
                    );
                } else {
                    // The echoed line arrives JSON-escaped in the message.
                    let escaped = req.replace('\\', "\\\\").replace('"', "\\\"");
                    assert!(
                        resp.contains("\"error\":") && resp.contains(&escaped),
                        "malformed request must error and echo the line: `{resp}`"
                    );
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
        server.join().unwrap();
    });
}

/// Ingesting a batch whose entities are then requested by key: the
/// snapshot the front-end resolves against is the one the writer just
/// published, so new keys become visible exactly at the epoch boundary.
#[test]
fn new_rows_become_visible_at_the_published_epoch() {
    let db0 = small_db(43);
    let fitted = fit_sharded(db0.clone(), 2);
    let engine = &fitted.engine;
    let before = engine.epoch();
    let batch = mid_span_orders(&db0, 9_900_000, 4);
    engine
        .ingest(batch_of(&batch), &IngestPolicy::coerce_all())
        .unwrap();
    assert_eq!(engine.epoch(), before + 1);
    // Customers are the entity; all existing keys must still resolve and
    // score identically across both key- and row-addressed paths.
    let rows = engine.deploy_entities().unwrap();
    let by_rows = engine.predict_batch_rows(&rows);
    let keys: Vec<Value> = rows.iter().map(|&r| Value::Int(r as i64)).collect();
    let by_keys: Vec<f64> = engine
        .predict_batch_keys(&keys)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    for (a, b) in by_rows.iter().zip(&by_keys) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// One `ingest_group` call must land on the same published state as the
/// same batches ingested one by one — same database, bitwise-identical
/// predictions — while spending a single epoch (one invalidation
/// broadcast, one snapshot swap) instead of one per batch. A rejected
/// batch inside the group stays a per-batch no-op.
#[test]
fn group_ingest_matches_sequential_ingests() {
    let db0 = small_db(47);
    let sequential = fit_sharded(db0.clone(), 2);
    let grouped = fit_sharded(db0.clone(), 2);
    // Coerce late rows (mid-span timestamps are behind the watermark) but
    // keep FK violations fatal, so the dangling-FK batch rejects whole.
    let policy = IngestPolicy {
        on_fk_violation: relgraph_store::PolicyAction::Reject,
        ..IngestPolicy::coerce_all()
    };

    let mut batches: Vec<RowBatch> = (0..3)
        .map(|i| batch_of(&mid_span_orders(&db0, 8_000_000 + 100 * i, 3)))
        .collect();
    // A dangling-FK batch: rejected by validation, applied by neither path.
    let (lo, hi) = db0.time_span().unwrap();
    let bad = RowBatch::new().with(
        "orders",
        Row::new()
            .push(8_999_999i64)
            .push(99_999i64) // no such customer
            .push(0i64)
            .push(1i64)
            .push(9.5)
            .push("web")
            .push(Value::Timestamp(lo + (hi - lo) / 2)),
    );
    batches.insert(2, bad);

    let seq_epoch0 = sequential.engine.epoch();
    for batch in &batches {
        // The rejected batch surfaces as an error and publishes nothing.
        let _ = sequential.engine.ingest(batch.clone(), &policy);
    }
    assert_eq!(sequential.engine.epoch(), seq_epoch0 + 3);

    let grp_epoch0 = grouped.engine.epoch();
    let group = grouped.engine.ingest_group(batches, &policy).unwrap();
    assert_eq!(
        grouped.engine.epoch(),
        grp_epoch0 + 1,
        "a group spends one epoch"
    );
    assert_eq!(group.reports.len(), 4);
    assert_eq!(group.accepted_batches(), 3);
    assert!(group.reports[2].is_err());
    assert_eq!(group.outcome.report.accepted, 9);

    let snap_seq = sequential.engine.snapshot();
    let snap_grp = grouped.engine.snapshot();
    assert_eq!(snap_seq.db, snap_grp.db);
    assert_eq!(snap_seq.anchor, snap_grp.anchor);

    let rows = sequential.engine.deploy_entities().unwrap();
    assert_eq!(rows, grouped.engine.deploy_entities().unwrap());
    let a = sequential.engine.predict_batch_rows(&rows);
    let b = grouped.engine.predict_batch_rows(&rows);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

/// The shared L2 tier actually carries embeddings between shards: with
/// the per-shard L1 slices squeezed to near nothing, repeat traffic must
/// hit L2 (promotions and hits both observable), predictions must stay
/// bitwise stable across the handoff, and after an ingest the L2's
/// plan-driven eviction must leave exactly the entries the cold rebuild
/// would recompute identically — at 2 and at 4 shards.
#[test]
fn l2_tier_shares_embeddings_and_survives_ingest() {
    for &shards in &[2usize, 4] {
        let db0 = small_db(53);
        // prediction_cache 1 forces every request through the embedding
        // path; embedding_cache 8 leaves each shard an L1 slice of a few
        // rows, so the shared L2 (full budget) must carry the working set.
        let cfg = ServeConfig {
            prediction_cache: 1,
            embedding_cache: 8,
            ..ServeConfig::default()
        };
        let fitted = fit_sharded_cfg(db0.clone(), shards, cfg);
        let engine = &fitted.engine;
        let rows = engine.deploy_entities().unwrap();

        let warm1 = engine.predict_batch_rows(&rows);
        assert!(
            engine.l2().promotions() > 0 && !engine.l2().load().is_empty(),
            "first pass must promote hop-k embeddings into L2 ({shards} shards)"
        );
        let warm2 = engine.predict_batch_rows(&rows);
        for (a, b) in warm1.iter().zip(&warm2) {
            assert_eq!(a.to_bits(), b.to_bits(), "L2 handoff changed bits");
        }
        assert!(
            engine.stats().l2_hits > 0,
            "repeat pass with starved L1 slices must hit the shared L2 \
             ({shards} shards)"
        );

        // Ingest: the invalidation plan must evict L2 under the same
        // (node, level) rule as the L1 slices. If a stale L2 row
        // survived, the warm read below would diverge from cold.
        let mut scratch = db0;
        let batch = mid_span_orders(&scratch, 9_700_000, 5);
        scratch
            .ingest(batch_of(&batch), &IngestPolicy::coerce_all())
            .unwrap();
        engine
            .ingest(batch_of(&batch), &IngestPolicy::coerce_all())
            .unwrap();
        let warm3 = engine.predict_batch_rows(&rows);
        let cold = fitted.cold_predictions(&scratch, &rows);
        for (i, (w, c)) in warm3.iter().zip(&cold).enumerate() {
            assert_eq!(
                w.to_bits(),
                c.to_bits(),
                "row {} diverged from cold after L2 invalidation ({shards} shards)",
                rows[i]
            );
        }
    }
}

/// A hot-keyed client population — every request routed to the same shard
/// bucket — must not serialize the tier: idle shards steal the backlog,
/// and stealing is invisible in the output bits (every prediction still
/// matches the cold reference exactly).
#[test]
fn hot_keyed_load_steals_without_changing_bits() {
    const CLIENTS: usize = 4;
    const PASSES: usize = 60;

    let db0 = small_db(59);
    // prediction_cache 1: every job recomputes, so the hot inbox builds
    // real backlog instead of draining from the prediction cache.
    let cfg = ServeConfig {
        prediction_cache: 1,
        ..ServeConfig::default()
    };
    let fitted = fit_sharded_cfg(db0.clone(), 4, cfg);
    let engine = Arc::clone(&fitted.engine);
    let rows = engine.deploy_entities().unwrap();

    // The hottest bucket's rows: all of them hash-route to one inbox.
    let hot_bucket = (0..4)
        .max_by_key(|&b| rows.iter().filter(|&&r| engine.shard_of(r) == b).count())
        .unwrap();
    let hot: Vec<usize> = rows
        .iter()
        .copied()
        .filter(|&r| engine.shard_of(r) == hot_bucket)
        .collect();
    assert!(hot.len() >= 4, "need a hot working set to key on");
    let cold = fitted.cold_predictions(&db0, &hot);

    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let engine = Arc::clone(&engine);
            let hot = &hot;
            let cold = &cold;
            scope.spawn(move || {
                for _ in 0..PASSES {
                    // Small chunks → many jobs, all for the same inbox.
                    for (chunk, want) in hot.chunks(2).zip(cold.chunks(2)) {
                        let got = engine.predict_batch_rows(chunk);
                        for (g, w) in got.iter().zip(want) {
                            assert_eq!(
                                g.to_bits(),
                                w.to_bits(),
                                "stolen job returned different bits"
                            );
                        }
                    }
                }
            });
        }
    });
    assert!(
        engine.steals() > 0,
        "idle shards must have stolen from the hot inbox \
         (steals = {}, spills = {})",
        engine.steals(),
        engine.spills()
    );
}

/// Core-affinity placement is a scheduling hint, never a semantic change:
/// the same fitted model served with pinning on and off must produce
/// byte-identical predictions, including under concurrent clients.
#[test]
fn affinity_pinning_is_invisible_in_response_bits() {
    use relgraph_serve::ServeEngine;
    let db0 = small_db(61);
    let single =
        ServeEngine::fit(db0.clone(), QUERY, &quick_exec(), ServeConfig::default()).unwrap();
    let model = single.model_handle();
    let node_type = single.node_type();
    let make = |affinity: bool| {
        ShardedEngine::from_fitted(
            db0.clone(),
            single.query().clone(),
            Arc::clone(&model),
            node_type,
            single.metrics_owned(),
            ServeConfig {
                affinity,
                ..ServeConfig::default()
            },
            4,
        )
        .unwrap()
    };
    let unpinned = make(false);
    let rows = unpinned.deploy_entities().unwrap();
    let baseline = unpinned.predict_batch_rows(&rows);
    drop(unpinned);

    let pinned = make(true);
    // Concurrent clients over the pinned engine: same bytes, every call.
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let pinned = &pinned;
            let rows = &rows;
            let baseline = &baseline;
            scope.spawn(move || {
                for _ in 0..10 {
                    let got = pinned.predict_batch_rows(rows);
                    for (g, b) in got.iter().zip(baseline.iter()) {
                        assert_eq!(g.to_bits(), b.to_bits(), "affinity changed response bytes");
                    }
                }
            });
        }
    });
}
