//! Engine-level correctness: warm cached predictions after ingest-driven
//! invalidation must be bit-identical to a cold rebuild-and-predict, and
//! the invalidation must be *precise* — evicting affected entries while
//! untouched ones survive. The wider randomized battery lives in the
//! workspace-level `tests/serving_equivalence.rs`; this file pins the
//! mechanics on one hand-checked scenario.

use relgraph_datagen::{generate_ecommerce, EcommerceConfig};
use relgraph_db2graph::{build_graph, ConvertOptions};
use relgraph_gnn::{predict_nodes, NoCache};
use relgraph_pq::ExecConfig;
use relgraph_serve::{ServeConfig, ServeEngine};
use relgraph_store::{IngestPolicy, Row, RowBatch, Value};

const QUERY: &str = "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id";

fn engine() -> ServeEngine {
    let db = generate_ecommerce(&EcommerceConfig {
        customers: 60,
        products: 12,
        seed: 11,
        ..Default::default()
    })
    .unwrap();
    let exec = ExecConfig {
        epochs: 3,
        hidden_dim: 8,
        fanouts: vec![4, 4],
        ..Default::default()
    };
    ServeEngine::fit(db, QUERY, &exec, ServeConfig::default()).unwrap()
}

/// A batch of orders placed *before* the database's latest timestamp, so
/// the deploy anchor stays put and the engine must invalidate precisely
/// instead of flushing.
fn late_orders(engine: &ServeEngine, n: usize) -> RowBatch {
    let (lo, hi) = engine.db().time_span().unwrap();
    let mut batch = RowBatch::new();
    for i in 0..n {
        let t = lo + (hi - lo) / 2 + i as i64; // strictly inside the span
        batch.push(
            "orders",
            Row::new()
                .push(1_000_000 + i as i64) // fresh order_id
                .push(1 + (i as i64 % 5)) // existing customer_id
                .push(1 + (i as i64 % 7)) // existing product_id
                .push(2i64)
                .push(19.99f64)
                .push("web")
                .push(Value::Timestamp(t)),
        );
    }
    batch
}

fn cold_predictions(engine: &ServeEngine, rows: &[usize]) -> Vec<f64> {
    let (scratch, _) = build_graph(engine.db(), &ConvertOptions::default()).unwrap();
    predict_nodes(
        engine.model(),
        &scratch,
        engine.node_type(),
        rows,
        engine.anchor(),
        &mut NoCache,
    )
}

#[test]
fn warm_predictions_survive_precise_invalidation_bitwise() {
    let mut engine = engine();
    let rows = engine.deploy_entities().unwrap();
    assert!(rows.len() >= 50);

    // Warm both tiers.
    let before = engine.predict_batch(&rows);
    let warm = engine.predict_batch(&rows);
    for (a, b) in before.iter().zip(&warm) {
        assert_eq!(a.to_bits(), b.to_bits(), "idempotent warm read");
    }
    let stats = engine.stats();
    assert_eq!(stats.prediction_hits as usize, rows.len());

    // Ingest late orders: anchor unchanged, precise invalidation required.
    let anchor_before = engine.anchor();
    let outcome = engine
        .ingest(late_orders(&engine, 8), &IngestPolicy::coerce_all())
        .unwrap();
    assert_eq!(outcome.report.accepted, 8);
    assert!(!outcome.flushed, "anchor did not advance: no flush");
    assert!(!outcome.rebuilt);
    assert_eq!(engine.anchor(), anchor_before);
    assert!(
        outcome.invalidated_embeddings > 0,
        "new edges must dirty cached embeddings"
    );
    assert!(outcome.invalidated_predictions > 0);

    // Warm path after invalidation ≡ cold rebuild-and-predict, bit for bit.
    let warm_after = engine.predict_batch(&rows);
    let cold_after = cold_predictions(&engine, &rows);
    for (i, (w, c)) in warm_after.iter().zip(&cold_after).enumerate() {
        assert_eq!(
            w.to_bits(),
            c.to_bits(),
            "row {} diverged: warm {w} vs cold {c}",
            rows[i]
        );
    }

    // The re-read is served from cache and still bit-identical.
    let warm_again = engine.predict_batch(&rows);
    for (a, b) in warm_after.iter().zip(&warm_again) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn invalidation_is_precise_not_a_flush() {
    let mut engine = engine();
    let rows = engine.deploy_entities().unwrap();
    engine.predict_batch(&rows);
    let pre_stats = engine.stats();
    assert!(pre_stats.embedding_misses > 0);

    let outcome = engine
        .ingest(late_orders(&engine, 4), &IngestPolicy::coerce_all())
        .unwrap();
    assert!(!outcome.flushed);
    assert_eq!(engine.stats().flushes, 0);

    // Re-serving everything must hit the surviving embedding entries: far
    // fewer misses than the cold pass took.
    let cold_misses = pre_stats.embedding_misses;
    engine.predict_batch(&rows);
    let second_pass_misses = engine.stats().embedding_misses - cold_misses;
    assert!(
        second_pass_misses < cold_misses,
        "precise invalidation should preserve most embeddings: \
         second pass recomputed {second_pass_misses} of {cold_misses}"
    );
}

#[test]
fn anchor_advance_flushes_both_tiers() {
    let mut engine = engine();
    let rows = engine.deploy_entities().unwrap();
    engine.predict_batch(&rows);

    let (_, hi) = engine.db().time_span().unwrap();
    let mut batch = RowBatch::new();
    batch.push(
        "orders",
        Row::new()
            .push(2_000_000i64)
            .push(1i64)
            .push(1i64)
            .push(1i64)
            .push(5.0f64)
            .push("web")
            .push(Value::Timestamp(hi + 86_400)),
    );
    let outcome = engine.ingest(batch, &IngestPolicy::coerce_all()).unwrap();
    assert!(outcome.flushed, "advancing the anchor must flush");
    assert_eq!(engine.anchor(), hi + 86_400);
    assert_eq!(engine.stats().flushes, 1);

    // Still correct against a cold rebuild at the new anchor.
    let warm = engine.predict_batch(&rows);
    let (scratch, _) = build_graph(engine.db(), &ConvertOptions::default()).unwrap();
    let cold = predict_nodes(
        engine.model(),
        &scratch,
        engine.node_type(),
        &rows,
        engine.anchor(),
        &mut NoCache,
    );
    for (w, c) in warm.iter().zip(&cold) {
        assert_eq!(w.to_bits(), c.to_bits());
    }
}

#[test]
fn unknown_entity_keys_are_per_request_errors() {
    let mut engine = engine();
    let keys = vec![Value::Int(1), Value::Int(999_999), Value::Int(2)];
    let results = engine.predict_batch_keys(&keys);
    assert!(results[0].is_ok());
    assert!(results[1].is_err());
    assert!(results[2].is_ok());
    let msg = results[1].as_ref().unwrap_err().to_string();
    assert!(msg.contains("999999"), "error names the key: {msg}");
}

#[test]
fn duplicate_rows_in_one_batch_are_computed_once() {
    let mut engine = engine();
    let p = engine.predict_batch(&[3, 3, 3]);
    assert_eq!(p[0].to_bits(), p[1].to_bits());
    assert_eq!(p[1].to_bits(), p[2].to_bits());
    // One distinct row was computed; the duplicates neither hit the cache
    // (nothing was cached yet) nor triggered extra inference.
    let stats = engine.stats();
    assert_eq!(stats.prediction_hits, 0);
    assert_eq!(stats.prediction_misses, 3);
    assert_eq!(engine.predict_row(3).to_bits(), p[0].to_bits());
    assert_eq!(engine.stats().prediction_hits, 1);
}
