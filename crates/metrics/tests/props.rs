//! Property-based tests for the metric implementations.

use proptest::prelude::*;
use relgraph_metrics::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn auroc_in_unit_interval(
        scores in proptest::collection::vec(-10.0f64..10.0, 2..100),
        flip in proptest::collection::vec(any::<bool>(), 2..100),
    ) {
        let n = scores.len().min(flip.len());
        let scores = &scores[..n];
        let labels = &flip[..n];
        if let Some(a) = auroc(scores, labels) {
            prop_assert!((0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn auroc_invariant_under_monotone_transform(
        scores in proptest::collection::vec(-5.0f64..5.0, 4..60),
        labels in proptest::collection::vec(any::<bool>(), 4..60),
    ) {
        let n = scores.len().min(labels.len());
        let s = &scores[..n];
        let l = &labels[..n];
        let transformed: Vec<f64> = s.iter().map(|&x| (x * 0.5).exp()).collect();
        prop_assert_eq!(auroc(s, l).map(|v| (v * 1e12).round()),
                        auroc(&transformed, l).map(|v| (v * 1e12).round()));
    }

    #[test]
    fn auroc_flipping_scores_complements(
        scores in proptest::collection::vec(-5.0f64..5.0, 4..60),
        labels in proptest::collection::vec(any::<bool>(), 4..60),
    ) {
        let n = scores.len().min(labels.len());
        let s = &scores[..n];
        let l = &labels[..n];
        let negated: Vec<f64> = s.iter().map(|&x| -x).collect();
        if let (Some(a), Some(b)) = (auroc(s, l), auroc(&negated, l)) {
            prop_assert!((a + b - 1.0).abs() < 1e-9, "{a} + {b} != 1");
        }
    }

    #[test]
    fn perfect_separation_scores_one(n_pos in 1usize..20, n_neg in 1usize..20) {
        let mut scores = vec![0.1; n_neg];
        scores.extend(vec![0.9; n_pos]);
        let mut labels = vec![false; n_neg];
        labels.extend(vec![true; n_pos]);
        prop_assert_eq!(auroc(&scores, &labels), Some(1.0));
        prop_assert_eq!(accuracy(&scores, &labels, 0.5), 1.0);
        prop_assert_eq!(f1_score(&scores, &labels, 0.5), 1.0);
    }

    #[test]
    fn regression_metrics_nonnegative_and_consistent(
        pairs in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..50),
    ) {
        let (pred, truth): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let m = mae(&pred, &truth);
        let r = rmse(&pred, &truth);
        prop_assert!(m >= 0.0 && r >= 0.0);
        // RMSE dominates MAE (Jensen).
        prop_assert!(r >= m - 1e-9, "rmse {r} < mae {m}");
    }

    #[test]
    fn ranking_metrics_bounded(
        recs in proptest::collection::vec(
            proptest::collection::vec(0u64..30, 0..15), 1..10),
        rels in proptest::collection::vec(
            proptest::collection::hash_set(0u64..30, 0..8), 1..10),
        k in 1usize..12,
    ) {
        let n = recs.len().min(rels.len());
        let recs = &recs[..n];
        let rels: Vec<HashSet<u64>> = rels[..n].to_vec();
        for v in [
            recall_at_k(recs, &rels, k),
            map_at_k(recs, &rels, k),
            ndcg_at_k(recs, &rels, k),
            mrr(recs, &rels),
        ] {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&v), "metric {v} out of bounds");
        }
    }

    #[test]
    fn recall_monotone_in_k(
        recs in proptest::collection::vec(0u64..30, 1..20),
        rel in proptest::collection::hash_set(0u64..30, 1..10),
    ) {
        let recs = vec![recs];
        let rels = vec![rel];
        let mut prev = 0.0;
        for k in 1..=20 {
            let r = recall_at_k(&recs, &rels, k);
            prop_assert!(r >= prev - 1e-12, "recall decreased at k={k}");
            prev = r;
        }
    }

    #[test]
    fn log_loss_minimized_by_truth(labels in proptest::collection::vec(any::<bool>(), 1..40)) {
        let truth: Vec<f64> = labels.iter().map(|&l| if l { 1.0 } else { 0.0 }).collect();
        let uniform = vec![0.5; labels.len()];
        prop_assert!(log_loss(&truth, &labels) <= log_loss(&uniform, &labels) + 1e-12);
    }
}
