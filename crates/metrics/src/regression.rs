//! Regression metrics.

/// Mean absolute error.
pub fn mae(pred: &[f64], truth: &[f64]) -> f64 {
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter()
        .zip(truth)
        .map(|(&p, &t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Root mean squared error.
pub fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    if pred.is_empty() {
        return 0.0;
    }
    (pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64)
        .sqrt()
}

/// Coefficient of determination `R² = 1 − SS_res / SS_tot`. Returns `None`
/// when the truth is constant (undefined).
pub fn r_squared(pred: &[f64], truth: &[f64]) -> Option<f64> {
    if pred.is_empty() || pred.len() != truth.len() {
        return None;
    }
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|&t| (t - mean) * (t - mean)).sum();
    if ss_tot == 0.0 {
        return None;
    }
    let ss_res: f64 = pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum();
    Some(1.0 - ss_res / ss_tot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let t = [1.0, 2.0, 3.0];
        assert_eq!(mae(&t, &t), 0.0);
        assert_eq!(rmse(&t, &t), 0.0);
        assert_eq!(r_squared(&t, &t), Some(1.0));
    }

    #[test]
    fn known_values() {
        let p = [2.0, 4.0];
        let t = [1.0, 1.0];
        assert_eq!(mae(&p, &t), 2.0);
        assert!((rmse(&p, &t) - (5.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn r2_of_mean_predictor_is_zero() {
        let t = [1.0, 2.0, 3.0, 4.0];
        let p = [2.5; 4];
        assert!((r_squared(&p, &t).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn r2_undefined_for_constant_truth() {
        assert_eq!(r_squared(&[1.0, 2.0], &[5.0, 5.0]), None);
        assert_eq!(r_squared(&[], &[]), None);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(mae(&[], &[]), 0.0);
        assert_eq!(rmse(&[], &[]), 0.0);
    }
}
