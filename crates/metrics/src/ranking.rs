//! Ranking / recommendation metrics.
//!
//! Each function takes, per query (user), a ranked list of recommended item
//! ids and the set of relevant (ground-truth) item ids, and averages over
//! queries. Queries with no relevant items are skipped.

use std::collections::HashSet;

/// Recall@K averaged over queries: fraction of each query's relevant items
/// found in its top-K recommendations.
pub fn recall_at_k(recommended: &[Vec<u64>], relevant: &[HashSet<u64>], k: usize) -> f64 {
    average_over_queries(recommended, relevant, |recs, rel| {
        let mut seen = HashSet::new();
        let hits = recs
            .iter()
            .take(k)
            .filter(|&&r| rel.contains(&r) && seen.insert(r))
            .count();
        hits as f64 / rel.len() as f64
    })
}

/// Mean average precision at K.
pub fn map_at_k(recommended: &[Vec<u64>], relevant: &[HashSet<u64>], k: usize) -> f64 {
    average_over_queries(recommended, relevant, |recs, rel| {
        let mut seen = HashSet::new();
        let mut hits = 0.0;
        let mut sum_prec = 0.0;
        for (i, &r) in recs.iter().take(k).enumerate() {
            if rel.contains(&r) && seen.insert(r) {
                hits += 1.0;
                sum_prec += hits / (i + 1) as f64;
            }
        }
        sum_prec / rel.len().min(k) as f64
    })
}

/// Normalized discounted cumulative gain at K (binary relevance).
pub fn ndcg_at_k(recommended: &[Vec<u64>], relevant: &[HashSet<u64>], k: usize) -> f64 {
    average_over_queries(recommended, relevant, |recs, rel| {
        let mut seen = HashSet::new();
        let dcg: f64 = recs
            .iter()
            .take(k)
            .enumerate()
            .filter(|&(_, &r)| rel.contains(&r) && seen.insert(r))
            .map(|(i, _)| 1.0 / ((i + 2) as f64).log2())
            .sum();
        let ideal: f64 = (0..rel.len().min(k))
            .map(|i| 1.0 / ((i + 2) as f64).log2())
            .sum();
        dcg / ideal
    })
}

/// Mean reciprocal rank (of the first relevant item, unbounded depth).
pub fn mrr(recommended: &[Vec<u64>], relevant: &[HashSet<u64>]) -> f64 {
    average_over_queries(recommended, relevant, |recs, rel| {
        recs.iter()
            .position(|r| rel.contains(r))
            .map_or(0.0, |i| 1.0 / (i + 1) as f64)
    })
}

fn average_over_queries(
    recommended: &[Vec<u64>],
    relevant: &[HashSet<u64>],
    per_query: impl Fn(&[u64], &HashSet<u64>) -> f64,
) -> f64 {
    assert_eq!(
        recommended.len(),
        relevant.len(),
        "one relevance set per query"
    );
    let mut total = 0.0;
    let mut n = 0usize;
    for (recs, rel) in recommended.iter().zip(relevant) {
        if rel.is_empty() {
            continue;
        }
        total += per_query(recs, rel);
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(items: &[u64]) -> HashSet<u64> {
        items.iter().copied().collect()
    }

    #[test]
    fn perfect_ranking_scores_one() {
        let recs = vec![vec![1, 2, 3]];
        let relevant = vec![rel(&[1, 2, 3])];
        assert_eq!(recall_at_k(&recs, &relevant, 3), 1.0);
        assert_eq!(map_at_k(&recs, &relevant, 3), 1.0);
        assert!((ndcg_at_k(&recs, &relevant, 3) - 1.0).abs() < 1e-12);
        assert_eq!(mrr(&recs, &relevant), 1.0);
    }

    #[test]
    fn zero_when_nothing_relevant_is_recommended() {
        let recs = vec![vec![7, 8, 9]];
        let relevant = vec![rel(&[1])];
        assert_eq!(recall_at_k(&recs, &relevant, 3), 0.0);
        assert_eq!(map_at_k(&recs, &relevant, 3), 0.0);
        assert_eq!(ndcg_at_k(&recs, &relevant, 3), 0.0);
        assert_eq!(mrr(&recs, &relevant), 0.0);
    }

    #[test]
    fn partial_hits() {
        // Relevant at positions 1 and 3 (0-indexed 0 and 2).
        let recs = vec![vec![1, 9, 2, 8]];
        let relevant = vec![rel(&[1, 2])];
        assert_eq!(recall_at_k(&recs, &relevant, 4), 1.0);
        assert_eq!(recall_at_k(&recs, &relevant, 1), 0.5);
        // AP = (1/1 + 2/3)/2 = 5/6.
        assert!((map_at_k(&recs, &relevant, 4) - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(mrr(&recs, &relevant), 1.0);
        let recs = vec![vec![9, 1]];
        assert_eq!(mrr(&recs, &relevant), 0.5);
    }

    #[test]
    fn queries_without_relevance_are_skipped() {
        let recs = vec![vec![1], vec![2]];
        let relevant = vec![rel(&[1]), rel(&[])];
        assert_eq!(recall_at_k(&recs, &relevant, 1), 1.0);
    }

    #[test]
    fn averages_over_queries() {
        let recs = vec![vec![1], vec![9]];
        let relevant = vec![rel(&[1]), rel(&[2])];
        assert_eq!(recall_at_k(&recs, &relevant, 1), 0.5);
    }

    #[test]
    fn ndcg_discounts_late_hits() {
        let early = vec![vec![1, 8, 9]];
        let late = vec![vec![8, 9, 1]];
        let relevant = vec![rel(&[1])];
        assert!(ndcg_at_k(&early, &relevant, 3) > ndcg_at_k(&late, &relevant, 3));
    }

    #[test]
    fn metrics_bounded_by_one() {
        let recs = vec![vec![1, 1, 1, 2]]; // duplicates should not inflate
        let relevant = vec![rel(&[1, 2])];
        for v in [
            recall_at_k(&recs, &relevant, 4),
            map_at_k(&recs, &relevant, 4),
            ndcg_at_k(&recs, &relevant, 4),
            mrr(&recs, &relevant),
        ] {
            assert!((0.0..=1.0 + 1e-9).contains(&v), "metric {v} out of range");
        }
    }
}
