//! Binary-classification metrics.

/// Area under the ROC curve, with mid-rank tie handling.
///
/// `scores[i]` is the predicted score for example `i`; `labels[i]` is the
/// true binary label. Returns `None` when either class is absent (AUROC is
/// undefined) or the inputs are mismatched/empty.
pub fn auroc(scores: &[f64], labels: &[bool]) -> Option<f64> {
    if scores.len() != labels.len() || scores.is_empty() {
        return None;
    }
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return None;
    }
    // Rank the scores ascending; ties get the average rank.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // Ranks are 1-based; the tied block [i..=j] shares the mid rank.
        let mid = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = mid;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = ranks
        .iter()
        .zip(labels)
        .filter(|(_, &l)| l)
        .map(|(&r, _)| r)
        .sum();
    let auc = (rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0) / (n_pos * n_neg) as f64;
    Some(auc)
}

/// Fraction of correct predictions at threshold 0.5 on probabilities (or 0.0
/// on margins — pass `threshold` accordingly).
pub fn accuracy(scores: &[f64], labels: &[bool], threshold: f64) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    let correct = scores
        .iter()
        .zip(labels)
        .filter(|(&s, &l)| (s >= threshold) == l)
        .count();
    correct as f64 / scores.len() as f64
}

/// F1 score at the given threshold. Returns 0 when precision+recall is 0.
pub fn f1_score(scores: &[f64], labels: &[bool], threshold: f64) -> f64 {
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut fn_ = 0.0;
    for (&s, &l) in scores.iter().zip(labels) {
        let p = s >= threshold;
        match (p, l) {
            (true, true) => tp += 1.0,
            (true, false) => fp += 1.0,
            (false, true) => fn_ += 1.0,
            (false, false) => {}
        }
    }
    if tp == 0.0 {
        return 0.0;
    }
    let precision = tp / (tp + fp);
    let recall = tp / (tp + fn_);
    2.0 * precision * recall / (precision + recall)
}

/// Mean negative log-likelihood of probabilities clamped to `[1e-12, 1-1e-12]`.
pub fn log_loss(probs: &[f64], labels: &[bool]) -> f64 {
    if probs.is_empty() {
        return 0.0;
    }
    let total: f64 = probs
        .iter()
        .zip(labels)
        .map(|(&p, &l)| {
            let p = p.clamp(1e-12, 1.0 - 1e-12);
            if l {
                -p.ln()
            } else {
                -(1.0 - p).ln()
            }
        })
        .sum();
    total / probs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auroc_perfect_and_inverted() {
        let scores = [0.1, 0.4, 0.35, 0.8];
        let labels = [false, false, true, true];
        // 0.35 < 0.4 → one inversion out of 4 pairs → 0.75.
        assert!((auroc(&scores, &labels).unwrap() - 0.75).abs() < 1e-12);
        let perfect = [0.1, 0.2, 0.8, 0.9];
        assert_eq!(auroc(&perfect, &labels), Some(1.0));
        let inverted = [0.9, 0.8, 0.2, 0.1];
        assert_eq!(auroc(&inverted, &labels), Some(0.0));
    }

    #[test]
    fn auroc_random_is_half_with_ties() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        assert!((auroc(&scores, &labels).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auroc_undefined_cases() {
        assert_eq!(auroc(&[], &[]), None);
        assert_eq!(auroc(&[0.1, 0.2], &[true, true]), None);
        assert_eq!(auroc(&[0.1], &[true, false]), None);
    }

    #[test]
    fn auroc_in_unit_interval_on_random_input() {
        // A deterministic pseudo-random sequence.
        let mut x = 123456789u64;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as f64 / (1u64 << 31) as f64
        };
        let scores: Vec<f64> = (0..200).map(|_| next()).collect();
        let labels: Vec<bool> = (0..200).map(|_| next() > 0.5).collect();
        let a = auroc(&scores, &labels).unwrap();
        assert!((0.0..=1.0).contains(&a));
        assert!(
            (a - 0.5).abs() < 0.15,
            "random scores should be near 0.5, got {a}"
        );
    }

    #[test]
    fn accuracy_and_f1() {
        let scores = [0.9, 0.8, 0.3, 0.1];
        let labels = [true, false, true, false];
        assert_eq!(accuracy(&scores, &labels, 0.5), 0.5);
        // tp=1 (0.9), fp=1 (0.8), fn=1 (0.3) → P=0.5 R=0.5 F1=0.5.
        assert!((f1_score(&scores, &labels, 0.5) - 0.5).abs() < 1e-12);
        assert_eq!(f1_score(&[0.1], &[true], 0.5), 0.0);
    }

    #[test]
    fn log_loss_limits() {
        assert!(log_loss(&[1.0, 0.0], &[true, false]) < 1e-9);
        assert!(log_loss(&[0.0], &[true]) > 10.0);
        assert_eq!(log_loss(&[], &[]), 0.0);
    }
}
