//! Multiclass-classification metrics (class labels as `usize` indices).

/// Fraction of exact matches.
pub fn multiclass_accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter().zip(truth).filter(|(a, b)| a == b).count() as f64 / pred.len() as f64
}

/// Confusion matrix `m[truth][pred]` over `n_classes`.
pub fn confusion_matrix(pred: &[usize], truth: &[usize], n_classes: usize) -> Vec<Vec<usize>> {
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (&p, &t) in pred.iter().zip(truth) {
        if p < n_classes && t < n_classes {
            m[t][p] += 1;
        }
    }
    m
}

/// Macro-averaged F1: the unweighted mean of per-class F1 over classes that
/// appear in the truth (classes absent from the truth are skipped).
pub fn macro_f1(pred: &[usize], truth: &[usize], n_classes: usize) -> f64 {
    let m = confusion_matrix(pred, truth, n_classes);
    let mut total = 0.0;
    let mut counted = 0usize;
    #[allow(clippy::needless_range_loop)] // reads row `c` and column `c` of `m`
    for c in 0..n_classes {
        let tp = m[c][c] as f64;
        let fn_: f64 = (0..n_classes)
            .filter(|&p| p != c)
            .map(|p| m[c][p] as f64)
            .sum();
        let fp: f64 = (0..n_classes)
            .filter(|&t| t != c)
            .map(|t| m[t][c] as f64)
            .sum();
        if tp + fn_ == 0.0 {
            continue; // class absent from truth
        }
        counted += 1;
        if tp == 0.0 {
            continue; // f1 = 0
        }
        let precision = tp / (tp + fp);
        let recall = tp / (tp + fn_);
        total += 2.0 * precision * recall / (precision + recall);
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let y = [0, 1, 2, 1];
        assert_eq!(multiclass_accuracy(&y, &y), 1.0);
        assert_eq!(macro_f1(&y, &y, 3), 1.0);
    }

    #[test]
    fn known_confusion() {
        let truth = [0, 0, 1, 1];
        let pred = [0, 1, 1, 1];
        let m = confusion_matrix(&pred, &truth, 2);
        assert_eq!(m, vec![vec![1, 1], vec![0, 2]]);
        assert_eq!(multiclass_accuracy(&pred, &truth), 0.75);
        // class 0: P=1, R=0.5, F1=2/3; class 1: P=2/3, R=1, F1=0.8.
        assert!((macro_f1(&pred, &truth, 2) - (2.0 / 3.0 + 0.8) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn absent_classes_skipped() {
        let truth = [0, 0];
        let pred = [0, 0];
        assert_eq!(macro_f1(&pred, &truth, 5), 1.0);
        assert_eq!(multiclass_accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn all_wrong_is_zero() {
        let truth = [0, 1];
        let pred = [1, 0];
        assert_eq!(multiclass_accuracy(&pred, &truth), 0.0);
        assert_eq!(macro_f1(&pred, &truth, 2), 0.0);
    }
}
