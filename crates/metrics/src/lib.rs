//! # relgraph-metrics
//!
//! Evaluation metrics for the three predictive-query task families:
//!
//! * binary classification — [`classification`]: AUROC, accuracy, F1,
//!   log-loss;
//! * multiclass classification — [`multiclass`]: accuracy, macro-F1,
//!   confusion matrices;
//! * regression — [`regression`]: MAE, RMSE, R²;
//! * ranking / recommendation — [`ranking`]: MAP@K, Recall@K, NDCG@K, MRR.
//!
//! All functions are pure and allocation-light; ties are handled by the
//! standard mid-rank convention where relevant (AUROC).

pub mod classification;
pub mod multiclass;
pub mod ranking;
pub mod regression;

pub use classification::{accuracy, auroc, f1_score, log_loss};
pub use multiclass::{confusion_matrix, macro_f1, multiclass_accuracy};
pub use ranking::{map_at_k, mrr, ndcg_at_k, recall_at_k};
pub use regression::{mae, r_squared, rmse};
