//! Human-readable rendering of a compiled predictive query.

use relgraph_store::Database;

use crate::analyze::AnalyzedQuery;
use crate::traintable::TrainingTable;

/// Render the compiled plan: task, label definition, join path, anchor
/// schedule and split sizes.
pub fn explain(db: &Database, aq: &AnalyzedQuery, table: Option<&TrainingTable>) -> String {
    let mut out = String::new();
    out.push_str(&format!("Predictive query : {}\n", aq.query));
    out.push_str(&format!("Task             : {}\n", aq.task));
    out.push_str(&format!(
        "Entity set       : {} rows of `{}`{}\n",
        db.table(&aq.entity_table).map(|t| t.len()).unwrap_or(0),
        aq.entity_table,
        if aq.filter.is_some() {
            " (filtered)"
        } else {
            ""
        }
    ));
    out.push_str(&format!(
        "Label            : {}({}{}) over ({}d, {}d] after each anchor{}\n",
        aq.query.target.agg,
        aq.value_column.as_deref().unwrap_or("*"),
        match &aq.query.target.filter {
            Some(c) => format!(" WHERE {c}"),
            None => String::new(),
        },
        aq.query.target.start_days,
        aq.query.target.end_days,
        match &aq.query.target.compare {
            Some((op, v)) => format!(", thresholded {op} {v}"),
            None => String::new(),
        }
    ));
    if aq.join_path.is_empty() {
        out.push_str(&format!(
            "Join path        : `{}` is the entity table\n",
            aq.target_table
        ));
    } else {
        let mut path = aq.target_table.clone();
        for (i, step) in aq.join_path.iter().enumerate() {
            let next = aq
                .join_path
                .get(i + 1)
                .map(|s| s.table.as_str())
                .unwrap_or(&aq.entity_table);
            path.push_str(&format!(" --{}.{}--> {}", step.table, step.fk_column, next));
        }
        out.push_str(&format!("Join path        : {path}\n"));
    }
    if let Some(item) = &aq.item_table {
        out.push_str(&format!("Item table       : `{item}` (ranking target)\n"));
    }
    if let Some(t) = table {
        out.push_str(&format!(
            "Anchors          : {} ({} … {})\n",
            t.anchors.len(),
            t.anchors.first().copied().unwrap_or(0),
            t.anchors.last().copied().unwrap_or(0)
        ));
        out.push_str(&format!(
            "Training table   : {} train / {} val / {} test examples (temporal split)\n",
            t.train.len(),
            t.val.len(),
            t.test.len()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::parser::parse;
    use crate::traintable::{build_training_table, TrainTableConfig};
    use relgraph_datagen::{generate_ecommerce, EcommerceConfig};

    #[test]
    fn explain_mentions_all_parts() {
        let db = generate_ecommerce(&EcommerceConfig {
            customers: 30,
            products: 10,
            ..Default::default()
        })
        .unwrap();
        let aq = analyze(
            &db,
            parse(
                "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id \
                 WHERE region = 'north'",
            )
            .unwrap(),
        )
        .unwrap();
        let tt = build_training_table(&db, &aq, &TrainTableConfig::default()).unwrap();
        let s = explain(&db, &aq, Some(&tt));
        for needle in [
            "binary classification",
            "orders",
            "customers",
            "filtered",
            "Anchors",
            "train /",
        ] {
            assert!(s.contains(needle), "missing `{needle}` in:\n{s}");
        }
    }
}
