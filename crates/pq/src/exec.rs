//! Query execution: compile an analyzed query into a trained model,
//! evaluate it on the temporal test split, and produce deploy-time
//! predictions.

use std::collections::{HashMap, HashSet};

use relgraph_baselines::{
    CoVisitRecommender, FeatureConfig, FeatureEngineer, Gbdt, GbdtConfig, GbdtObjective,
    LinearConfig, LinearRegressor, LogisticRegressor, MajorityClass, MeanRegressor, MulticlassGbdt,
    MulticlassLogReg, PopularityRecommender, PriorClassifier,
};
use relgraph_db2graph::{build_graph, ConvertOptions, GraphMapping};
use relgraph_gnn::{
    train_multiclass_model, train_node_model, train_two_tower, Aggregation, NodeModel, TaskKind,
    TrainConfig, TwoTowerConfig,
};
use relgraph_graph::{HeteroGraph, NodeTypeId, Seed};
use relgraph_metrics as metrics;
use relgraph_obs as obs;
use relgraph_store::{Database, Timestamp, Value};

use crate::analyze::{analyze, AnalyzedQuery, TaskType};
use crate::error::{PqError, PqResult};
use crate::explain::explain;
use crate::parser::parse;
use crate::traintable::{build_training_table, Example, TrainTableConfig, TrainingTable};

/// Named metrics plus per-entity predictions — every `run_*` family
/// returns this pair.
type MetricsAndPredictions = (Vec<(String, f64)>, Vec<Prediction>);

/// A borrowed, already-compiled graph handed to the GNN arms so repeated
/// executions (streaming ingest) skip the full database→graph conversion.
type PrebuiltGraph<'a> = Option<(&'a HeteroGraph, &'a GraphMapping)>;

/// Which model family executes the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelChoice {
    /// Temporal heterogeneous GNN (the paper's approach; default).
    Gnn,
    /// Gradient-boosted trees on engineered features.
    Gbdt,
    /// Logistic regression on engineered features (classification).
    LogReg,
    /// Ridge linear regression on engineered features (regression).
    LinReg,
    /// Class prior / global mean (sanity floor).
    Trivial,
    /// Popularity recommender (recommendation only).
    Popularity,
    /// Co-visitation recommender (recommendation only).
    CoVisit,
}

impl ModelChoice {
    fn from_str(s: &str) -> PqResult<Self> {
        Ok(match s.to_ascii_lowercase().as_str() {
            "gnn" | "rdl" => ModelChoice::Gnn,
            "gbdt" | "boosted" | "trees" => ModelChoice::Gbdt,
            "logreg" | "logistic" => ModelChoice::LogReg,
            "linreg" | "linear" => ModelChoice::LinReg,
            "trivial" | "prior" | "mean" => ModelChoice::Trivial,
            "popularity" | "pop" => ModelChoice::Popularity,
            "covisit" | "cooccurrence" => ModelChoice::CoVisit,
            other => {
                return Err(PqError::Analyze(format!(
                    "unknown model `{other}` (expected gnn, gbdt, logreg, linreg, trivial, \
                     popularity or covisit)"
                )))
            }
        })
    }
}

impl std::fmt::Display for ModelChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ModelChoice::Gnn => "gnn",
            ModelChoice::Gbdt => "gbdt",
            ModelChoice::LogReg => "logreg",
            ModelChoice::LinReg => "linreg",
            ModelChoice::Trivial => "trivial",
            ModelChoice::Popularity => "popularity",
            ModelChoice::CoVisit => "covisit",
        };
        f.write_str(s)
    }
}

/// Execution configuration. `USING` options in the query override the
/// corresponding fields.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Training-table construction.
    pub traintable: TrainTableConfig,
    /// Model family (overridden by `USING model = …`).
    pub model: ModelChoice,
    /// GNN epochs.
    pub epochs: usize,
    /// GNN hidden width.
    pub hidden_dim: usize,
    /// GNN per-hop fanouts (layer count = length).
    pub fanouts: Vec<usize>,
    /// Learning rate (GNN).
    pub lr: f64,
    /// Mini-batch size (GNN).
    pub batch_size: usize,
    /// RNG seed.
    pub seed: u64,
    /// Temporal (leak-free) sampling; `false` only for the leakage ablation.
    pub temporal: bool,
    /// Degree-count features in GNN inputs (default); `false` only for the
    /// depth ablation.
    pub degree_features: bool,
    /// GNN neighborhood aggregation (mean / sum / max).
    pub aggregation: Aggregation,
    /// Recommendation list length.
    pub top_k: usize,
    /// GBDT boosting rounds.
    pub gbdt_rounds: usize,
    /// Feature-engineering windows (days; 0 = all history).
    pub feature_windows: Vec<i64>,
    /// Cap on engineered features (the F4 effort sweep).
    pub max_features: Option<usize>,
    /// Cap on deploy-time predictions returned (None = all entities).
    pub max_predictions: Option<usize>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            traintable: TrainTableConfig::default(),
            model: ModelChoice::Gnn,
            epochs: 15,
            hidden_dim: 32,
            fanouts: vec![10, 10],
            lr: 0.01,
            batch_size: 64,
            seed: 17,
            temporal: true,
            degree_features: true,
            aggregation: Aggregation::Mean,
            top_k: 10,
            gbdt_rounds: 120,
            feature_windows: vec![7, 30, 90, 0],
            max_features: None,
            max_predictions: Some(500),
        }
    }
}

impl ExecConfig {
    /// Apply `USING key = value` overrides from the query.
    fn apply_options(&mut self, options: &[(String, String)]) -> PqResult<()> {
        for (key, value) in options {
            let bad = || PqError::Analyze(format!("invalid value `{value}` for option `{key}`"));
            match key.as_str() {
                "model" => self.model = ModelChoice::from_str(value)?,
                "epochs" => self.epochs = value.parse().map_err(|_| bad())?,
                "hidden" | "hidden_dim" => self.hidden_dim = value.parse().map_err(|_| bad())?,
                "lr" => self.lr = value.parse().map_err(|_| bad())?,
                "batch" | "batch_size" => self.batch_size = value.parse().map_err(|_| bad())?,
                "seed" => self.seed = value.parse().map_err(|_| bad())?,
                "layers" | "hops" => {
                    let n: usize = value.parse().map_err(|_| bad())?;
                    let fanout = self.fanouts.first().copied().unwrap_or(10);
                    self.fanouts = vec![fanout; n];
                }
                "fanout" => {
                    let f: usize = value.parse().map_err(|_| bad())?;
                    self.fanouts = self.fanouts.iter().map(|_| f).collect();
                }
                "anchors" => self.traintable.num_anchors = value.parse().map_err(|_| bad())?,
                "top_k" | "k" => self.top_k = value.parse().map_err(|_| bad())?,
                "rounds" | "gbdt_rounds" => self.gbdt_rounds = value.parse().map_err(|_| bad())?,
                "temporal" => {
                    self.temporal = match value.as_str() {
                        "true" | "1" => true,
                        "false" | "0" => false,
                        _ => return Err(bad()),
                    }
                }
                "max_features" => self.max_features = Some(value.parse().map_err(|_| bad())?),
                "agg" | "aggregation" => {
                    self.aggregation = match value.to_ascii_lowercase().as_str() {
                        "mean" => Aggregation::Mean,
                        "sum" => Aggregation::Sum,
                        "max" => Aggregation::Max,
                        _ => return Err(bad()),
                    }
                }
                "degrees" | "degree_features" => {
                    self.degree_features = match value.as_str() {
                        "true" | "1" => true,
                        "false" | "0" => false,
                        _ => return Err(bad()),
                    }
                }
                other => return Err(PqError::Analyze(format!("unknown USING option `{other}`"))),
            }
        }
        Ok(())
    }
}

/// One deploy-time prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The entity's primary-key value.
    pub entity_key: Value,
    /// Probability / predicted value, or ranked item primary keys.
    pub value: PredictionValue,
}

/// The predicted quantity.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictionValue {
    /// Probability (classification) or value (regression).
    Score(f64),
    /// Ranked item primary keys (recommendation).
    Items(Vec<Value>),
    /// Predicted class (MODE queries).
    Class(String),
}

/// Result of executing a predictive query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Inferred task.
    pub task: TaskType,
    /// Model that ran.
    pub model: ModelChoice,
    /// Test-split metrics, e.g. `("auroc", 0.81)`.
    pub metrics: Vec<(String, f64)>,
    /// Deploy-time predictions (anchored at the database's latest time).
    pub predictions: Vec<Prediction>,
    /// The compiled plan, human-readable.
    pub explain: String,
    /// Training-split size (examples).
    pub train_size: usize,
    /// Validation-split size (examples).
    pub val_size: usize,
    /// Test-split size (examples).
    pub test_size: usize,
}

impl QueryOutcome {
    /// Look up a metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// One-paragraph human summary.
    pub fn summary(&self) -> String {
        let metrics: Vec<String> = self
            .metrics
            .iter()
            .map(|(n, v)| format!("{n}={v:.4}"))
            .collect();
        format!(
            "{} via {} | train/val/test = {}/{}/{} | {} | {} predictions",
            self.task,
            self.model,
            self.train_size,
            self.val_size,
            self.test_size,
            metrics.join(" "),
            self.predictions.len()
        )
    }
}

/// Parse, analyze, compile, train, evaluate, predict.
pub fn execute(db: &Database, query_text: &str, config: &ExecConfig) -> PqResult<QueryOutcome> {
    let _root = obs::span("pq.execute");
    let query = {
        let _s = obs::span("pq.parse");
        parse(query_text)?
    };
    let mut cfg = config.clone();
    cfg.apply_options(&query.options)?;
    let aq = {
        let _s = obs::span("pq.analyze");
        analyze(db, query)?
    };
    let table = build_training_table(db, &aq, &cfg.traintable)?;
    execute_analyzed(db, &aq, &table, &cfg)
}

/// A predictive query parsed and analyzed once, re-runnable cheaply as the
/// database grows — the serving-side half of streaming ingest.
///
/// Analysis binds schema-level facts only (entity table, join path, task
/// type), all of which stay valid under append-only growth; what changes
/// per run is the training table (anchors track the advancing time span)
/// and the graph. [`run_on_graph`](Self::run_on_graph) accepts an
/// incrementally-maintained graph so the database→graph conversion is
/// skipped entirely.
///
/// ```no_run
/// use relgraph_pq::{ExecConfig, PreparedQuery};
/// use relgraph_db2graph::{build_graph, ConvertOptions, GraphCursor, update_graph};
/// # use relgraph_datagen::{generate_ecommerce, EcommerceConfig};
/// # let mut db = generate_ecommerce(&EcommerceConfig::default()).unwrap();
/// let pq = PreparedQuery::prepare(
///     &db,
///     "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id",
///     &ExecConfig::default(),
/// ).unwrap();
/// let opts = ConvertOptions::default();
/// let (mut graph, mut mapping) = build_graph(&db, &opts).unwrap();
/// let mut cursor = GraphCursor::capture(&db);
/// // ... db.ingest(batch, &policy) ...
/// update_graph(&db, &mut graph, &mut mapping, &mut cursor, &opts).unwrap();
/// let outcome = pq.run_on_graph(&db, &graph, &mapping).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    aq: AnalyzedQuery,
    cfg: ExecConfig,
}

impl PreparedQuery {
    /// Parse, apply `USING` overrides onto `config`, and analyze against
    /// `db`'s schema.
    pub fn prepare(db: &Database, query_text: &str, config: &ExecConfig) -> PqResult<Self> {
        let query = {
            let _s = obs::span("pq.parse");
            parse(query_text)?
        };
        let mut cfg = config.clone();
        cfg.apply_options(&query.options)?;
        let aq = {
            let _s = obs::span("pq.analyze");
            analyze(db, query)?
        };
        Ok(PreparedQuery { aq, cfg })
    }

    /// The analyzed query.
    pub fn analyzed(&self) -> &AnalyzedQuery {
        &self.aq
    }

    /// The effective configuration (`USING` overrides applied).
    pub fn config(&self) -> &ExecConfig {
        &self.cfg
    }

    /// Re-run against the database's current state, rebuilding the
    /// training table (and, for GNN models, the graph) from scratch.
    pub fn run(&self, db: &Database) -> PqResult<QueryOutcome> {
        let _root = obs::span("pq.execute");
        let table = build_training_table(db, &self.aq, &self.cfg.traintable)?;
        execute_analyzed_impl(db, &self.aq, &table, &self.cfg, None)
    }

    /// Train the query's GNN node model against an already-compiled graph
    /// and hand back the trained model itself instead of a one-shot
    /// [`QueryOutcome`]. This is the serving entry point: the caller keeps
    /// the [`FittedNodeModel`] alive and scores individual entities on a
    /// maintained graph without retraining per request.
    ///
    /// Only classification and regression queries compiled to
    /// [`ModelChoice::Gnn`] can be fitted this way; anything else is a
    /// structured error. `graph`/`mapping` must describe `db` and must
    /// have been built with [`ConvertOptions::default`] (see
    /// [`run_on_graph`](Self::run_on_graph)).
    pub fn fit_node_model(
        &self,
        db: &Database,
        graph: &HeteroGraph,
        mapping: &GraphMapping,
    ) -> PqResult<FittedNodeModel> {
        let _root = obs::span("pq.fit");
        let aq = &self.aq;
        let cfg = &self.cfg;
        if cfg.model != ModelChoice::Gnn {
            return Err(PqError::Execution(format!(
                "serving requires the gnn model, but this query compiled to `{}`",
                cfg.model
            )));
        }
        if !matches!(aq.task, TaskType::Classification | TaskType::Regression) {
            return Err(PqError::Execution(format!(
                "serving supports classification and regression queries, not {}",
                aq.task
            )));
        }
        let table = build_training_table(db, aq, &cfg.traintable)?;
        let node_type = resolve_covered_node_type(db, graph, mapping, &aq.entity_table, "entity")?;
        let to_seed = |e: &Example| Seed {
            node_type,
            node: e.entity_row,
            time: e.anchor,
        };
        let train: Vec<(Seed, f64)> = table
            .train
            .iter()
            .map(|e| (to_seed(e), e.label.scalar()))
            .collect();
        let val: Vec<(Seed, f64)> = table
            .val
            .iter()
            .map(|e| (to_seed(e), e.label.scalar()))
            .collect();
        let task = match aq.task {
            TaskType::Classification => TaskKind::Binary,
            _ => TaskKind::Regression,
        };
        let tc = TrainConfig {
            epochs: cfg.epochs,
            batch_size: cfg.batch_size,
            lr: cfg.lr,
            fanouts: cfg.fanouts.clone(),
            hidden_dim: cfg.hidden_dim,
            seed: cfg.seed,
            temporal: cfg.temporal,
            degree_features: cfg.degree_features,
            aggregation: cfg.aggregation,
            ..Default::default()
        };
        let model = train_node_model(graph, task, &train, &val, &tc)?;
        let test_seeds: Vec<Seed> = table.test.iter().map(to_seed).collect();
        let test_preds = model.predict(graph, &test_seeds);
        let test_truth: Vec<f64> = table.test.iter().map(|e| e.label.scalar()).collect();
        let metrics = node_metrics(aq.task, &test_preds, &test_truth);
        Ok(FittedNodeModel {
            model,
            node_type,
            metrics,
        })
    }

    /// Entity rows alive (present at the deploy anchor and passing the
    /// query's filter) in the database's current state — the population a
    /// serving engine may legitimately be asked to score. Unlike
    /// [`run`](Self::run) this does not apply `max_predictions`.
    pub fn deploy_entities(&self, db: &Database) -> PqResult<Vec<usize>> {
        alive_entities(db, &self.aq, deploy_anchor(db))
    }

    /// Primary-key value of an entity row (for labelling predictions).
    pub fn entity_key_of(&self, db: &Database, row: usize) -> Value {
        entity_key(db, &self.aq, row)
    }

    /// Re-run against the database's current state using an
    /// already-compiled graph for the GNN arms (for non-GNN models the
    /// graph is simply unused). `graph`/`mapping` must describe `db` —
    /// e.g. maintained by
    /// [`update_graph`](relgraph_db2graph::update_graph) after each
    /// ingested batch — and must have been built with
    /// [`ConvertOptions::default`], like `execute` does internally.
    pub fn run_on_graph(
        &self,
        db: &Database,
        graph: &HeteroGraph,
        mapping: &GraphMapping,
    ) -> PqResult<QueryOutcome> {
        let _root = obs::span("pq.execute");
        let table = build_training_table(db, &self.aq, &self.cfg.traintable)?;
        execute_analyzed_impl(db, &self.aq, &table, &self.cfg, Some((graph, mapping)))
    }
}

/// A prepared query trained all the way to a reusable GNN node model —
/// the unit of deployment for the serving engine. Produced by
/// [`PreparedQuery::fit_node_model`]; score entities with
/// [`NodeModel::predict`] or the cached per-node path in `relgraph-gnn`.
pub struct FittedNodeModel {
    /// The trained model.
    pub model: NodeModel,
    /// Node type of the query's entity table in the fitting graph.
    pub node_type: NodeTypeId,
    /// Named test-split metrics from the fitting run (same set a full
    /// [`QueryOutcome`] would report).
    pub metrics: Vec<(String, f64)>,
}

/// Execute a pre-analyzed query with a pre-built training table (used by
/// the experiment harness to share work across model variants).
pub fn execute_analyzed(
    db: &Database,
    aq: &AnalyzedQuery,
    table: &TrainingTable,
    cfg: &ExecConfig,
) -> PqResult<QueryOutcome> {
    execute_analyzed_impl(db, aq, table, cfg, None)
}

/// Shared execution body; `prebuilt` short-circuits graph construction in
/// the GNN arms (the streaming-ingest path maintains the graph
/// incrementally and re-runs prepared queries against it).
fn execute_analyzed_impl(
    db: &Database,
    aq: &AnalyzedQuery,
    table: &TrainingTable,
    cfg: &ExecConfig,
    prebuilt: PrebuiltGraph<'_>,
) -> PqResult<QueryOutcome> {
    let _span = obs::span("pq.run_task");
    let explain_text = explain(db, aq, Some(table));
    let (metrics, predictions) = match aq.task {
        TaskType::Classification | TaskType::Regression => {
            run_node_task(db, aq, table, cfg, prebuilt)?
        }
        TaskType::Recommendation => run_recommendation(db, aq, table, cfg, prebuilt)?,
        TaskType::Multiclass => run_multiclass(db, aq, table, cfg, prebuilt)?,
    };
    if obs::enabled() {
        for (name, value) in &metrics {
            obs::gauge(&format!("metric.{name}"), *value);
        }
        obs::add("pq.predictions", predictions.len() as u64);
    }
    Ok(QueryOutcome {
        task: aq.task,
        model: cfg.model,
        metrics,
        predictions,
        explain: explain_text,
        train_size: table.train.len(),
        val_size: table.val.len(),
        test_size: table.test.len(),
    })
}

/// Deploy anchor: the latest timestamp in the database.
fn deploy_anchor(db: &Database) -> Timestamp {
    db.time_span().map(|(_, hi)| hi).unwrap_or(0)
}

/// Resolve `table` to its node type and verify the graph covers every row
/// the database currently holds for it. The GNN arms index the sampler with
/// raw row ids, so a graph compiled from an older snapshot (or an empty one
/// — zero rows at the anchor timestamp) would read out of bounds and panic
/// deep inside the CSR. Surface the drift as a structured error instead.
fn resolve_covered_node_type(
    db: &Database,
    graph: &HeteroGraph,
    mapping: &GraphMapping,
    table: &str,
    role: &str,
) -> PqResult<NodeTypeId> {
    let node_type = mapping
        .node_type(table)
        .ok_or_else(|| PqError::Execution(format!("{role} table missing from graph")))?;
    let rows = db.table(table)?.len();
    let nodes = graph.num_nodes(node_type);
    if nodes < rows {
        return Err(PqError::Execution(format!(
            "graph is stale for {role} table `{table}`: it has {nodes} node(s) but the \
             database has {rows} row(s); rebuild the graph (or apply pending ingest \
             deltas with update_graph) before running this query"
        )));
    }
    Ok(node_type)
}

/// Entities alive at `anchor` and passing the filter, as row indices.
fn alive_entities(db: &Database, aq: &AnalyzedQuery, anchor: Timestamp) -> PqResult<Vec<usize>> {
    let entity = db.table(&aq.entity_table)?;
    let mut out = Vec::new();
    for row in 0..entity.len() {
        if let Some(p) = &aq.filter {
            if !p
                .eval(entity, row)
                .map_err(|e| PqError::Analyze(e.to_string()))?
            {
                continue;
            }
        }
        if let Some(t) = entity.row_timestamp(row) {
            if t > anchor {
                continue;
            }
        }
        out.push(row);
    }
    Ok(out)
}

fn entity_key(db: &Database, aq: &AnalyzedQuery, row: usize) -> Value {
    let entity = db.table(&aq.entity_table).expect("entity table exists");
    let pk = entity
        .schema()
        .primary_key_index()
        .expect("analyzer checked the pk");
    entity.value(row, pk)
}

fn node_metrics(task: TaskType, preds: &[f64], truth: &[f64]) -> Vec<(String, f64)> {
    match task {
        TaskType::Classification => {
            let labels: Vec<bool> = truth.iter().map(|&v| v > 0.5).collect();
            let mut m = Vec::new();
            if let Some(a) = metrics::auroc(preds, &labels) {
                m.push(("auroc".to_string(), a));
            }
            m.push((
                "accuracy".to_string(),
                metrics::accuracy(preds, &labels, 0.5),
            ));
            m.push(("logloss".to_string(), metrics::log_loss(preds, &labels)));
            m
        }
        TaskType::Regression => {
            let mut m = vec![
                ("mae".to_string(), metrics::mae(preds, truth)),
                ("rmse".to_string(), metrics::rmse(preds, truth)),
            ];
            if let Some(r2) = metrics::r_squared(preds, truth) {
                m.push(("r2".to_string(), r2));
            }
            m
        }
        TaskType::Recommendation | TaskType::Multiclass => {
            unreachable!("node metrics on a ranking/multiclass task")
        }
    }
}

/// Execute a MODE (multiclass) query: class vocabulary from the training
/// split; unseen test classes keep their own indices (never predictable,
/// always counted as errors).
fn run_multiclass(
    db: &Database,
    aq: &AnalyzedQuery,
    table: &TrainingTable,
    cfg: &ExecConfig,
    prebuilt: PrebuiltGraph<'_>,
) -> PqResult<MetricsAndPredictions> {
    let mut classes: Vec<String> = Vec::new();
    let class_index = |name: &str, classes: &mut Vec<String>| -> usize {
        match classes.iter().position(|c| c == name) {
            Some(i) => i,
            None => {
                classes.push(name.to_string());
                classes.len() - 1
            }
        }
    };
    let train_idx: Vec<usize> = table
        .train
        .iter()
        .map(|e| class_index(e.label.class(), &mut classes))
        .collect();
    let val_idx: Vec<usize> = table
        .val
        .iter()
        .map(|e| class_index(e.label.class(), &mut classes))
        .collect();
    let k = classes.len();
    if k < 2 {
        return Err(PqError::TrainingTable(format!(
            "MODE training split contains {k} distinct class(es); need at least 2"
        )));
    }
    // Test truth may extend the vocabulary (unseen classes stay wrong).
    let mut ext_classes = classes.clone();
    let test_idx: Vec<usize> = table
        .test
        .iter()
        .map(|e| class_index(e.label.class(), &mut ext_classes))
        .collect();
    let n_ext = ext_classes.len();

    let deploy = deploy_anchor(db);
    let deploy_rows = {
        let mut rows = alive_entities(db, aq, deploy)?;
        if let Some(cap) = cfg.max_predictions {
            rows.truncate(cap);
        }
        rows
    };

    let (test_pred, deploy_pred): (Vec<usize>, Vec<usize>) = match cfg.model {
        ModelChoice::Gnn => {
            let built;
            let (graph, mapping) = match prebuilt {
                Some(gm) => gm,
                None => {
                    built = build_graph(db, &ConvertOptions::default())?;
                    (&built.0, &built.1)
                }
            };
            let node_type =
                resolve_covered_node_type(db, graph, mapping, &aq.entity_table, "entity")?;
            let to_seed = |e: &Example| Seed {
                node_type,
                node: e.entity_row,
                time: e.anchor,
            };
            let train: Vec<(Seed, usize)> = table
                .train
                .iter()
                .map(to_seed)
                .zip(train_idx.iter().copied())
                .collect();
            let val: Vec<(Seed, usize)> = table
                .val
                .iter()
                .map(to_seed)
                .zip(val_idx.iter().copied())
                .collect();
            let tc = TrainConfig {
                epochs: cfg.epochs,
                batch_size: cfg.batch_size,
                lr: cfg.lr,
                fanouts: cfg.fanouts.clone(),
                hidden_dim: cfg.hidden_dim,
                seed: cfg.seed,
                temporal: cfg.temporal,
                degree_features: cfg.degree_features,
                aggregation: cfg.aggregation,
                ..Default::default()
            };
            let model = train_multiclass_model(graph, classes.clone(), &train, &val, &tc)?;
            let test_seeds: Vec<Seed> = table.test.iter().map(to_seed).collect();
            let deploy_seeds: Vec<Seed> = deploy_rows
                .iter()
                .map(|&r| Seed {
                    node_type,
                    node: r,
                    time: deploy,
                })
                .collect();
            (
                model.predict(graph, &test_seeds),
                model.predict(graph, &deploy_seeds),
            )
        }
        ModelChoice::Trivial => {
            let m =
                MajorityClass::fit(&train_idx, k).map_err(|e| PqError::Execution(e.to_string()))?;
            (m.predict(table.test.len()), m.predict(deploy_rows.len()))
        }
        ModelChoice::Gbdt | ModelChoice::LogReg => {
            let fe = FeatureEngineer::new(
                db,
                &aq.entity_table,
                FeatureConfig {
                    windows_days: cfg.feature_windows.clone(),
                    max_features: cfg.max_features,
                    ..Default::default()
                },
            )
            .map_err(|e| PqError::Execution(e.to_string()))?;
            let seeds_of = |ex: &[Example]| -> Vec<(usize, Timestamp)> {
                ex.iter().map(|e| (e.entity_row, e.anchor)).collect()
            };
            let x_train = fe
                .compute(db, &seeds_of(&table.train))
                .map_err(|e| PqError::Execution(e.to_string()))?;
            let x_test = fe
                .compute(db, &seeds_of(&table.test))
                .map_err(|e| PqError::Execution(e.to_string()))?;
            let deploy_pairs: Vec<(usize, Timestamp)> =
                deploy_rows.iter().map(|&r| (r, deploy)).collect();
            let x_deploy = fe
                .compute(db, &deploy_pairs)
                .map_err(|e| PqError::Execution(e.to_string()))?;
            match cfg.model {
                ModelChoice::Gbdt => {
                    let m = MulticlassGbdt::fit(
                        &x_train,
                        &train_idx,
                        k,
                        &GbdtConfig {
                            rounds: cfg.gbdt_rounds,
                            ..Default::default()
                        },
                    )?;
                    (m.predict(&x_test), m.predict(&x_deploy))
                }
                _ => {
                    let m =
                        MulticlassLogReg::fit(&x_train, &train_idx, k, &LinearConfig::default())?;
                    (m.predict(&x_test), m.predict(&x_deploy))
                }
            }
        }
        other => {
            return Err(PqError::Analyze(format!(
                "model `{other}` does not support MODE (multiclass) queries"
            )))
        }
    };

    let metrics = vec![
        (
            "accuracy".to_string(),
            metrics::multiclass_accuracy(&test_pred, &test_idx),
        ),
        (
            "macro_f1".to_string(),
            metrics::macro_f1(&test_pred, &test_idx, n_ext),
        ),
        ("classes".to_string(), k as f64),
    ];
    let predictions = deploy_rows
        .iter()
        .zip(&deploy_pred)
        .map(|(&row, &c)| Prediction {
            entity_key: entity_key(db, aq, row),
            value: PredictionValue::Class(classes[c].clone()),
        })
        .collect();
    Ok((metrics, predictions))
}

fn run_node_task(
    db: &Database,
    aq: &AnalyzedQuery,
    table: &TrainingTable,
    cfg: &ExecConfig,
    prebuilt: PrebuiltGraph<'_>,
) -> PqResult<MetricsAndPredictions> {
    let test_truth: Vec<f64> = table.test.iter().map(|e| e.label.scalar()).collect();
    let deploy = deploy_anchor(db);
    let deploy_rows = {
        let mut rows = alive_entities(db, aq, deploy)?;
        if let Some(cap) = cfg.max_predictions {
            rows.truncate(cap);
        }
        rows
    };

    let (test_preds, deploy_preds) = match cfg.model {
        ModelChoice::Gnn => {
            let built;
            let (graph, mapping) = match prebuilt {
                Some(gm) => gm,
                None => {
                    built = build_graph(db, &ConvertOptions::default())?;
                    (&built.0, &built.1)
                }
            };
            let node_type =
                resolve_covered_node_type(db, graph, mapping, &aq.entity_table, "entity")?;
            let to_seed = |e: &Example| Seed {
                node_type,
                node: e.entity_row,
                time: e.anchor,
            };
            let train: Vec<(Seed, f64)> = table
                .train
                .iter()
                .map(|e| (to_seed(e), e.label.scalar()))
                .collect();
            let val: Vec<(Seed, f64)> = table
                .val
                .iter()
                .map(|e| (to_seed(e), e.label.scalar()))
                .collect();
            let task = match aq.task {
                TaskType::Classification => TaskKind::Binary,
                _ => TaskKind::Regression,
            };
            let tc = TrainConfig {
                epochs: cfg.epochs,
                batch_size: cfg.batch_size,
                lr: cfg.lr,
                fanouts: cfg.fanouts.clone(),
                hidden_dim: cfg.hidden_dim,
                seed: cfg.seed,
                temporal: cfg.temporal,
                degree_features: cfg.degree_features,
                aggregation: cfg.aggregation,
                ..Default::default()
            };
            let model = train_node_model(graph, task, &train, &val, &tc)?;
            let test_seeds: Vec<Seed> = table.test.iter().map(to_seed).collect();
            let test_preds = model.predict(graph, &test_seeds);
            let deploy_seeds: Vec<Seed> = deploy_rows
                .iter()
                .map(|&r| Seed {
                    node_type,
                    node: r,
                    time: deploy,
                })
                .collect();
            let deploy_preds = model.predict(graph, &deploy_seeds);
            (test_preds, deploy_preds)
        }
        ModelChoice::Trivial => {
            let train_labels: Vec<f64> = table.train.iter().map(|e| e.label.scalar()).collect();
            match aq.task {
                TaskType::Classification => {
                    let m = PriorClassifier::fit(&train_labels);
                    (m.predict(table.test.len()), m.predict(deploy_rows.len()))
                }
                _ => {
                    let m = MeanRegressor::fit(&train_labels);
                    (m.predict(table.test.len()), m.predict(deploy_rows.len()))
                }
            }
        }
        ModelChoice::Gbdt | ModelChoice::LogReg | ModelChoice::LinReg => {
            let fe = FeatureEngineer::new(
                db,
                &aq.entity_table,
                FeatureConfig {
                    windows_days: cfg.feature_windows.clone(),
                    max_features: cfg.max_features,
                    ..Default::default()
                },
            )
            .map_err(|e| PqError::Execution(e.to_string()))?;
            let seeds_of = |ex: &[Example]| -> Vec<(usize, Timestamp)> {
                ex.iter().map(|e| (e.entity_row, e.anchor)).collect()
            };
            let x_train = fe
                .compute(db, &seeds_of(&table.train))
                .map_err(|e| PqError::Execution(e.to_string()))?;
            let y_train: Vec<f64> = table.train.iter().map(|e| e.label.scalar()).collect();
            let x_test = fe
                .compute(db, &seeds_of(&table.test))
                .map_err(|e| PqError::Execution(e.to_string()))?;
            let deploy_pairs: Vec<(usize, Timestamp)> =
                deploy_rows.iter().map(|&r| (r, deploy)).collect();
            let x_deploy = fe
                .compute(db, &deploy_pairs)
                .map_err(|e| PqError::Execution(e.to_string()))?;
            match (cfg.model, aq.task) {
                (ModelChoice::Gbdt, TaskType::Classification) => {
                    let m = Gbdt::fit(
                        &x_train,
                        &y_train,
                        GbdtObjective::Binary,
                        &GbdtConfig {
                            rounds: cfg.gbdt_rounds,
                            ..Default::default()
                        },
                    )?;
                    (m.predict(&x_test), m.predict(&x_deploy))
                }
                (ModelChoice::Gbdt, _) => {
                    let m = Gbdt::fit(
                        &x_train,
                        &y_train,
                        GbdtObjective::Regression,
                        &GbdtConfig {
                            rounds: cfg.gbdt_rounds,
                            ..Default::default()
                        },
                    )?;
                    (m.predict(&x_test), m.predict(&x_deploy))
                }
                (ModelChoice::LogReg, _) => {
                    let m = LogisticRegressor::fit(&x_train, &y_train, &LinearConfig::default())?;
                    (m.predict_proba(&x_test), m.predict_proba(&x_deploy))
                }
                (ModelChoice::LinReg, _) => {
                    let m = LinearRegressor::fit(&x_train, &y_train, &LinearConfig::default())?;
                    (m.predict(&x_test), m.predict(&x_deploy))
                }
                _ => unreachable!(),
            }
        }
        ModelChoice::Popularity | ModelChoice::CoVisit => {
            return Err(PqError::Analyze(format!(
                "model `{}` only applies to recommendation queries",
                cfg.model
            )))
        }
    };

    let _eval = obs::span("pq.eval");
    let metrics = node_metrics(aq.task, &test_preds, &test_truth);
    let predictions = deploy_rows
        .iter()
        .zip(&deploy_preds)
        .map(|(&row, &score)| Prediction {
            entity_key: entity_key(db, aq, row),
            value: PredictionValue::Score(score),
        })
        .collect();
    Ok((metrics, predictions))
}

/// Entity → time-sorted (interaction time, item row) pairs, derived from
/// the target table (used for history exclusion and baseline training).
fn interaction_index(
    db: &Database,
    aq: &AnalyzedQuery,
) -> PqResult<HashMap<usize, Vec<(Timestamp, usize)>>> {
    let target = db.table(&aq.target_table)?;
    let entity = db.table(&aq.entity_table)?;
    let item_table = db.table(
        aq.item_table
            .as_deref()
            .expect("recommendation has an item table"),
    )?;
    let item_col = target
        .column_by_name(
            aq.value_column
                .as_deref()
                .expect("list_distinct has a column"),
        )
        .expect("analyzer validated the column");
    // Recommendation targets join to the entity directly via the first step.
    let fk_col_name = &aq
        .join_path
        .first()
        .ok_or_else(|| {
            PqError::Analyze("recommendation target must reference the entity table".into())
        })?
        .fk_column;
    let fk_col = target
        .column_by_name(fk_col_name)
        .expect("fk column exists");
    let mut index: HashMap<usize, Vec<(Timestamp, usize)>> = HashMap::new();
    for row in 0..target.len() {
        let ekey = fk_col.get(row);
        let ikey = item_col.get(row);
        if ekey.is_null() || ikey.is_null() {
            continue;
        }
        let (Some(erow), Some(irow), Some(t)) = (
            entity.row_by_key(&ekey),
            item_table.row_by_key(&ikey),
            target.row_timestamp(row),
        ) else {
            continue;
        };
        index.entry(erow).or_default().push((t, irow));
    }
    for v in index.values_mut() {
        v.sort_unstable();
    }
    Ok(index)
}

fn history_before(
    index: &HashMap<usize, Vec<(Timestamp, usize)>>,
    entity: usize,
    anchor: Timestamp,
) -> Vec<usize> {
    match index.get(&entity) {
        Some(rows) => {
            let hi = rows.partition_point(|&(t, _)| t <= anchor);
            rows[..hi].iter().map(|&(_, i)| i).collect()
        }
        None => Vec::new(),
    }
}

fn run_recommendation(
    db: &Database,
    aq: &AnalyzedQuery,
    table: &TrainingTable,
    cfg: &ExecConfig,
    prebuilt: PrebuiltGraph<'_>,
) -> PqResult<MetricsAndPredictions> {
    let item_table_name = aq.item_table.as_deref().expect("recommendation item table");
    let item_table = db.table(item_table_name)?;
    let index = interaction_index(db, aq)?;
    let k = cfg.top_k;
    let deploy = deploy_anchor(db);
    let deploy_rows = {
        let mut rows = alive_entities(db, aq, deploy)?;
        if let Some(cap) = cfg.max_predictions {
            rows.truncate(cap);
        }
        rows
    };

    // Evaluation targets: test examples with at least one future positive.
    let eval: Vec<&Example> = table
        .test
        .iter()
        .filter(|e| !e.label.items().is_empty())
        .collect();
    if eval.is_empty() {
        return Err(PqError::TrainingTable(
            "no test-split entities with future interactions to evaluate on".into(),
        ));
    }
    let relevant: Vec<HashSet<u64>> = eval
        .iter()
        .map(|e| e.label.items().iter().map(|&i| i as u64).collect())
        .collect();

    let (recommended, deploy_recs): (Vec<Vec<u64>>, Vec<Vec<usize>>) = match cfg.model {
        ModelChoice::Gnn => {
            let built;
            let (graph, mapping) = match prebuilt {
                Some(gm) => gm,
                None => {
                    built = build_graph(db, &ConvertOptions::default())?;
                    (&built.0, &built.1)
                }
            };
            let node_type =
                resolve_covered_node_type(db, graph, mapping, &aq.entity_table, "entity")?;
            let item_type = resolve_covered_node_type(db, graph, mapping, item_table_name, "item")?;
            let to_pairs = |examples: &[Example]| {
                let mut pairs = Vec::new();
                for e in examples {
                    let seed = Seed {
                        node_type,
                        node: e.entity_row,
                        time: e.anchor,
                    };
                    for &item in e.label.items() {
                        pairs.push((seed, item));
                    }
                }
                pairs
            };
            let pairs = to_pairs(&table.train);
            let val_pairs = to_pairs(&table.val);
            let tt_cfg = TwoTowerConfig {
                embed_dim: cfg.hidden_dim.min(32),
                hidden_dim: cfg.hidden_dim,
                fanouts: cfg.fanouts.clone(),
                epochs: cfg.epochs,
                batch_size: cfg.batch_size,
                // BPR is step-size sensitive; cap below the node-task rate.
                lr: cfg.lr.min(0.005),
                eval_k: cfg.top_k,
                seed: cfg.seed,
                ..Default::default()
            };
            let model = train_two_tower(graph, item_type, &pairs, &val_pairs, &tt_cfg)?;
            let seeds: Vec<Seed> = eval
                .iter()
                .map(|e| Seed {
                    node_type,
                    node: e.entity_row,
                    time: e.anchor,
                })
                .collect();
            let exclude: Vec<HashSet<usize>> = eval
                .iter()
                .map(|e| {
                    history_before(&index, e.entity_row, e.anchor)
                        .into_iter()
                        .collect()
                })
                .collect();
            let recs = model.recommend(graph, &seeds, k, &exclude);
            let deploy_seeds: Vec<Seed> = deploy_rows
                .iter()
                .map(|&r| Seed {
                    node_type,
                    node: r,
                    time: deploy,
                })
                .collect();
            let deploy_exclude: Vec<HashSet<usize>> = deploy_rows
                .iter()
                .map(|&r| history_before(&index, r, deploy).into_iter().collect())
                .collect();
            let deploy_recs = model.recommend(graph, &deploy_seeds, k, &deploy_exclude);
            (
                recs.into_iter()
                    .map(|r| r.into_iter().map(|i| i as u64).collect())
                    .collect(),
                deploy_recs,
            )
        }
        ModelChoice::Popularity | ModelChoice::CoVisit | ModelChoice::Trivial => {
            // Fit on interactions visible at the *latest training anchor*.
            let train_cut = table
                .train
                .iter()
                .chain(&table.val)
                .map(|e| e.anchor)
                .max()
                .unwrap_or(deploy);
            let mut interactions: Vec<(u64, u64)> = Vec::new();
            for (&erow, rows) in &index {
                for &(t, item) in rows {
                    if t <= train_cut {
                        interactions.push((erow as u64, item as u64));
                    }
                }
            }
            let recommend_for = |entity: usize, anchor: Timestamp| -> Vec<u64> {
                let history: Vec<u64> = history_before(&index, entity, anchor)
                    .into_iter()
                    .map(|i| i as u64)
                    .collect();
                match cfg.model {
                    ModelChoice::CoVisit => CO_VISIT
                        .with(|c| c.borrow().as_ref().expect("fitted").recommend(&history, k)),
                    _ => {
                        let seen: HashSet<u64> = history.into_iter().collect();
                        POPULARITY
                            .with(|c| c.borrow().as_ref().expect("fitted").recommend(k, &seen))
                    }
                }
            };
            // Fit once into thread-locals (simple memo for the two closures).
            POPULARITY.with(|c| *c.borrow_mut() = Some(PopularityRecommender::fit(&interactions)));
            CO_VISIT.with(|c| *c.borrow_mut() = Some(CoVisitRecommender::fit(&interactions)));
            let recs: Vec<Vec<u64>> = eval
                .iter()
                .map(|e| recommend_for(e.entity_row, e.anchor))
                .collect();
            let deploy_recs: Vec<Vec<usize>> = deploy_rows
                .iter()
                .map(|&r| {
                    recommend_for(r, deploy)
                        .into_iter()
                        .map(|i| i as usize)
                        .collect()
                })
                .collect();
            (recs, deploy_recs)
        }
        _ => {
            return Err(PqError::Analyze(format!(
                "model `{}` does not support recommendation queries",
                cfg.model
            )))
        }
    };

    let metrics = vec![
        (
            format!("map@{k}"),
            metrics::map_at_k(&recommended, &relevant, k),
        ),
        (
            format!("recall@{k}"),
            metrics::recall_at_k(&recommended, &relevant, k),
        ),
        (
            format!("ndcg@{k}"),
            metrics::ndcg_at_k(&recommended, &relevant, k),
        ),
    ];
    let item_pk = item_table.schema().primary_key_index().ok_or_else(|| {
        PqError::Analyze(format!(
            "item table `{item_table_name}` needs a primary key"
        ))
    })?;
    let predictions = deploy_rows
        .iter()
        .zip(deploy_recs)
        .map(|(&row, items)| Prediction {
            entity_key: entity_key(db, aq, row),
            value: PredictionValue::Items(
                items
                    .into_iter()
                    .map(|i| item_table.value(i, item_pk))
                    .collect(),
            ),
        })
        .collect();
    Ok((metrics, predictions))
}

thread_local! {
    static POPULARITY: std::cell::RefCell<Option<PopularityRecommender>> =
        const { std::cell::RefCell::new(None) };
    static CO_VISIT: std::cell::RefCell<Option<CoVisitRecommender>> =
        const { std::cell::RefCell::new(None) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgraph_datagen::{generate_ecommerce, EcommerceConfig};

    fn shop() -> Database {
        generate_ecommerce(&EcommerceConfig {
            customers: 60,
            products: 20,
            seed: 5,
            ..Default::default()
        })
        .unwrap()
    }

    fn fast() -> ExecConfig {
        ExecConfig {
            epochs: 4,
            hidden_dim: 16,
            fanouts: vec![5, 5],
            max_predictions: Some(20),
            gbdt_rounds: 40,
            ..Default::default()
        }
    }

    #[test]
    fn classification_end_to_end_gnn() {
        let db = shop();
        let out = execute(
            &db,
            "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id",
            &fast(),
        )
        .unwrap();
        assert_eq!(out.task, TaskType::Classification);
        assert_eq!(out.model, ModelChoice::Gnn);
        assert!(out.metric("accuracy").is_some());
        assert!(!out.predictions.is_empty());
        for p in &out.predictions {
            match &p.value {
                PredictionValue::Score(s) => assert!((0.0..=1.0).contains(s)),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(out.summary().contains("classification"));
        assert!(out.explain.contains("Join path"));
    }

    #[test]
    fn using_clause_switches_models() {
        let db = shop();
        for model in ["gbdt", "logreg", "trivial"] {
            let out = execute(
                &db,
                &format!(
                    "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id \
                     USING model = {model}"
                ),
                &fast(),
            )
            .unwrap();
            assert!(
                out.metric("accuracy").is_some(),
                "{model} produced no metrics"
            );
        }
    }

    #[test]
    fn regression_end_to_end() {
        let db = shop();
        for model in ["gnn", "gbdt", "linreg", "trivial"] {
            let out = execute(
                &db,
                &format!(
                    "PREDICT COUNT(orders.*, 0, 30) FOR EACH customers.customer_id \
                     USING model = {model}"
                ),
                &fast(),
            )
            .unwrap();
            assert_eq!(out.task, TaskType::Regression);
            assert!(out.metric("mae").is_some(), "{model} produced no MAE");
        }
    }

    #[test]
    fn recommendation_end_to_end() {
        let db = shop();
        for model in ["gnn", "popularity", "covisit"] {
            let out = execute(
                &db,
                &format!(
                    "PREDICT LIST_DISTINCT(orders.product_id, 0, 60) \
                     FOR EACH customers.customer_id USING model = {model}, k = 5"
                ),
                &fast(),
            )
            .unwrap();
            assert_eq!(out.task, TaskType::Recommendation);
            let recall = out.metric("recall@5").unwrap();
            assert!((0.0..=1.0).contains(&recall), "{model} recall {recall}");
            for p in &out.predictions {
                match &p.value {
                    PredictionValue::Items(items) => assert!(items.len() <= 5),
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    fn where_filter_limits_predictions() {
        let db = shop();
        let all = execute(
            &db,
            "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id USING model = trivial",
            &ExecConfig { max_predictions: None, ..fast() },
        )
        .unwrap();
        let north = execute(
            &db,
            "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id \
             WHERE region = 'north' USING model = trivial",
            &ExecConfig {
                max_predictions: None,
                ..fast()
            },
        )
        .unwrap();
        assert!(north.predictions.len() < all.predictions.len());
        assert!(!north.predictions.is_empty());
    }

    #[test]
    fn mode_multiclass_end_to_end() {
        let db = shop();
        for model in ["gnn", "gbdt", "logreg", "trivial"] {
            let out = execute(
                &db,
                &format!(
                    "PREDICT MODE(orders.channel, 0, 60) FOR EACH customers.customer_id \
                     USING model = {model}"
                ),
                &fast(),
            )
            .unwrap_or_else(|e| panic!("{model}: {e}"));
            assert_eq!(out.task, TaskType::Multiclass);
            let acc = out.metric("accuracy").unwrap();
            assert!((0.0..=1.0).contains(&acc), "{model} accuracy {acc}");
            assert!(out.metric("macro_f1").is_some());
            assert!(out.metric("classes").unwrap() >= 2.0);
            for p in &out.predictions {
                match &p.value {
                    PredictionValue::Class(c) => {
                        assert!(["web", "app", "store"].contains(&c.as_str()))
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    fn mode_beats_majority_class() {
        // The sticky-channel signal is in each customer's history. Use a
        // larger fixture than `shop()`: with 60 customers the eval split is
        // ~24 rows and the comparison is at the mercy of sampling noise.
        let db = generate_ecommerce(&EcommerceConfig {
            customers: 150,
            products: 20,
            seed: 5,
            ..Default::default()
        })
        .unwrap();
        let cfg = ExecConfig {
            max_predictions: Some(20),
            gbdt_rounds: 60,
            ..Default::default()
        };
        let q = "PREDICT MODE(orders.channel, 0, 90) FOR EACH customers.customer_id";
        let trivial = execute(&db, &format!("{q} USING model = trivial"), &cfg).unwrap();
        let gbdt = execute(&db, &format!("{q} USING model = gbdt"), &cfg).unwrap();
        assert!(
            gbdt.metric("accuracy").unwrap() > trivial.metric("accuracy").unwrap(),
            "gbdt {:?} should beat majority {:?}",
            gbdt.metric("accuracy"),
            trivial.metric("accuracy")
        );
    }

    #[test]
    fn mode_rejects_bad_columns() {
        let db = shop();
        // FLOAT column.
        assert!(execute(
            &db,
            "PREDICT MODE(orders.amount, 0, 30) FOR EACH customers.customer_id",
            &fast()
        )
        .is_err());
        // FK column.
        assert!(execute(
            &db,
            "PREDICT MODE(orders.product_id, 0, 30) FOR EACH customers.customer_id",
            &fast()
        )
        .is_err());
        // Comparison.
        assert!(execute(
            &db,
            "PREDICT MODE(orders.channel, 0, 30) > 1 FOR EACH customers.customer_id",
            &fast()
        )
        .is_err());
    }

    #[test]
    fn bad_using_option_rejected() {
        let db = shop();
        assert!(execute(
            &db,
            "PREDICT COUNT(orders.*, 0, 30) FOR EACH customers.customer_id USING bogus = 1",
            &fast()
        )
        .is_err());
        assert!(execute(
            &db,
            "PREDICT COUNT(orders.*, 0, 30) FOR EACH customers.customer_id USING model = nope",
            &fast()
        )
        .is_err());
    }

    #[test]
    fn popularity_on_node_task_rejected() {
        let db = shop();
        let err = execute(
            &db,
            "PREDICT COUNT(orders.*, 0, 30) FOR EACH customers.customer_id USING model = popularity",
            &fast(),
        )
        .unwrap_err();
        assert!(matches!(err, PqError::Analyze(_)));
    }
}
