//! Semantic analysis: binds a parsed query to a database schema, resolves
//! the foreign-key join path from the target table to the entity table,
//! infers the task type, and compiles the `WHERE` filter.

use std::collections::{HashMap, VecDeque};

use relgraph_store::{DataType, Database, Predicate, Value};

use crate::ast::{Agg, Cond, Literal, PredictiveQuery};
use crate::error::{PqError, PqResult};

/// The ML task a query compiles into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskType {
    /// Aggregate + comparison, or `EXISTS` ⇒ binary label.
    Classification,
    /// Bare numeric aggregate ⇒ scalar label.
    Regression,
    /// `LIST_DISTINCT` over an FK column ⇒ ranking over the item table.
    Recommendation,
    /// `MODE` over a categorical column ⇒ k-way classification.
    Multiclass,
}

impl std::fmt::Display for TaskType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TaskType::Classification => "binary classification",
            TaskType::Regression => "regression",
            TaskType::Recommendation => "recommendation",
            TaskType::Multiclass => "multiclass classification",
        };
        f.write_str(s)
    }
}

/// One hop of the target→entity join chain: `table.fk_column` references
/// the next table in the chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinStep {
    /// The referencing table at this hop.
    pub table: String,
    /// The FK column followed out of `table`.
    pub fk_column: String,
}

/// A schema-validated query, ready for training-table construction.
#[derive(Debug, Clone)]
pub struct AnalyzedQuery {
    /// The original query.
    pub query: PredictiveQuery,
    /// Inferred task type.
    pub task: TaskType,
    /// `FOR EACH` table.
    pub entity_table: String,
    /// Table the aggregate ranges over.
    pub target_table: String,
    /// FK chain from `target_table` up to (excluding) `entity_table`;
    /// empty when the target *is* the entity table.
    pub join_path: Vec<JoinStep>,
    /// Resolved aggregate column (`None` for `*`).
    pub value_column: Option<String>,
    /// For recommendation: the item table the `LIST_DISTINCT` column
    /// references.
    pub item_table: Option<String>,
    /// Compiled entity filter.
    pub filter: Option<Predicate>,
    /// Compiled conditional-aggregate filter over the target table.
    pub target_filter: Option<Predicate>,
}

/// Shortest FK chain from `from` to `to` (following FK direction only).
fn fk_path(db: &Database, from: &str, to: &str) -> Option<Vec<JoinStep>> {
    if from == to {
        return Some(Vec::new());
    }
    // BFS over "table --fk--> referenced table".
    let mut prev: HashMap<String, JoinStep> = HashMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(from.to_string());
    let mut visited = vec![from.to_string()];
    while let Some(cur) = queue.pop_front() {
        let Ok(table) = db.table(&cur) else { continue };
        for fk in table.schema().foreign_keys() {
            let next = &fk.referenced_table;
            if visited.iter().any(|v| v == next) {
                continue;
            }
            visited.push(next.clone());
            prev.insert(
                next.clone(),
                JoinStep {
                    table: cur.clone(),
                    fk_column: fk.column.clone(),
                },
            );
            if next == to {
                // Reconstruct path back from `to`.
                let mut path = Vec::new();
                let mut node = to.to_string();
                while node != from {
                    let step = prev.get(&node).expect("bfs predecessor").clone();
                    node = step.table.clone();
                    path.push(step);
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(next.clone());
        }
    }
    None
}

fn compile_filter(db: &Database, entity_table: &str, cond: &Cond) -> PqResult<Predicate> {
    let table = db
        .table(entity_table)
        .map_err(|e| PqError::Analyze(e.to_string()))?;
    let col_type = |name: &str| -> PqResult<DataType> {
        table
            .schema()
            .column(name)
            .map(|c| c.data_type)
            .ok_or_else(|| {
                PqError::Analyze(format!(
                    "WHERE references `{name}`, which is not a column of `{entity_table}`"
                ))
            })
    };
    Ok(match cond {
        Cond::Cmp { column, op, value } => {
            let ty = col_type(column)?;
            let v = match (value, ty) {
                (Literal::Num(x), DataType::Int) if x.fract() == 0.0 => Value::Int(*x as i64),
                (Literal::Num(x), DataType::Int) => {
                    return Err(PqError::Analyze(format!(
                        "column `{column}` is INT but compared with non-integer {x}"
                    )))
                }
                (Literal::Num(x), DataType::Float) => Value::Float(*x),
                (Literal::Num(x), DataType::Timestamp) if x.fract() == 0.0 => {
                    Value::Timestamp(*x as i64)
                }
                (Literal::Str(s), DataType::Text) => Value::Text(s.clone()),
                (Literal::Bool(b), DataType::Bool) => Value::Bool(*b),
                (lit, ty) => {
                    return Err(PqError::Analyze(format!(
                        "cannot compare column `{column}` ({ty}) with literal {lit}"
                    )))
                }
            };
            Predicate::Compare {
                column: column.clone(),
                op: *op,
                value: v,
            }
        }
        Cond::IsNull { column, negated } => {
            col_type(column)?;
            if *negated {
                Predicate::IsNotNull(column.clone())
            } else {
                Predicate::IsNull(column.clone())
            }
        }
        Cond::And(a, b) => Predicate::And(
            Box::new(compile_filter(db, entity_table, a)?),
            Box::new(compile_filter(db, entity_table, b)?),
        ),
        Cond::Or(a, b) => Predicate::Or(
            Box::new(compile_filter(db, entity_table, a)?),
            Box::new(compile_filter(db, entity_table, b)?),
        ),
        Cond::Not(c) => Predicate::Not(Box::new(compile_filter(db, entity_table, c)?)),
    })
}

/// Validate `query` against `db` and produce an [`AnalyzedQuery`].
pub fn analyze(db: &Database, query: PredictiveQuery) -> PqResult<AnalyzedQuery> {
    // Entity side.
    let entity_table = query.entity.table.clone();
    let entity = db
        .table(&entity_table)
        .map_err(|_| PqError::Analyze(format!("unknown entity table `{entity_table}`")))?;
    match entity.schema().primary_key() {
        Some(pk) if pk == query.entity.column => {}
        Some(pk) => {
            return Err(PqError::Analyze(format!(
                "FOR EACH must name the primary key of `{entity_table}` (`{pk}`), got `{}`",
                query.entity.column
            )))
        }
        None => {
            return Err(PqError::Analyze(format!(
                "entity table `{entity_table}` has no primary key"
            )))
        }
    }

    // Target side.
    let target_table = query.target.target.table.clone();
    let target = db
        .table(&target_table)
        .map_err(|_| PqError::Analyze(format!("unknown target table `{target_table}`")))?;
    if target.schema().time_column().is_none() {
        return Err(PqError::Analyze(format!(
            "target table `{target_table}` has no time column; a predictive window needs one"
        )));
    }
    if query.target.start_days < 0 || query.target.end_days <= query.target.start_days {
        return Err(PqError::Analyze(format!(
            "window ({}, {}] must satisfy 0 ≤ start < end",
            query.target.start_days, query.target.end_days
        )));
    }

    // Aggregate column.
    let agg = query.target.agg;
    let value_column = if query.target.target.column == "*" {
        if agg.needs_column() {
            return Err(PqError::Analyze(format!(
                "{agg} requires a column, not `*`"
            )));
        }
        None
    } else {
        let col = target
            .schema()
            .column(&query.target.target.column)
            .ok_or_else(|| {
                PqError::Analyze(format!(
                    "unknown column `{}` in target table `{target_table}`",
                    query.target.target.column
                ))
            })?;
        if agg.needs_numeric() && !col.data_type.is_numeric() {
            return Err(PqError::Analyze(format!(
                "{agg} needs a numeric column; `{}` is {}",
                col.name, col.data_type
            )));
        }
        Some(col.name.clone())
    };

    // Join path target → entity.
    let join_path = fk_path(db, &target_table, &entity_table).ok_or_else(|| {
        PqError::Analyze(format!(
            "no foreign-key path from `{target_table}` to `{entity_table}`"
        ))
    })?;

    // Task type + recommendation item table.
    let mut item_table = None;
    let task = match (agg, &query.target.compare) {
        (Agg::ListDistinct, Some(_)) => {
            return Err(PqError::Analyze(
                "LIST_DISTINCT cannot be compared with a constant".into(),
            ))
        }
        (Agg::ListDistinct, None) => {
            let col = value_column
                .as_deref()
                .ok_or_else(|| PqError::Analyze("LIST_DISTINCT requires a column".into()))?;
            let fk = target.schema().foreign_key_on(col).ok_or_else(|| {
                PqError::Analyze(format!(
                    "LIST_DISTINCT column `{col}` must be a foreign key (the item reference)"
                ))
            })?;
            item_table = Some(fk.referenced_table.clone());
            TaskType::Recommendation
        }
        (Agg::Mode, Some(_)) => {
            return Err(PqError::Analyze(
                "MODE predicts a class; it cannot be compared with a number".into(),
            ))
        }
        (Agg::Mode, None) => {
            let col = value_column
                .as_deref()
                .ok_or_else(|| PqError::Analyze("MODE requires a column".into()))?;
            let def = target.schema().column(col).expect("validated above");
            if def.data_type == DataType::Float {
                return Err(PqError::Analyze(format!(
                    "MODE needs a categorical column; `{col}` is FLOAT"
                )));
            }
            if target.schema().foreign_key_on(col).is_some() {
                return Err(PqError::Analyze(format!(
                    "MODE over the foreign key `{col}` — use LIST_DISTINCT for item ranking"
                )));
            }
            TaskType::Multiclass
        }
        (Agg::Exists, None) => TaskType::Classification,
        (Agg::Exists, Some(_)) => {
            return Err(PqError::Analyze(
                "EXISTS is already boolean; drop the comparison".into(),
            ))
        }
        (_, Some(_)) => TaskType::Classification,
        (_, None) => TaskType::Regression,
    };

    // Filters: WHERE over the entity table, aggregate-WHERE over the
    // target table.
    let filter = match &query.filter {
        Some(c) => Some(compile_filter(db, &entity_table, c)?),
        None => None,
    };
    let target_filter = match &query.target.filter {
        Some(c) => Some(compile_filter(db, &target_table, c)?),
        None => None,
    };

    Ok(AnalyzedQuery {
        query,
        task,
        entity_table,
        target_table,
        join_path,
        value_column,
        item_table,
        filter,
        target_filter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use relgraph_datagen::{generate_clinic, generate_ecommerce, ClinicConfig, EcommerceConfig};

    fn shop() -> Database {
        generate_ecommerce(&EcommerceConfig {
            customers: 20,
            products: 10,
            ..Default::default()
        })
        .unwrap()
    }

    fn run(db: &Database, q: &str) -> PqResult<AnalyzedQuery> {
        analyze(db, parse(q).unwrap())
    }

    #[test]
    fn classification_task_inferred() {
        let db = shop();
        let a = run(
            &db,
            "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id",
        )
        .unwrap();
        assert_eq!(a.task, TaskType::Classification);
        assert_eq!(a.join_path.len(), 1);
        assert_eq!(a.join_path[0].table, "orders");
        assert_eq!(a.join_path[0].fk_column, "customer_id");
        assert!(a.value_column.is_none());
    }

    #[test]
    fn regression_task_inferred() {
        let db = shop();
        let a = run(
            &db,
            "PREDICT SUM(orders.amount, 0, 30) FOR EACH customers.customer_id",
        )
        .unwrap();
        assert_eq!(a.task, TaskType::Regression);
        assert_eq!(a.value_column.as_deref(), Some("amount"));
    }

    #[test]
    fn recommendation_task_inferred() {
        let db = shop();
        let a = run(
            &db,
            "PREDICT LIST_DISTINCT(orders.product_id, 0, 30) FOR EACH customers.customer_id",
        )
        .unwrap();
        assert_eq!(a.task, TaskType::Recommendation);
        assert_eq!(a.item_table.as_deref(), Some("products"));
    }

    #[test]
    fn two_hop_join_path() {
        let db = generate_clinic(&ClinicConfig {
            patients: 15,
            ..Default::default()
        })
        .unwrap();
        let a = run(
            &db,
            "PREDICT COUNT(prescriptions.*, 0, 60) FOR EACH patients.patient_id",
        )
        .unwrap();
        assert_eq!(a.join_path.len(), 2);
        assert_eq!(a.join_path[0].table, "prescriptions");
        assert_eq!(a.join_path[1].table, "visits");
    }

    #[test]
    fn exists_is_classification() {
        let db = shop();
        let a = run(
            &db,
            "PREDICT EXISTS(orders.*, 0, 30) FOR EACH customers.customer_id",
        )
        .unwrap();
        assert_eq!(a.task, TaskType::Classification);
    }

    #[test]
    fn filter_compiles_with_types() {
        let db = shop();
        let a = run(
            &db,
            "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id \
             WHERE region = 'north' AND signup_time < 1000000",
        )
        .unwrap();
        assert!(a.filter.is_some());
    }

    #[test]
    fn rejects_bad_queries() {
        let db = shop();
        for (q, why) in [
            (
                "PREDICT COUNT(nope.*, 0, 30) FOR EACH customers.customer_id",
                "unknown target",
            ),
            (
                "PREDICT COUNT(orders.*, 0, 30) FOR EACH nope.id",
                "unknown entity",
            ),
            (
                "PREDICT COUNT(orders.*, 0, 30) FOR EACH customers.region",
                "non-pk entity column",
            ),
            (
                "PREDICT COUNT(orders.*, 30, 10) FOR EACH customers.customer_id",
                "inverted window",
            ),
            (
                "PREDICT SUM(orders.*, 0, 30) FOR EACH customers.customer_id",
                "sum needs column",
            ),
            (
                "PREDICT SUM(customers.region, 0, 30) FOR EACH customers.customer_id",
                "sum needs numeric",
            ),
            (
                "PREDICT LIST_DISTINCT(orders.amount, 0, 30) FOR EACH customers.customer_id",
                "list_distinct needs fk",
            ),
            (
                "PREDICT EXISTS(orders.*, 0, 30) > 0 FOR EACH customers.customer_id",
                "exists with comparison",
            ),
            (
                "PREDICT COUNT(orders.*, 0, 30) FOR EACH customers.customer_id WHERE nope = 1",
                "unknown filter column",
            ),
            (
                "PREDICT COUNT(orders.*, 0, 30) FOR EACH customers.customer_id WHERE region = 1",
                "filter type mismatch",
            ),
            (
                "PREDICT COUNT(customers.*, 0, 30) FOR EACH products.product_id",
                "no fk path",
            ),
        ] {
            assert!(run(&db, q).is_err(), "should reject: {why}: {q}");
        }
    }

    #[test]
    fn conditional_aggregate_binds_to_target_table() {
        let db = shop();
        let a = run(
            &db,
            "PREDICT COUNT(orders.* WHERE amount > 50, 0, 30) > 0 \
             FOR EACH customers.customer_id",
        )
        .unwrap();
        assert!(a.target_filter.is_some());
        // `amount` is an orders column, not a customers column — it must
        // resolve against the target table, and fail on the entity side.
        assert!(run(
            &db,
            "PREDICT COUNT(orders.*, 0, 30) FOR EACH customers.customer_id WHERE amount > 50",
        )
        .is_err());
        // Unknown target column rejected.
        assert!(run(
            &db,
            "PREDICT COUNT(orders.* WHERE bogus > 1, 0, 30) FOR EACH customers.customer_id",
        )
        .is_err());
    }

    #[test]
    fn target_without_time_column_rejected() {
        let db = shop();
        // `products` has a time column in the generator; use a custom table.
        let mut db2 = Database::new("d");
        db2.create_table(
            relgraph_store::TableSchema::builder("entities")
                .column("id", DataType::Int)
                .primary_key("id")
                .build()
                .unwrap(),
        )
        .unwrap();
        db2.create_table(
            relgraph_store::TableSchema::builder("facts")
                .column("id", DataType::Int)
                .column("entity_id", DataType::Int)
                .primary_key("id")
                .foreign_key("entity_id", "entities")
                .build()
                .unwrap(),
        )
        .unwrap();
        let err = run(&db2, "PREDICT COUNT(facts.*, 0, 30) FOR EACH entities.id").unwrap_err();
        assert!(matches!(err, PqError::Analyze(_)));
        let _ = db;
    }
}
