//! # relgraph-pq — predictive queries for declarative machine learning
//!
//! The paper's primary contribution: a declarative query language whose
//! answers are *predictions* rather than stored facts, compiled end-to-end
//! into an ML pipeline over the database-as-a-graph.
//!
//! ```text
//! PREDICT COUNT(orders.order_id, 0, 30) > 0
//! FOR EACH customers.customer_id
//! WHERE customers.region = 'north'
//! USING model = gnn, epochs = 20
//! ```
//!
//! reads: *for each (north-region) customer, predict whether they will
//! place at least one order in the next 30 days.* The query text alone
//! determines:
//!
//! * the **entity set** (`FOR EACH` table + filter),
//! * the **label computation** (aggregate over a future time window,
//!   joined to the entity through foreign keys),
//! * the **task type** — comparison ⇒ binary classification, bare numeric
//!   aggregate ⇒ regression, `LIST_DISTINCT` over an FK column ⇒
//!   recommendation,
//! * the **training-table construction** (historical anchor times, labels
//!   from each anchor's future, features from its past, temporal
//!   train/val/test split),
//! * and the **model** (temporal hetero-GNN by default; feature-engineered
//!   tabular baselines by request).
//!
//! Pipeline stages, one module each: [`lexer`] → [`parser`] →
//! [`mod@analyze`] → [`traintable`] → [`exec`], with [`mod@explain`]
//! rendering the compiled plan for humans.
//!
//! ## Example
//!
//! ```
//! use relgraph_pq::{execute, ExecConfig};
//! use relgraph_datagen::{generate_ecommerce, EcommerceConfig};
//!
//! let db = generate_ecommerce(&EcommerceConfig {
//!     customers: 50, products: 15, ..Default::default()
//! }).unwrap();
//! let outcome = execute(
//!     &db,
//!     "PREDICT COUNT(orders.order_id, 0, 30) > 0 FOR EACH customers.customer_id \
//!      USING model = trivial",
//!     &ExecConfig::default(),
//! )
//! .unwrap();
//! assert!(outcome.metric("accuracy").is_some());
//! ```

#![warn(missing_docs)]

pub mod analyze;
pub mod ast;
pub mod error;
pub mod exec;
pub mod explain;
pub mod lexer;
pub mod parser;
pub mod traintable;

pub use analyze::{analyze, AnalyzedQuery, TaskType};
pub use ast::{Agg, CmpOp, ColumnRef, Cond, Literal, PredictiveQuery, TargetExpr};
pub use error::{PqError, PqResult};
pub use exec::{
    execute, ExecConfig, FittedNodeModel, ModelChoice, Prediction, PredictionValue, PreparedQuery,
    QueryOutcome,
};
pub use explain::explain;
pub use parser::parse;
pub use traintable::{build_training_table, Example, Label, SplitSpec, TrainingTable};
