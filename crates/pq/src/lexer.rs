//! Tokenizer for the predictive-query language.

use crate::error::{PqError, PqResult};

/// A lexical token with its byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Byte offset of the token's first character in the query text.
    pub position: usize,
}

/// Token kinds. Keywords are case-insensitive; identifiers preserve case.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `PREDICT`.
    Predict,
    /// `FOR`.
    For,
    /// `EACH`.
    Each,
    /// `WHERE`.
    Where,
    /// `USING`.
    Using,
    /// `AND`.
    And,
    /// `OR`.
    Or,
    /// `NOT`.
    Not,
    /// `IS`.
    Is,
    /// `NULL`.
    Null,
    /// `TRUE`.
    True,
    /// `FALSE`.
    False,
    /// Aggregate keyword, stored canonically.
    Aggregate(crate::ast::Agg),
    /// Unquoted name (table, column, option key/value).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Single-quoted string literal (quotes stripped).
    Str(String),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `.`.
    Dot,
    /// `*`.
    Star,
    /// `=`.
    Eq,
    /// `!=` / `<>`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Number(v) => format!("number `{v}`"),
            TokenKind::Str(s) => format!("string '{s}'"),
            TokenKind::Aggregate(a) => format!("aggregate `{a}`"),
            TokenKind::Eof => "end of query".to_string(),
            other => format!("{other:?}").to_uppercase(),
        }
    }
}

fn keyword(word: &str) -> Option<TokenKind> {
    use crate::ast::Agg;
    let up = word.to_ascii_uppercase();
    Some(match up.as_str() {
        "PREDICT" => TokenKind::Predict,
        "FOR" => TokenKind::For,
        "EACH" => TokenKind::Each,
        "WHERE" => TokenKind::Where,
        "USING" => TokenKind::Using,
        "AND" => TokenKind::And,
        "OR" => TokenKind::Or,
        "NOT" => TokenKind::Not,
        "IS" => TokenKind::Is,
        "NULL" => TokenKind::Null,
        "TRUE" => TokenKind::True,
        "FALSE" => TokenKind::False,
        "COUNT" => TokenKind::Aggregate(Agg::Count),
        "COUNT_DISTINCT" => TokenKind::Aggregate(Agg::CountDistinct),
        "SUM" => TokenKind::Aggregate(Agg::Sum),
        "AVG" => TokenKind::Aggregate(Agg::Avg),
        "MIN" => TokenKind::Aggregate(Agg::Min),
        "MAX" => TokenKind::Aggregate(Agg::Max),
        "EXISTS" => TokenKind::Aggregate(Agg::Exists),
        "LIST_DISTINCT" => TokenKind::Aggregate(Agg::ListDistinct),
        "MODE" => TokenKind::Aggregate(Agg::Mode),
        _ => return None,
    })
}

/// Tokenize a query string.
pub fn tokenize(input: &str) -> PqResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    position: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    position: start,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    position: start,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    position: start,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    position: start,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    position: start,
                });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        position: start,
                    });
                    i += 2;
                } else {
                    return Err(PqError::Parse {
                        position: start,
                        message: "expected `!=`".to_string(),
                    });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        position: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        position: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        position: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        position: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        position: start,
                    });
                    i += 1;
                }
            }
            '\'' => {
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    match bytes.get(j) {
                        Some(b'\'') if bytes.get(j + 1) == Some(&b'\'') => {
                            s.push('\'');
                            j += 2;
                        }
                        Some(b'\'') => {
                            j += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            j += 1;
                        }
                        None => {
                            return Err(PqError::Parse {
                                position: start,
                                message: "unterminated string literal".to_string(),
                            })
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    position: start,
                });
                i = j;
            }
            c if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())) =>
            {
                let mut j = i + 1;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_digit()
                        || bytes[j] == b'.'
                        || bytes[j] == b'e'
                        || bytes[j] == b'E'
                        || (j > i
                            && (bytes[j] == b'-' || bytes[j] == b'+')
                            && (bytes[j - 1] == b'e' || bytes[j - 1] == b'E')))
                {
                    j += 1;
                }
                let text = &input[i..j];
                let v: f64 = text.parse().map_err(|_| PqError::Parse {
                    position: start,
                    message: format!("invalid number `{text}`"),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Number(v),
                    position: start,
                });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let word = &input[i..j];
                let kind = keyword(word).unwrap_or_else(|| TokenKind::Ident(word.to_string()));
                tokens.push(Token {
                    kind,
                    position: start,
                });
                i = j;
            }
            other => {
                return Err(PqError::Parse {
                    position: start,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        position: input.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Agg;

    fn kinds(s: &str) -> Vec<TokenKind> {
        tokenize(s).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("predict Count FOR each"),
            vec![
                TokenKind::Predict,
                TokenKind::Aggregate(Agg::Count),
                TokenKind::For,
                TokenKind::Each,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers_strings_idents() {
        assert_eq!(
            kinds("orders 3.5 -2 'a b' 1e3"),
            vec![
                TokenKind::Ident("orders".into()),
                TokenKind::Number(3.5),
                TokenKind::Number(-2.0),
                TokenKind::Str("a b".into()),
                TokenKind::Number(1000.0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= != < <= > >= <>"),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Ne,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn quoted_quote_escapes() {
        assert_eq!(
            kinds("'it''s'"),
            vec![TokenKind::Str("it's".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn punctuation_and_star() {
        assert_eq!(
            kinds("a.b(*, c)"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Dot,
                TokenKind::Ident("b".into()),
                TokenKind::LParen,
                TokenKind::Star,
                TokenKind::Comma,
                TokenKind::Ident("c".into()),
                TokenKind::RParen,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn errors_carry_positions() {
        match tokenize("abc $") {
            Err(PqError::Parse { position, .. }) => assert_eq!(position, 4),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(tokenize("'open").is_err());
        assert!(tokenize("a ! b").is_err());
    }
}
