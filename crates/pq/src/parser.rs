//! Recursive-descent parser for predictive queries.
//!
//! ```text
//! query    := PREDICT target FOR EACH colref [WHERE cond] [USING opts]
//! target   := AGG '(' colref [WHERE cond] ',' num ',' num ')' [cmpop num]
//! colref   := ident '.' (ident | '*')
//! cond     := or ; or := and (OR and)* ; and := unary (AND unary)*
//! unary    := NOT unary | '(' cond ')' | predicate
//! predicate:= ident cmpop literal | ident IS [NOT] NULL
//! opts     := ident '=' (ident | num | string) {',' …}
//! ```

use crate::ast::{CmpOp, ColumnRef, Cond, Literal, PredictiveQuery, TargetExpr};
use crate::error::{PqError, PqResult};
use crate::lexer::{tokenize, Token, TokenKind};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn position(&self) -> usize {
        self.tokens[self.pos].position
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> PqResult<T> {
        Err(PqError::Parse {
            position: self.position(),
            message: message.into(),
        })
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> PqResult<()> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {what}, found {}", self.peek().describe()))
        }
    }

    fn ident(&mut self, what: &str) -> PqResult<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected {what}, found {}", other.describe())),
        }
    }

    fn number(&mut self, what: &str) -> PqResult<f64> {
        match *self.peek() {
            TokenKind::Number(v) => {
                self.bump();
                Ok(v)
            }
            ref other => self.err(format!("expected {what}, found {}", other.describe())),
        }
    }

    fn colref(&mut self) -> PqResult<ColumnRef> {
        let table = self.ident("a table name")?;
        self.expect(&TokenKind::Dot, "`.`")?;
        let column = match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                s
            }
            TokenKind::Star => {
                self.bump();
                "*".to_string()
            }
            other => {
                return self.err(format!(
                    "expected a column name, found {}",
                    other.describe()
                ))
            }
        };
        Ok(ColumnRef { table, column })
    }

    fn cmp_op(&mut self) -> Option<CmpOp> {
        let op = match self.peek() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            _ => return None,
        };
        self.bump();
        Some(op)
    }

    fn target(&mut self) -> PqResult<TargetExpr> {
        let agg = match self.peek().clone() {
            TokenKind::Aggregate(a) => {
                self.bump();
                a
            }
            other => {
                return self.err(format!(
                    "expected an aggregate (COUNT, SUM, …), found {}",
                    other.describe()
                ))
            }
        };
        self.expect(&TokenKind::LParen, "`(`")?;
        let target = self.colref()?;
        let filter = if *self.peek() == TokenKind::Where {
            self.bump();
            Some(self.cond_or()?)
        } else {
            None
        };
        self.expect(&TokenKind::Comma, "`,`")?;
        let start = self.number("the window start (days)")?;
        self.expect(&TokenKind::Comma, "`,`")?;
        let end = self.number("the window end (days)")?;
        self.expect(&TokenKind::RParen, "`)`")?;
        if start.fract() != 0.0 || end.fract() != 0.0 {
            return self.err("window offsets must be whole days");
        }
        let compare = match self.cmp_op() {
            Some(op) => Some((op, self.number("a comparison constant")?)),
            None => None,
        };
        Ok(TargetExpr {
            agg,
            target,
            filter,
            start_days: start as i64,
            end_days: end as i64,
            compare,
        })
    }

    fn literal(&mut self) -> PqResult<Literal> {
        match self.peek().clone() {
            TokenKind::Number(v) => {
                self.bump();
                Ok(Literal::Num(v))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Literal::Str(s))
            }
            TokenKind::True => {
                self.bump();
                Ok(Literal::Bool(true))
            }
            TokenKind::False => {
                self.bump();
                Ok(Literal::Bool(false))
            }
            other => self.err(format!("expected a literal, found {}", other.describe())),
        }
    }

    fn predicate(&mut self) -> PqResult<Cond> {
        let column = self.ident("a column name")?;
        if *self.peek() == TokenKind::Is {
            self.bump();
            let negated = if *self.peek() == TokenKind::Not {
                self.bump();
                true
            } else {
                false
            };
            self.expect(&TokenKind::Null, "NULL")?;
            return Ok(Cond::IsNull { column, negated });
        }
        let Some(op) = self.cmp_op() else {
            return self.err(format!(
                "expected a comparison operator, found {}",
                self.peek().describe()
            ));
        };
        let value = self.literal()?;
        Ok(Cond::Cmp { column, op, value })
    }

    fn cond_unary(&mut self) -> PqResult<Cond> {
        match self.peek() {
            TokenKind::Not => {
                self.bump();
                Ok(Cond::Not(Box::new(self.cond_unary()?)))
            }
            TokenKind::LParen => {
                self.bump();
                let c = self.cond_or()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(c)
            }
            _ => self.predicate(),
        }
    }

    fn cond_and(&mut self) -> PqResult<Cond> {
        let mut left = self.cond_unary()?;
        while *self.peek() == TokenKind::And {
            self.bump();
            let right = self.cond_unary()?;
            left = Cond::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn cond_or(&mut self) -> PqResult<Cond> {
        let mut left = self.cond_and()?;
        while *self.peek() == TokenKind::Or {
            self.bump();
            let right = self.cond_and()?;
            left = Cond::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn options(&mut self) -> PqResult<Vec<(String, String)>> {
        let mut opts = Vec::new();
        loop {
            let key = self.ident("an option name")?;
            self.expect(&TokenKind::Eq, "`=`")?;
            let value = match self.peek().clone() {
                TokenKind::Ident(s) => {
                    self.bump();
                    s
                }
                TokenKind::Number(v) => {
                    self.bump();
                    if v.fract() == 0.0 {
                        format!("{}", v as i64)
                    } else {
                        format!("{v}")
                    }
                }
                TokenKind::Str(s) => {
                    self.bump();
                    s
                }
                TokenKind::True => {
                    self.bump();
                    "true".to_string()
                }
                TokenKind::False => {
                    self.bump();
                    "false".to_string()
                }
                // Aggregate keywords double as plain option values
                // (`USING agg = sum`).
                TokenKind::Aggregate(a) => {
                    self.bump();
                    a.keyword().to_ascii_lowercase()
                }
                other => {
                    return self.err(format!(
                        "expected an option value, found {}",
                        other.describe()
                    ))
                }
            };
            opts.push((key.to_ascii_lowercase(), value));
            if *self.peek() == TokenKind::Comma {
                self.bump();
            } else {
                break;
            }
        }
        Ok(opts)
    }

    fn query(&mut self) -> PqResult<PredictiveQuery> {
        self.expect(&TokenKind::Predict, "PREDICT")?;
        let target = self.target()?;
        self.expect(&TokenKind::For, "FOR")?;
        self.expect(&TokenKind::Each, "EACH")?;
        let entity = self.colref()?;
        let filter = if *self.peek() == TokenKind::Where {
            self.bump();
            Some(self.cond_or()?)
        } else {
            None
        };
        let options = if *self.peek() == TokenKind::Using {
            self.bump();
            self.options()?
        } else {
            Vec::new()
        };
        if *self.peek() != TokenKind::Eof {
            return self.err(format!("unexpected trailing {}", self.peek().describe()));
        }
        Ok(PredictiveQuery {
            target,
            entity,
            filter,
            options,
        })
    }
}

/// Parse a predictive query.
pub fn parse(input: &str) -> PqResult<PredictiveQuery> {
    let tokens = tokenize(input)?;
    Parser { tokens, pos: 0 }.query()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Agg;

    #[test]
    fn minimal_query() {
        let q = parse("PREDICT COUNT(orders.*, 0, 30) FOR EACH customers.customer_id").unwrap();
        assert_eq!(q.target.agg, Agg::Count);
        assert_eq!(q.target.target.table, "orders");
        assert_eq!(q.target.target.column, "*");
        assert_eq!(q.target.start_days, 0);
        assert_eq!(q.target.end_days, 30);
        assert!(q.target.compare.is_none());
        assert_eq!(q.entity.table, "customers");
        assert!(q.filter.is_none());
        assert!(q.options.is_empty());
    }

    #[test]
    fn classification_via_comparison() {
        let q = parse("PREDICT COUNT(orders.order_id, 0, 30) > 0 FOR EACH customers.customer_id")
            .unwrap();
        assert_eq!(q.target.compare, Some((CmpOp::Gt, 0.0)));
    }

    #[test]
    fn where_clause_with_precedence() {
        let q = parse(
            "PREDICT SUM(orders.amount, 0, 7) FOR EACH customers.customer_id \
             WHERE region = 'north' AND age > 20 OR NOT vip = true",
        )
        .unwrap();
        // AND binds tighter than OR.
        match q.filter.unwrap() {
            Cond::Or(left, right) => {
                assert!(matches!(*left, Cond::And(_, _)));
                assert!(matches!(*right, Cond::Not(_)));
            }
            other => panic!("wrong tree: {other:?}"),
        }
    }

    #[test]
    fn is_null_predicates() {
        let q = parse(
            "PREDICT EXISTS(orders.*, 0, 30) FOR EACH customers.customer_id \
             WHERE email IS NOT NULL AND phone IS NULL",
        )
        .unwrap();
        let f = q.filter.unwrap().to_string();
        assert!(f.contains("email IS NOT NULL"));
        assert!(f.contains("phone IS NULL"));
    }

    #[test]
    fn using_options() {
        let q = parse(
            "PREDICT COUNT(orders.*, 0, 30) FOR EACH customers.customer_id \
             USING model = gbdt, epochs = 20, lr = 0.05",
        )
        .unwrap();
        assert_eq!(
            q.options,
            vec![
                ("model".to_string(), "gbdt".to_string()),
                ("epochs".to_string(), "20".to_string()),
                ("lr".to_string(), "0.05".to_string())
            ]
        );
    }

    #[test]
    fn parse_print_parse_fixpoint() {
        let texts = [
            "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id",
            "PREDICT SUM(orders.amount, 7, 37) FOR EACH customers.customer_id WHERE region = 'north'",
            "PREDICT LIST_DISTINCT(orders.product_id, 0, 14) FOR EACH customers.customer_id USING model = gnn",
        ];
        for t in texts {
            let q1 = parse(t).unwrap();
            let q2 = parse(&q1.to_string()).unwrap();
            assert_eq!(q1, q2, "fixpoint failed for `{t}`");
        }
    }

    #[test]
    fn error_cases() {
        assert!(parse("").is_err());
        assert!(parse("SELECT * FROM x").is_err());
        assert!(parse("PREDICT COUNT(orders.*, 0) FOR EACH c.id").is_err());
        assert!(parse("PREDICT COUNT(orders.*, 0, 30) FOR EACH c.id extra").is_err());
        assert!(parse("PREDICT COUNT(orders.*, 0.5, 30) FOR EACH c.id").is_err());
        assert!(parse("PREDICT COUNT(orders.*, 0, 30) WHERE x = 1").is_err());
        // Errors carry positions.
        match parse("PREDICT BOGUS(orders.*, 0, 30) FOR EACH c.id") {
            Err(PqError::Parse { position, .. }) => assert_eq!(position, 8),
            other => panic!("{other:?}"),
        }
    }
}
