//! Abstract syntax of predictive queries.

use std::fmt;

pub use relgraph_store::CmpOp;

/// `table.column` reference. `column == "*"` is allowed for `COUNT`/`EXISTS`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// Table name.
    pub table: String,
    /// Column name (`*` for row-counting aggregates).
    pub column: String,
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// Aggregates usable in the `PREDICT` target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Row count in the window.
    Count,
    /// Distinct values of a column in the window.
    CountDistinct,
    /// Sum of a numeric column.
    Sum,
    /// Mean of a numeric column.
    Avg,
    /// Minimum of a numeric column.
    Min,
    /// Maximum of a numeric column.
    Max,
    /// Whether any row falls in the window.
    Exists,
    /// Distinct FK values in the window — defines a recommendation task.
    ListDistinct,
    /// Most frequent value of a categorical column in the window — defines
    /// a multiclass classification task.
    Mode,
}

impl Agg {
    /// Keyword spelling.
    pub fn keyword(self) -> &'static str {
        match self {
            Agg::Count => "COUNT",
            Agg::CountDistinct => "COUNT_DISTINCT",
            Agg::Sum => "SUM",
            Agg::Avg => "AVG",
            Agg::Min => "MIN",
            Agg::Max => "MAX",
            Agg::Exists => "EXISTS",
            Agg::ListDistinct => "LIST_DISTINCT",
            Agg::Mode => "MODE",
        }
    }

    /// Whether this aggregate needs a real (non-`*`) column.
    pub fn needs_column(self) -> bool {
        !matches!(self, Agg::Count | Agg::Exists)
    }

    /// Whether this aggregate requires a numeric column.
    pub fn needs_numeric(self) -> bool {
        matches!(self, Agg::Sum | Agg::Avg | Agg::Min | Agg::Max)
    }
}

impl fmt::Display for Agg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// The `PREDICT` target: an aggregate over a relative future window, with
/// an optional comparison turning it into a binary label.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetExpr {
    /// The aggregate function.
    pub agg: Agg,
    /// The aggregated `table.column`.
    pub target: ColumnRef,
    /// Optional conditional-aggregate filter over the *target table's*
    /// columns: `COUNT(orders.* WHERE amount > 50, 0, 30)`.
    pub filter: Option<Cond>,
    /// Window start offset in days (exclusive bound at `anchor + start`).
    pub start_days: i64,
    /// Window end offset in days (inclusive bound at `anchor + end`).
    pub end_days: i64,
    /// `> 0`, `<= 5`, … ⇒ binary classification.
    pub compare: Option<(CmpOp, f64)>,
}

impl fmt::Display for TargetExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}", self.agg, self.target)?;
        if let Some(c) = &self.filter {
            write!(f, " WHERE {c}")?;
        }
        write!(f, ", {}, {})", self.start_days, self.end_days)?;
        if let Some((op, v)) = &self.compare {
            write!(f, " {op} {v}")?;
        }
        Ok(())
    }
}

/// Literal values in `WHERE`.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Numeric literal.
    Num(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Num(v) => write!(f, "{v}"),
            Literal::Str(s) => write!(f, "'{s}'"),
            Literal::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// Boolean filter over entity-table columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// `column <op> literal`.
    Cmp {
        /// Column name in the filtered table.
        column: String,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand literal.
        value: Literal,
    },
    /// `column IS [NOT] NULL`.
    IsNull {
        /// Column name in the filtered table.
        column: String,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// Both conditions hold.
    And(Box<Cond>, Box<Cond>),
    /// Either condition holds.
    Or(Box<Cond>, Box<Cond>),
    /// The condition does not hold.
    Not(Box<Cond>),
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::Cmp { column, op, value } => write!(f, "{column} {op} {value}"),
            Cond::IsNull { column, negated } => {
                write!(f, "{column} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Cond::And(a, b) => write!(f, "({a} AND {b})"),
            Cond::Or(a, b) => write!(f, "({a} OR {b})"),
            Cond::Not(c) => write!(f, "(NOT {c})"),
        }
    }
}

/// A complete predictive query.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictiveQuery {
    /// What to predict.
    pub target: TargetExpr,
    /// `FOR EACH table.primary_key`.
    pub entity: ColumnRef,
    /// Optional entity filter (`WHERE …`).
    pub filter: Option<Cond>,
    /// `USING key = value, …` (model/hyper-parameter overrides).
    pub options: Vec<(String, String)>,
}

impl fmt::Display for PredictiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PREDICT {} FOR EACH {}", self.target, self.entity)?;
        if let Some(c) = &self.filter {
            write!(f, " WHERE {c}")?;
        }
        if !self.options.is_empty() {
            write!(f, " USING ")?;
            for (i, (k, v)) in self.options.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{k} = {v}")?;
            }
        }
        Ok(())
    }
}
