//! Training-table construction: turning a predictive query into supervised
//! examples without temporal leakage.
//!
//! For a set of historical *anchor times*, every entity alive at an anchor
//! (and passing the query's filter) becomes one example whose label is the
//! query aggregate computed over the window `(anchor + start, anchor + end]`
//! — i.e. the entity's *future* relative to the anchor. Models may only use
//! data from `≤ anchor` (enforced downstream by the temporal sampler and
//! the feature engineer).
//!
//! The split is **temporal**: earlier anchors train, the middle validates,
//! the latest anchors test — matching deployment, where a model trained on
//! the past predicts the future.

use std::collections::{HashMap, HashSet};

use rayon::prelude::*;
use relgraph_store::{Database, Timestamp, SECONDS_PER_DAY};

use crate::analyze::{AnalyzedQuery, TaskType};
use crate::ast::Agg;
use crate::error::{PqError, PqResult};

/// A label: scalar for classification/regression, item-row set for
/// recommendation.
#[derive(Debug, Clone, PartialEq)]
pub enum Label {
    /// Numeric label (classification targets use `0.0`/`1.0`).
    Scalar(f64),
    /// Row indices in the item table (future positives).
    Items(Vec<usize>),
    /// Most frequent categorical value in the window (MODE).
    Class(String),
}

impl Label {
    /// Scalar view (panics on other variants; callers know the task type).
    pub fn scalar(&self) -> f64 {
        match self {
            Label::Scalar(v) => *v,
            other => panic!("label {other:?} has no scalar view"),
        }
    }

    /// Item view.
    pub fn items(&self) -> &[usize] {
        match self {
            Label::Items(v) => v,
            other => panic!("label {other:?} has no item view"),
        }
    }

    /// Class view (MODE labels).
    pub fn class(&self) -> &str {
        match self {
            Label::Class(c) => c,
            other => panic!("label {other:?} has no class view"),
        }
    }
}

/// One supervised example.
#[derive(Debug, Clone, PartialEq)]
pub struct Example {
    /// Row index in the entity table.
    pub entity_row: usize,
    /// Anchor time (features come from `≤ anchor`).
    pub anchor: Timestamp,
    /// Label computed from `(anchor+start, anchor+end]`.
    pub label: Label,
}

/// Temporal split fractions (test takes the remainder).
#[derive(Debug, Clone, Copy)]
pub struct SplitSpec {
    /// Fraction of anchors whose examples train the model.
    pub train_frac: f64,
    /// Fraction of anchors used for validation/early stopping.
    pub val_frac: f64,
}

impl Default for SplitSpec {
    fn default() -> Self {
        SplitSpec {
            train_frac: 0.6,
            val_frac: 0.2,
        }
    }
}

/// Configuration for [`build_training_table`].
#[derive(Debug, Clone)]
pub struct TrainTableConfig {
    /// Number of anchor times.
    pub num_anchors: usize,
    /// Days of history required before the first anchor.
    pub min_history_days: i64,
    /// Temporal split fractions over anchors.
    pub split: SplitSpec,
}

impl Default for TrainTableConfig {
    fn default() -> Self {
        TrainTableConfig {
            num_anchors: 8,
            min_history_days: 30,
            split: SplitSpec::default(),
        }
    }
}

/// The supervised dataset a query compiles into.
#[derive(Debug, Clone)]
pub struct TrainingTable {
    /// Training examples (earliest anchors).
    pub train: Vec<Example>,
    /// Validation examples (middle anchors).
    pub val: Vec<Example>,
    /// Test examples (latest anchors).
    pub test: Vec<Example>,
    /// All anchors, ascending; train anchors precede val precede test.
    pub anchors: Vec<Timestamp>,
    /// Task type copied from the analyzed query.
    pub task: TaskType,
}

impl TrainingTable {
    /// Total examples across splits.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// True if no examples were generated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Positive rate over a split (classification only).
    pub fn positive_rate(examples: &[Example]) -> f64 {
        if examples.is_empty() {
            return 0.0;
        }
        examples.iter().filter(|e| e.label.scalar() > 0.5).count() as f64 / examples.len() as f64
    }
}

/// Map every target-table row to its entity row by following the FK chain.
fn map_target_rows_to_entity(db: &Database, aq: &AnalyzedQuery) -> PqResult<Vec<Option<usize>>> {
    let target = db.table(&aq.target_table)?;
    if aq.join_path.is_empty() {
        return Ok((0..target.len()).map(Some).collect());
    }
    // current[r] = row index in the "current" table for target row r.
    let mut current: Vec<Option<usize>> = (0..target.len()).map(Some).collect();
    let mut current_table = aq.target_table.clone();
    for step in &aq.join_path {
        debug_assert_eq!(step.table, current_table);
        let table = db.table(&step.table)?;
        let fk = table
            .schema()
            .foreign_key_on(&step.fk_column)
            .ok_or_else(|| {
                PqError::Analyze(format!(
                    "internal: `{}`.`{}` lost its foreign key",
                    step.table, step.fk_column
                ))
            })?;
        let next = db.table(&fk.referenced_table)?;
        let col = table
            .column_by_name(&step.fk_column)
            .expect("fk column exists");
        current = current
            .into_iter()
            .map(|row| {
                let r = row?;
                let key = col.get(r);
                if key.is_null() {
                    None
                } else {
                    next.row_by_key(&key)
                }
            })
            .collect();
        current_table = fk.referenced_table.clone();
    }
    Ok(current)
}

/// Per-target-row payload for label computation.
enum Payload {
    None,
    Value(f64),
    Key(String),
    Item(usize),
}

/// Build the training table for an analyzed query.
pub fn build_training_table(
    db: &Database,
    aq: &AnalyzedQuery,
    cfg: &TrainTableConfig,
) -> PqResult<TrainingTable> {
    let _span = relgraph_obs::span("pq.traintable");
    let entity = db.table(&aq.entity_table)?;
    let target = db.table(&aq.target_table)?;
    let (t0, t1) = db
        .time_span()
        .ok_or_else(|| PqError::TrainingTable("database has no timestamps".into()))?;

    // Anchor schedule.
    let end_offset = aq.query.target.end_days * SECONDS_PER_DAY;
    let first = t0 + cfg.min_history_days * SECONDS_PER_DAY;
    let last = t1 - end_offset;
    if cfg.num_anchors == 0 {
        return Err(PqError::TrainingTable(
            "num_anchors must be positive".into(),
        ));
    }
    if last <= first {
        return Err(PqError::TrainingTable(format!(
            "time span too short: first possible anchor {first} is not before last {last} \
             (need ≥ {} days of history plus the {}-day window)",
            cfg.min_history_days, aq.query.target.end_days
        )));
    }
    let anchors: Vec<Timestamp> = if cfg.num_anchors == 1 {
        vec![last]
    } else {
        (0..cfg.num_anchors)
            .map(|i| first + (last - first) * i as i64 / (cfg.num_anchors as i64 - 1))
            .collect()
    };

    // Entity → time-sorted (target time, payload).
    let target_to_entity = map_target_rows_to_entity(db, aq)?;
    let value_col = aq.value_column.as_ref().map(|c| {
        target
            .column_by_name(c)
            .expect("analyzer validated the value column")
    });
    let item_table = aq.item_table.as_ref().map(|t| db.table(t)).transpose()?;
    let mut by_entity: HashMap<usize, Vec<(Timestamp, usize)>> = HashMap::new();
    for (row, ent) in target_to_entity.iter().enumerate() {
        let Some(ent) = ent else { continue };
        let Some(t) = target.row_timestamp(row) else {
            continue;
        };
        if let Some(p) = &aq.target_filter {
            if !p
                .eval(target, row)
                .map_err(|e| PqError::Analyze(e.to_string()))?
            {
                continue; // conditional aggregate: row doesn't qualify
            }
        }
        by_entity.entry(*ent).or_default().push((t, row));
    }
    for v in by_entity.values_mut() {
        v.sort_unstable();
    }
    let payload = |row: usize| -> Payload {
        match (&aq.query.target.agg, &value_col) {
            (Agg::Count | Agg::Exists, _) => Payload::None,
            (Agg::ListDistinct, Some(col)) => {
                let key = col.get(row);
                if key.is_null() {
                    return Payload::None;
                }
                match item_table.and_then(|it| it.row_by_key(&key)) {
                    Some(r) => Payload::Item(r),
                    None => Payload::None,
                }
            }
            (Agg::Mode, Some(col)) => {
                let v = col.get(row);
                if v.is_null() {
                    Payload::None
                } else {
                    Payload::Key(v.to_string())
                }
            }
            (Agg::CountDistinct, Some(col)) => {
                let v = col.get(row);
                if v.is_null() {
                    Payload::None
                } else {
                    Payload::Key(v.group_key())
                }
            }
            (_, Some(col)) => match col.get_f64(row) {
                Some(v) => Payload::Value(v),
                None => Payload::None,
            },
            (_, None) => Payload::None,
        }
    };

    // Eligible entities (filter evaluated once; aliveness is per anchor).
    let filter_pass: Vec<bool> = match &aq.filter {
        Some(p) => (0..entity.len())
            .map(|i| p.eval(entity, i))
            .collect::<Result<_, _>>()
            .map_err(|e| PqError::Analyze(e.to_string()))?,
        None => vec![true; entity.len()],
    };

    // Emit examples per anchor. Anchors are independent (each reads only
    // the pre-sorted per-entity event lists), so they run in parallel and
    // collect back in anchor order — identical output to the serial loop.
    let start_offset = aq.query.target.start_days * SECONDS_PER_DAY;
    let empty: Vec<(Timestamp, usize)> = Vec::new();
    let emit_anchor = |anchor: Timestamp| {
        let mut examples = Vec::new();
        for (erow, &pass) in filter_pass.iter().enumerate() {
            if !pass {
                continue;
            }
            if let Some(et) = entity.row_timestamp(erow) {
                if et > anchor {
                    continue; // entity does not exist yet
                }
            }
            let rows = by_entity.get(&erow).unwrap_or(&empty);
            let lo = rows.partition_point(|&(t, _)| t <= anchor + start_offset);
            let hi = rows.partition_point(|&(t, _)| t <= anchor + end_offset);
            let window = &rows[lo..hi];
            let label = match aq.query.target.agg {
                Agg::Count => Some(window.len() as f64),
                Agg::Exists => Some(if window.is_empty() { 0.0 } else { 1.0 }),
                Agg::CountDistinct => {
                    let mut set = HashSet::new();
                    for &(_, r) in window {
                        if let Payload::Key(k) = payload(r) {
                            set.insert(k);
                        }
                    }
                    Some(set.len() as f64)
                }
                Agg::Sum => Some(
                    window
                        .iter()
                        .filter_map(|&(_, r)| match payload(r) {
                            Payload::Value(v) => Some(v),
                            _ => None,
                        })
                        .sum(),
                ),
                Agg::Avg | Agg::Min | Agg::Max => {
                    let vals: Vec<f64> = window
                        .iter()
                        .filter_map(|&(_, r)| match payload(r) {
                            Payload::Value(v) => Some(v),
                            _ => None,
                        })
                        .collect();
                    if vals.is_empty() {
                        None // aggregate undefined: skip this example
                    } else {
                        Some(match aq.query.target.agg {
                            Agg::Avg => vals.iter().sum::<f64>() / vals.len() as f64,
                            Agg::Min => vals.iter().cloned().fold(f64::INFINITY, f64::min),
                            _ => vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                        })
                    }
                }
                Agg::Mode => {
                    // Most frequent value; ties break to the smallest
                    // string for determinism. Empty windows are skipped.
                    let mut counts: HashMap<String, usize> = HashMap::new();
                    for &(_, r) in window {
                        if let Payload::Key(k) = payload(r) {
                            *counts.entry(k).or_insert(0) += 1;
                        }
                    }
                    let best = counts
                        .into_iter()
                        .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)));
                    if let Some((class, _)) = best {
                        examples.push(Example {
                            entity_row: erow,
                            anchor,
                            label: Label::Class(class),
                        });
                    }
                    continue;
                }
                Agg::ListDistinct => {
                    let mut seen = HashSet::new();
                    let mut items = Vec::new();
                    for &(_, r) in window {
                        if let Payload::Item(i) = payload(r) {
                            if seen.insert(i) {
                                items.push(i);
                            }
                        }
                    }
                    per_anchor_push_items(&mut examples, erow, anchor, items);
                    continue;
                }
            };
            let Some(mut v) = label else { continue };
            if let Some((op, c)) = &aq.query.target.compare {
                let ord = v.partial_cmp(c).unwrap_or(std::cmp::Ordering::Equal);
                v = if op.eval(ord) { 1.0 } else { 0.0 };
            }
            examples.push(Example {
                entity_row: erow,
                anchor,
                label: Label::Scalar(v),
            });
        }
        examples
    };
    // Each anchor scans every entity once, so `anchors × entities` is the
    // total work. Below the threshold the fan-out's spawn/collect overhead
    // outweighs the win; run the identical closure serially instead.
    const PAR_WORK_THRESHOLD: usize = 32_768;
    let work = anchors.len().saturating_mul(entity.len());
    let per_anchor: Vec<Vec<Example>> = if work < PAR_WORK_THRESHOLD {
        anchors.iter().map(|&a| emit_anchor(a)).collect()
    } else {
        anchors.par_iter().map(|&a| emit_anchor(a)).collect()
    };

    // Temporal split over anchors.
    let n = anchors.len();
    let n_train = ((n as f64 * cfg.split.train_frac).round() as usize).clamp(1, n);
    let n_val = ((n as f64 * cfg.split.val_frac).round() as usize).min(n - n_train);
    let mut table = TrainingTable {
        train: Vec::new(),
        val: Vec::new(),
        test: Vec::new(),
        anchors: anchors.clone(),
        task: aq.task,
    };
    for (i, examples) in per_anchor.into_iter().enumerate() {
        let bucket = if i < n_train {
            &mut table.train
        } else if i < n_train + n_val {
            &mut table.val
        } else {
            &mut table.test
        };
        bucket.extend(examples);
    }
    if table.train.is_empty() {
        return Err(PqError::TrainingTable(
            "no training examples were generated".into(),
        ));
    }
    if relgraph_obs::enabled() {
        relgraph_obs::add("pq.traintable.anchors", anchors.len() as u64);
        relgraph_obs::add("pq.traintable.train_examples", table.train.len() as u64);
        relgraph_obs::add("pq.traintable.val_examples", table.val.len() as u64);
        relgraph_obs::add("pq.traintable.test_examples", table.test.len() as u64);
        // Leakage-window stats: the label window each anchor reads from,
        // in days, and the anchor schedule's span.
        relgraph_obs::gauge(
            "pq.traintable.window_start_days",
            aq.query.target.start_days as f64,
        );
        relgraph_obs::gauge(
            "pq.traintable.window_end_days",
            aq.query.target.end_days as f64,
        );
        relgraph_obs::gauge(
            "pq.traintable.anchor_span_days",
            (last - first) as f64 / SECONDS_PER_DAY as f64,
        );
    }
    Ok(table)
}

fn per_anchor_push_items(
    examples: &mut Vec<Example>,
    entity_row: usize,
    anchor: Timestamp,
    items: Vec<usize>,
) {
    examples.push(Example {
        entity_row,
        anchor,
        label: Label::Items(items),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::parser::parse;
    use relgraph_datagen::{generate_ecommerce, EcommerceConfig};

    fn shop() -> Database {
        generate_ecommerce(&EcommerceConfig {
            customers: 40,
            products: 15,
            seed: 2,
            ..Default::default()
        })
        .unwrap()
    }

    fn table_for(db: &Database, q: &str, cfg: &TrainTableConfig) -> TrainingTable {
        let aq = analyze(db, parse(q).unwrap()).unwrap();
        build_training_table(db, &aq, cfg).unwrap()
    }

    #[test]
    fn builds_classification_table() {
        let db = shop();
        let t = table_for(
            &db,
            "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id",
            &TrainTableConfig::default(),
        );
        assert_eq!(t.task, TaskType::Classification);
        assert!(!t.train.is_empty());
        assert!(!t.test.is_empty());
        // Labels are 0/1.
        for e in t.train.iter().chain(&t.test) {
            let v = e.label.scalar();
            assert!(v == 0.0 || v == 1.0);
        }
        // Both classes appear (the generator plants heterogeneous activity).
        let rate = TrainingTable::positive_rate(&t.train);
        assert!(rate > 0.05 && rate < 0.95, "positive rate {rate}");
    }

    #[test]
    fn anchors_ascend_and_split_temporally() {
        let db = shop();
        let t = table_for(
            &db,
            "PREDICT COUNT(orders.*, 0, 30) FOR EACH customers.customer_id",
            &TrainTableConfig::default(),
        );
        for w in t.anchors.windows(2) {
            assert!(w[0] < w[1]);
        }
        let max_train = t.train.iter().map(|e| e.anchor).max().unwrap();
        let min_test = t.test.iter().map(|e| e.anchor).min().unwrap();
        assert!(max_train < min_test, "test anchors must be strictly later");
    }

    #[test]
    fn labels_match_future_window_only() {
        // Hand-built DB: one customer with orders on days 10, 40, 70.
        use relgraph_store::{DataType, Row, TableSchema, Value};
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::builder("customers")
                .column("customer_id", DataType::Int)
                .column("signup", DataType::Timestamp)
                .primary_key("customer_id")
                .time_column("signup")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("orders")
                .column("order_id", DataType::Int)
                .column("customer_id", DataType::Int)
                .column("placed_at", DataType::Timestamp)
                .primary_key("order_id")
                .time_column("placed_at")
                .foreign_key("customer_id", "customers")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert("customers", Row::new().push(1i64).push(Value::Timestamp(0)))
            .unwrap();
        for (oid, day) in [(1i64, 10i64), (2, 40), (3, 70)] {
            db.insert(
                "orders",
                Row::new()
                    .push(oid)
                    .push(1i64)
                    .push(Value::Timestamp(day * SECONDS_PER_DAY)),
            )
            .unwrap();
        }
        let aq = analyze(
            &db,
            parse("PREDICT COUNT(orders.*, 0, 30) FOR EACH customers.customer_id").unwrap(),
        )
        .unwrap();
        let cfg = TrainTableConfig {
            num_anchors: 2,
            min_history_days: 5,
            split: SplitSpec {
                train_frac: 0.5,
                val_frac: 0.0,
            },
        };
        let t = build_training_table(&db, &aq, &cfg).unwrap();
        // Anchors: day 5 and day 40. Window (anchor, anchor+30]:
        // anchor day 5 → order day 10 only → 1; anchor day 40 → day 70 → 1.
        assert_eq!(t.anchors, vec![5 * SECONDS_PER_DAY, 40 * SECONDS_PER_DAY]);
        assert_eq!(t.train.len(), 1);
        assert_eq!(t.train[0].label, Label::Scalar(1.0));
        assert_eq!(t.test.len(), 1);
        // Day-40 order is exactly at the anchor: excluded (strictly future).
        assert_eq!(t.test[0].label, Label::Scalar(1.0));
    }

    #[test]
    fn filter_restricts_entities() {
        let db = shop();
        let all = table_for(
            &db,
            "PREDICT COUNT(orders.*, 0, 30) FOR EACH customers.customer_id",
            &TrainTableConfig::default(),
        );
        let north = table_for(
            &db,
            "PREDICT COUNT(orders.*, 0, 30) FOR EACH customers.customer_id \
             WHERE region = 'north'",
            &TrainTableConfig::default(),
        );
        assert!(north.len() < all.len());
        assert!(!north.is_empty());
    }

    #[test]
    fn recommendation_labels_are_item_rows() {
        let db = shop();
        let t = table_for(
            &db,
            "PREDICT LIST_DISTINCT(orders.product_id, 0, 60) FOR EACH customers.customer_id",
            &TrainTableConfig::default(),
        );
        assert_eq!(t.task, TaskType::Recommendation);
        let n_products = db.table("products").unwrap().len();
        let mut any_nonempty = false;
        for e in &t.train {
            for &item in e.label.items() {
                assert!(item < n_products);
                any_nonempty = true;
            }
        }
        assert!(any_nonempty, "expected some future purchases");
    }

    #[test]
    fn too_short_timespan_errors() {
        let db = shop();
        let aq = analyze(
            &db,
            parse("PREDICT COUNT(orders.*, 0, 10000) FOR EACH customers.customer_id").unwrap(),
        )
        .unwrap();
        assert!(matches!(
            build_training_table(&db, &aq, &TrainTableConfig::default()),
            Err(PqError::TrainingTable(_))
        ));
    }

    #[test]
    fn conditional_aggregate_filters_target_rows() {
        let db = shop();
        let all = table_for(
            &db,
            "PREDICT COUNT(orders.*, 0, 60) FOR EACH customers.customer_id",
            &TrainTableConfig::default(),
        );
        let big = table_for(
            &db,
            "PREDICT COUNT(orders.* WHERE amount > 50, 0, 60) FOR EACH customers.customer_id",
            &TrainTableConfig::default(),
        );
        assert_eq!(all.len(), big.len(), "same entities and anchors");
        // Conditional counts are pointwise ≤ unconditional counts and
        // strictly smaller somewhere.
        let mut strictly_smaller = false;
        for (a, b) in all.train.iter().zip(&big.train) {
            assert_eq!(a.entity_row, b.entity_row);
            assert!(b.label.scalar() <= a.label.scalar());
            if b.label.scalar() < a.label.scalar() {
                strictly_smaller = true;
            }
        }
        assert!(strictly_smaller, "filter should exclude some orders");
    }

    #[test]
    fn entities_born_after_anchor_are_excluded() {
        let db = shop();
        let t = table_for(
            &db,
            "PREDICT COUNT(orders.*, 0, 30) FOR EACH customers.customer_id",
            &TrainTableConfig::default(),
        );
        let customers = db.table("customers").unwrap();
        for e in t.train.iter().chain(&t.val).chain(&t.test) {
            let signup = customers.row_timestamp(e.entity_row).unwrap();
            assert!(signup <= e.anchor, "entity predates its anchor");
        }
    }
}
