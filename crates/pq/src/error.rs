//! Error types for the predictive-query pipeline.

use std::fmt;

/// Result alias for predictive-query operations.
pub type PqResult<T> = Result<T, PqError>;

/// Errors across the whole compile-and-execute pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PqError {
    /// Lexing/parsing failure with byte position.
    Parse {
        /// Byte offset of the offending character/token.
        position: usize,
        /// What went wrong.
        message: String,
    },
    /// Query is well-formed but inconsistent with the schema.
    Analyze(String),
    /// Training-table construction failed (no anchors, no labels, …).
    TrainingTable(String),
    /// Execution-layer failure (wraps the lower crates' messages).
    Execution(String),
}

impl fmt::Display for PqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PqError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            PqError::Analyze(m) => write!(f, "semantic error: {m}"),
            PqError::TrainingTable(m) => write!(f, "training-table error: {m}"),
            PqError::Execution(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for PqError {}

impl From<relgraph_store::StoreError> for PqError {
    fn from(e: relgraph_store::StoreError) -> Self {
        PqError::Execution(format!("store: {e}"))
    }
}

impl From<relgraph_db2graph::ConvertError> for PqError {
    fn from(e: relgraph_db2graph::ConvertError) -> Self {
        PqError::Execution(format!("db2graph: {e}"))
    }
}

impl From<relgraph_gnn::GnnError> for PqError {
    fn from(e: relgraph_gnn::GnnError) -> Self {
        PqError::Execution(format!("gnn: {e}"))
    }
}

impl From<relgraph_baselines::BaselineError> for PqError {
    fn from(e: relgraph_baselines::BaselineError) -> Self {
        PqError::Execution(format!("baseline: {e}"))
    }
}
