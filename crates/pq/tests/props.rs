//! Property-based tests for the predictive-query language.

use proptest::prelude::*;
use relgraph_pq::{parse, Agg, CmpOp, ColumnRef, Cond, Literal, PredictiveQuery, TargetExpr};

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,10}".prop_filter("avoid keywords", |s| {
        !matches!(
            s.to_ascii_uppercase().as_str(),
            "PREDICT"
                | "FOR"
                | "EACH"
                | "WHERE"
                | "USING"
                | "AND"
                | "OR"
                | "NOT"
                | "IS"
                | "NULL"
                | "TRUE"
                | "FALSE"
                | "COUNT"
                | "SUM"
                | "AVG"
                | "MIN"
                | "MAX"
                | "EXISTS"
                | "COUNT_DISTINCT"
                | "LIST_DISTINCT"
        )
    })
}

fn agg() -> impl Strategy<Value = Agg> {
    prop_oneof![
        Just(Agg::Count),
        Just(Agg::CountDistinct),
        Just(Agg::Sum),
        Just(Agg::Avg),
        Just(Agg::Min),
        Just(Agg::Max),
        Just(Agg::Exists),
        Just(Agg::ListDistinct),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        (-1000i64..1000).prop_map(|v| Literal::Num(v as f64)),
        "[a-z]{0,8}".prop_map(Literal::Str),
        any::<bool>().prop_map(Literal::Bool),
    ]
}

fn cond(depth: u32) -> BoxedStrategy<Cond> {
    let leaf = prop_oneof![
        (ident(), cmp_op(), literal()).prop_map(|(column, op, value)| Cond::Cmp {
            column,
            op,
            value
        }),
        (ident(), any::<bool>()).prop_map(|(column, negated)| Cond::IsNull { column, negated }),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        let inner = cond(depth - 1);
        prop_oneof![
            leaf,
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Cond::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Cond::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|c| Cond::Not(Box::new(c))),
        ]
        .boxed()
    }
}

fn query() -> impl Strategy<Value = PredictiveQuery> {
    (
        agg(),
        ident(),
        prop_oneof![ident(), Just("*".to_string())],
        0i64..100,
        1i64..100,
        proptest::option::of((cmp_op(), -100i64..100)),
        ident(),
        ident(),
        proptest::option::of(cond(2)),
        proptest::option::of(cond(1)),
    )
        .prop_map(
            |(agg, t_table, t_col, start, extra, compare, e_table, e_col, filter, tfilter)| {
                let needs_col = agg.needs_column();
                PredictiveQuery {
                    target: TargetExpr {
                        agg,
                        target: ColumnRef {
                            table: t_table,
                            column: if needs_col && t_col == "*" {
                                "c".to_string()
                            } else {
                                t_col
                            },
                        },
                        filter: tfilter,
                        start_days: start,
                        end_days: start + extra,
                        compare: compare.map(|(op, v)| (op, v as f64)),
                    },
                    entity: ColumnRef {
                        table: e_table,
                        column: e_col,
                    },
                    filter,
                    options: Vec::new(),
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The language round-trips: printing any AST and re-parsing it yields
    /// the same AST (print∘parse is the identity on the image of print).
    #[test]
    fn parse_print_parse_fixpoint(q in query()) {
        let text = q.to_string();
        let reparsed = parse(&text).unwrap_or_else(|e| panic!("`{text}` failed: {e}"));
        prop_assert_eq!(reparsed, q);
    }

    /// The parser never panics on arbitrary printable input.
    #[test]
    fn parser_total_on_garbage(s in "[ -~]{0,80}") {
        let _ = parse(&s);
    }

    /// Whitespace normalization does not change parses.
    #[test]
    fn whitespace_insensitive(q in query()) {
        let text = q.to_string();
        let spaced = text.replace(' ', "   ");
        prop_assert_eq!(parse(&text).unwrap(), parse(&spaced).unwrap());
    }

    /// Keyword case does not change parses.
    #[test]
    fn keyword_case_insensitive(q in query()) {
        let text = q.to_string();
        // Lowercasing keywords only (identifiers are already lowercase).
        let lowered = text
            .replace("PREDICT", "predict")
            .replace("FOR EACH", "for each")
            .replace("WHERE", "where");
        prop_assert_eq!(parse(&text).unwrap(), parse(&lowered).unwrap());
    }
}
