//! Persistent parameter storage and per-batch graph binding.

use relgraph_tensor::{Graph, Tensor, Var};

/// Handle to a parameter in a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

struct ParamSlot {
    name: String,
    value: Tensor,
    grad: Tensor,
}

/// Owns every trainable tensor of a model, with an accumulated gradient per
/// parameter. Lives across mini-batches; the per-batch [`Graph`] only sees
/// copies bound through a [`Binding`].
#[derive(Default)]
pub struct ParamSet {
    slots: Vec<ParamSlot>,
}

impl ParamSet {
    /// Empty parameter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter with an initial value.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let (r, c) = value.shape();
        self.slots.push(ParamSlot {
            name: name.into(),
            value,
            grad: Tensor::zeros(r, c),
        });
        ParamId(self.slots.len() - 1)
    }

    /// Number of parameters (tensors).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_weights(&self) -> usize {
        self.slots.iter().map(|s| s.value.len()).sum()
    }

    /// Parameter name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.slots[id.0].name
    }

    /// Current value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.slots[id.0].value
    }

    /// Mutable value (used by optimizers).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.slots[id.0].value
    }

    /// Accumulated gradient.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.slots[id.0].grad
    }

    /// Mutable gradient.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.slots[id.0].grad
    }

    /// Iterate over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.slots.len()).map(ParamId)
    }

    /// Zero every accumulated gradient.
    pub fn zero_grads(&mut self) {
        for s in &mut self.slots {
            s.grad.scale_assign(0.0);
        }
    }

    /// Snapshot every parameter value (for early-stopping rollback).
    pub fn snapshot(&self) -> Vec<Tensor> {
        self.slots.iter().map(|s| s.value.clone()).collect()
    }

    /// Restore values from a snapshot taken on this same parameter set.
    ///
    /// # Panics
    /// Panics if the snapshot length does not match.
    pub fn restore(&mut self, snapshot: &[Tensor]) {
        assert_eq!(
            snapshot.len(),
            self.slots.len(),
            "snapshot/param-set mismatch"
        );
        for (slot, value) in self.slots.iter_mut().zip(snapshot) {
            slot.value = value.clone();
        }
    }

    /// Global L2 norm of all gradients.
    pub fn grad_norm(&self) -> f64 {
        self.slots
            .iter()
            .map(|s| s.grad.data().iter().map(|&x| x * x).sum::<f64>())
            .sum::<f64>()
            .sqrt()
    }
}

/// Records which graph [`Var`] each bound parameter maps to within one
/// forward pass, so gradients can be copied back afterwards.
#[derive(Default)]
pub struct Binding {
    pairs: Vec<(ParamId, Var)>,
}

impl Binding {
    /// Empty binding for a fresh forward pass.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear the binding for the next forward pass, keeping its capacity.
    /// Pair with [`Graph::reset`] when reusing one graph across batches.
    pub fn reset(&mut self) {
        self.pairs.clear();
    }

    /// Bind parameter `id` into `g` as a differentiable leaf, memoizing so a
    /// parameter used twice in one pass shares a single leaf (and therefore
    /// correctly accumulates both gradient paths). The value is copied into
    /// a graph-pooled buffer rather than freshly allocated.
    pub fn bind(&mut self, g: &mut Graph, ps: &ParamSet, id: ParamId) -> Var {
        if let Some(&(_, v)) = self.pairs.iter().find(|(p, _)| *p == id) {
            return v;
        }
        let v = g.leaf_copied(ps.value(id));
        self.pairs.push((id, v));
        v
    }

    /// Number of bound parameters.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// After `g.backward(..)`, add each bound parameter's graph gradient
    /// into its persistent gradient accumulator.
    pub fn accumulate_grads(&self, g: &Graph, ps: &mut ParamSet) {
        for &(id, v) in &self.pairs {
            if let Some(grad) = g.grad(v) {
                ps.grad_mut(id).add_assign(grad);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_inspect() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Tensor::from_rows(&[&[1.0, 2.0]]));
        assert_eq!(ps.len(), 1);
        assert_eq!(ps.num_weights(), 2);
        assert_eq!(ps.name(w), "w");
        assert_eq!(ps.grad(w), &Tensor::zeros(1, 2));
    }

    #[test]
    fn binding_memoizes_duplicate_binds() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Tensor::scalar(3.0));
        let mut g = Graph::new();
        let mut b = Binding::new();
        let v1 = b.bind(&mut g, &ps, w);
        let v2 = b.bind(&mut g, &ps, w);
        assert_eq!(v1, v2);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn gradients_flow_back_to_paramset() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Tensor::scalar(3.0));
        let mut g = Graph::new();
        let mut b = Binding::new();
        let wv = b.bind(&mut g, &ps, w);
        // loss = w * w → dw = 2w = 6
        let sq = g.mul(wv, wv);
        let loss = g.sum_all(sq);
        g.backward(loss).unwrap();
        b.accumulate_grads(&g, &mut ps);
        assert_eq!(ps.grad(w).item(), 6.0);
        // Accumulation is additive across batches.
        b.accumulate_grads(&g, &mut ps);
        assert_eq!(ps.grad(w).item(), 12.0);
        ps.zero_grads();
        assert_eq!(ps.grad(w).item(), 0.0);
    }

    #[test]
    fn grad_norm_is_l2() {
        let mut ps = ParamSet::new();
        let a = ps.register("a", Tensor::scalar(0.0));
        let b = ps.register("b", Tensor::scalar(0.0));
        ps.grad_mut(a).data_mut()[0] = 3.0;
        ps.grad_mut(b).data_mut()[0] = 4.0;
        assert!((ps.grad_norm() - 5.0).abs() < 1e-12);
    }
}
