//! Weight initialization (seeded, deterministic).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relgraph_tensor::Tensor;

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Tensor {
    let a = (6.0 / (rows + cols) as f64).sqrt();
    let data = (0..rows * cols).map(|_| rng.gen_range(-a..=a)).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Kaiming/He uniform initialization for ReLU fan-in:
/// `U(-a, a)` with `a = sqrt(6 / fan_in)`.
pub fn kaiming_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Tensor {
    let a = (6.0 / rows as f64).sqrt();
    let data = (0..rows * cols).map(|_| rng.gen_range(-a..=a)).collect();
    Tensor::from_vec(rows, cols, data)
}

/// A deterministic RNG from a seed.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = xavier_uniform(4, 3, &mut rng(7));
        let b = xavier_uniform(4, 3, &mut rng(7));
        assert_eq!(a, b);
        let c = xavier_uniform(4, 3, &mut rng(8));
        assert_ne!(a, c);
    }

    #[test]
    fn values_within_bound() {
        let t = xavier_uniform(10, 10, &mut rng(0));
        let bound = (6.0 / 20.0_f64).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= bound));
        let t = kaiming_uniform(10, 4, &mut rng(0));
        let bound = (6.0 / 10.0_f64).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn not_all_zero() {
        let t = xavier_uniform(5, 5, &mut rng(1));
        assert!(t.norm() > 0.0);
    }
}
