//! Layers: linear transforms and multi-layer perceptrons.
//!
//! Linear layers lower onto the tape's fused [`Graph::linear_act`] op — a
//! single `act(x·W + b)` kernel pass per layer instead of the three-node
//! `matmul → add_row → activation` chain, with bit-identical values and
//! gradients.

use relgraph_tensor::{ActKind, Graph, Tensor, Var};

use crate::init;
use crate::param::{Binding, ParamId, ParamSet};

/// Pointwise nonlinearity applied between layers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activation {
    /// No activation.
    Identity,
    Relu,
    LeakyRelu(f64),
    Tanh,
    Sigmoid,
}

impl Activation {
    /// Apply this activation inside a graph.
    pub fn apply(self, g: &mut Graph, x: Var) -> Var {
        match self {
            Activation::Identity => x,
            Activation::Relu => g.relu(x),
            Activation::LeakyRelu(s) => g.leaky_relu(x, s),
            Activation::Tanh => g.tanh(x),
            Activation::Sigmoid => g.sigmoid(x),
        }
    }

    /// The tensor-kernel activation kind this lowers onto, for fusing into
    /// [`Graph::linear_act`].
    pub fn kind(self) -> ActKind {
        match self {
            Activation::Identity => ActKind::Identity,
            Activation::Relu => ActKind::Relu,
            Activation::LeakyRelu(s) => ActKind::LeakyRelu(s),
            Activation::Tanh => ActKind::Tanh,
            Activation::Sigmoid => ActKind::Sigmoid,
        }
    }
}

/// A dense layer `y = x·W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Create with Xavier-uniform weights and zero bias, registering the
    /// parameters under `name` in `ps`.
    pub fn new(ps: &mut ParamSet, name: &str, in_dim: usize, out_dim: usize, seed: u64) -> Self {
        let mut rng = init::rng(seed);
        let w = ps.register(
            format!("{name}.w"),
            init::xavier_uniform(in_dim, out_dim, &mut rng),
        );
        let b = ps.register(format!("{name}.b"), Tensor::zeros(1, out_dim));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Borrow the weight matrix (`in_dim × out_dim`) from `ps` — the
    /// read-only export used by precision down-conversion at serve time.
    pub fn weight<'a>(&self, ps: &'a ParamSet) -> &'a Tensor {
        ps.value(self.w)
    }

    /// Borrow the bias row (`1 × out_dim`) from `ps`.
    pub fn bias<'a>(&self, ps: &'a ParamSet) -> &'a Tensor {
        ps.value(self.b)
    }

    /// Forward pass: binds the layer's parameters and returns `x·W + b`.
    pub fn forward(&self, g: &mut Graph, binding: &mut Binding, ps: &ParamSet, x: Var) -> Var {
        self.forward_act(g, binding, ps, x, Activation::Identity)
    }

    /// Forward pass with a fused activation: `act(x·W + b)` in one kernel
    /// pass (bias add and activation run in the matmul epilogue).
    pub fn forward_act(
        &self,
        g: &mut Graph,
        binding: &mut Binding,
        ps: &ParamSet,
        x: Var,
        act: Activation,
    ) -> Var {
        let w = binding.bind(g, ps, self.w);
        let b = binding.bind(g, ps, self.b);
        g.linear_act(x, w, b, act.kind())
    }
}

/// A stack of [`Linear`] layers with an activation between them (none after
/// the final layer).
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Build an MLP with the given layer widths, e.g. `&[16, 32, 1]` is
    /// `16 → 32 → 1` with one hidden activation.
    ///
    /// # Panics
    /// Panics if fewer than two dims are given.
    pub fn new(ps: &mut ParamSet, dims: &[usize], activation: Activation, seed: u64) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output dims"
        );
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                Linear::new(
                    ps,
                    &format!("mlp{i}"),
                    w[0],
                    w[1],
                    seed.wrapping_add(i as u64),
                )
            })
            .collect();
        Mlp { layers, activation }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers.first().map_or(0, Linear::in_dim)
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().map_or(0, Linear::out_dim)
    }

    /// The layer stack, first to last — read-only access for precision
    /// down-conversion.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// The hidden activation (the final layer stays linear).
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Forward pass. Hidden layers fuse their activation into the linear
    /// kernel; the final layer stays linear.
    pub fn forward(&self, g: &mut Graph, binding: &mut Binding, ps: &ParamSet, x: Var) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let act = if i < last {
                self.activation
            } else {
                Activation::Identity
            };
            h = layer.forward_act(g, binding, ps, h, act);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss;
    use crate::optim::{Adam, Optimizer};

    #[test]
    fn linear_shapes() {
        let mut ps = ParamSet::new();
        let l = Linear::new(&mut ps, "l", 3, 2, 0);
        let mut g = Graph::new();
        let mut b = Binding::new();
        let x = g.constant(Tensor::zeros(5, 3));
        let y = l.forward(&mut g, &mut b, &ps, x);
        assert_eq!(g.value(y).shape(), (5, 2));
        assert_eq!(b.len(), 2);
        assert_eq!(l.in_dim(), 3);
        assert_eq!(l.out_dim(), 2);
    }

    #[test]
    fn mlp_learns_xor() {
        let mut ps = ParamSet::new();
        let mlp = Mlp::new(&mut ps, &[2, 8, 1], Activation::Tanh, 3);
        assert_eq!(mlp.in_dim(), 2);
        assert_eq!(mlp.out_dim(), 1);
        let x = Tensor::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let y = Tensor::from_rows(&[&[0.0], &[1.0], &[1.0], &[0.0]]);
        let mut opt = Adam::new(0.05);
        let mut final_loss = f64::INFINITY;
        for _ in 0..400 {
            let mut g = Graph::new();
            let mut b = Binding::new();
            let xv = g.constant(x.clone());
            let logits = mlp.forward(&mut g, &mut b, &ps, xv);
            let yv = g.constant(y.clone());
            let l = loss::bce_with_logits(&mut g, logits, yv);
            g.backward(l).unwrap();
            b.accumulate_grads(&g, &mut ps);
            opt.step(&mut ps);
            final_loss = g.value(l).item();
        }
        assert!(final_loss < 0.1, "XOR did not converge: loss {final_loss}");
    }

    #[test]
    #[should_panic]
    fn mlp_needs_two_dims() {
        let mut ps = ParamSet::new();
        let _ = Mlp::new(&mut ps, &[4], Activation::Relu, 0);
    }
}
