//! Optimizers: SGD (with momentum) and Adam, plus gradient clipping.

use relgraph_tensor::Tensor;

use crate::param::ParamSet;

/// Common optimizer interface: consume accumulated gradients, update
/// parameter values, and zero the gradients.
pub trait Optimizer {
    /// Apply one update step using the gradients currently stored in `ps`.
    fn step(&mut self, ps: &mut ParamSet);

    /// Current learning rate.
    fn learning_rate(&self) -> f64;

    /// Set the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f64);
}

/// Stochastic gradient descent with optional classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f64) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, ps: &mut ParamSet) {
        let ids: Vec<_> = ps.ids().collect();
        if self.momentum > 0.0 && self.velocity.len() < ids.len() {
            for id in ids.iter().skip(self.velocity.len()) {
                let (r, c) = ps.value(*id).shape();
                self.velocity.push(Tensor::zeros(r, c));
            }
        }
        for (i, id) in ids.into_iter().enumerate() {
            let grad = ps.grad(id).clone();
            if self.momentum > 0.0 {
                let v = &mut self.velocity[i];
                v.scale_assign(self.momentum);
                v.add_assign(&grad);
                let upd = v.map(|x| -self.lr * x);
                ps.value_mut(id).add_assign(&upd);
            } else {
                let upd = grad.map(|x| -self.lr * x);
                ps.value_mut(id).add_assign(&upd);
            }
        }
        ps.zero_grads();
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999) and eps 1e-8.
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Fully parameterized constructor.
    pub fn with_params(lr: f64, beta1: f64, beta2: f64, eps: f64) -> Self {
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, ps: &mut ParamSet) {
        let ids: Vec<_> = ps.ids().collect();
        while self.m.len() < ids.len() {
            let (r, c) = ps.value(ids[self.m.len()]).shape();
            self.m.push(Tensor::zeros(r, c));
            self.v.push(Tensor::zeros(r, c));
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, id) in ids.into_iter().enumerate() {
            let grad = ps.grad(id).clone();
            let m = &mut self.m[i];
            for (mi, &gi) in m.data_mut().iter_mut().zip(grad.data()) {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
            }
            let v = &mut self.v[i];
            for (vi, &gi) in v.data_mut().iter_mut().zip(grad.data()) {
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            let value = ps.value_mut(id);
            for ((x, &mi), &vi) in value
                .data_mut()
                .iter_mut()
                .zip(self.m[i].data())
                .zip(self.v[i].data())
            {
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                *x -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
        ps.zero_grads();
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Scale all gradients down so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
pub fn clip_global_norm(ps: &mut ParamSet, max_norm: f64) -> f64 {
    let norm = ps.grad_norm();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        let ids: Vec<_> = ps.ids().collect();
        for id in ids {
            ps.grad_mut(id).scale_assign(scale);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_step(ps: &mut ParamSet, opt: &mut dyn Optimizer) -> f64 {
        // loss = sum_i value_i² → grad = 2·value
        let ids: Vec<_> = ps.ids().collect();
        let mut loss = 0.0;
        for id in ids {
            let v = ps.value(id).clone();
            loss += v.data().iter().map(|x| x * x).sum::<f64>();
            let g = v.map(|x| 2.0 * x);
            ps.grad_mut(id).add_assign(&g);
        }
        opt.step(ps);
        loss
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut ps = ParamSet::new();
        ps.register("x", Tensor::from_rows(&[&[5.0, -3.0]]));
        let mut opt = Sgd::new(0.1);
        let first = quadratic_step(&mut ps, &mut opt);
        let mut last = first;
        for _ in 0..50 {
            last = quadratic_step(&mut ps, &mut opt);
        }
        assert!(
            last < first * 1e-4,
            "SGD failed to descend: {first} → {last}"
        );
    }

    #[test]
    fn momentum_accelerates() {
        let run = |mut opt: Sgd| {
            let mut ps = ParamSet::new();
            ps.register("x", Tensor::scalar(10.0));
            let mut last = 0.0;
            for _ in 0..20 {
                last = quadratic_step(&mut ps, &mut opt);
            }
            last
        };
        let plain = run(Sgd::new(0.02));
        let momentum = run(Sgd::with_momentum(0.02, 0.9));
        assert!(
            momentum < plain,
            "momentum {momentum} should beat plain {plain}"
        );
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut ps = ParamSet::new();
        ps.register("x", Tensor::from_rows(&[&[5.0, -3.0, 0.5]]));
        let mut opt = Adam::new(0.3);
        let first = quadratic_step(&mut ps, &mut opt);
        let mut last = first;
        for _ in 0..200 {
            last = quadratic_step(&mut ps, &mut opt);
        }
        assert!(last < 1e-3, "Adam failed to descend: {first} → {last}");
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut ps = ParamSet::new();
        let id = ps.register("x", Tensor::scalar(1.0));
        ps.grad_mut(id).data_mut()[0] = 1.0;
        Sgd::new(0.1).step(&mut ps);
        assert_eq!(ps.grad(id).item(), 0.0);
    }

    #[test]
    fn clip_respects_max_norm() {
        let mut ps = ParamSet::new();
        let a = ps.register("a", Tensor::scalar(0.0));
        let b = ps.register("b", Tensor::scalar(0.0));
        ps.grad_mut(a).data_mut()[0] = 3.0;
        ps.grad_mut(b).data_mut()[0] = 4.0;
        let pre = clip_global_norm(&mut ps, 1.0);
        assert!((pre - 5.0).abs() < 1e-12);
        assert!((ps.grad_norm() - 1.0).abs() < 1e-12);
        // Below the cap nothing changes.
        let pre = clip_global_norm(&mut ps, 10.0);
        assert!((pre - 1.0).abs() < 1e-12);
        assert!((ps.grad_norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut o = Adam::new(0.01);
        assert_eq!(o.learning_rate(), 0.01);
        o.set_learning_rate(0.5);
        assert_eq!(o.learning_rate(), 0.5);
    }
}
