//! # relgraph-nn
//!
//! Neural-network building blocks over `relgraph-tensor`: persistent
//! parameter storage ([`ParamSet`]), layers ([`Linear`], [`Mlp`]), loss
//! functions ([`loss`]), optimizers ([`Sgd`], [`Adam`]) and weight
//! initialization ([`init`]).
//!
//! The training contract is define-by-run:
//!
//! 1. create a fresh [`Graph`](relgraph_tensor::Graph) and a [`Binding`];
//! 2. run the model's `forward`, which binds parameters into the graph;
//! 3. compute a scalar loss and call `backward`;
//! 4. [`Binding::accumulate_grads`] copies gradients back into the
//!    [`ParamSet`];
//! 5. the optimizer consumes and zeroes those gradients.
//!
//! ## Example
//!
//! ```
//! use relgraph_nn::{Adam, Binding, Mlp, Activation, Optimizer, ParamSet, loss};
//! use relgraph_tensor::{Graph, Tensor};
//!
//! let mut ps = ParamSet::new();
//! let mlp = Mlp::new(&mut ps, &[2, 8, 1], Activation::Relu, 42);
//! let mut opt = Adam::new(0.05);
//! let x = Tensor::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
//! let y = Tensor::from_rows(&[&[0.0], &[1.0]]);
//! for _ in 0..50 {
//!     let mut g = Graph::new();
//!     let mut b = Binding::new();
//!     let xv = g.constant(x.clone());
//!     let out = mlp.forward(&mut g, &mut b, &ps, xv);
//!     let yv = g.constant(y.clone());
//!     let l = loss::mse(&mut g, out, yv);
//!     g.backward(l).unwrap();
//!     b.accumulate_grads(&g, &mut ps);
//!     opt.step(&mut ps);
//! }
//! ```

pub mod init;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod param;

pub use layers::{Activation, Linear, Mlp};
pub use optim::{clip_global_norm, Adam, Optimizer, Sgd};
pub use param::{Binding, ParamId, ParamSet};
